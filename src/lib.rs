//! Umbrella crate for the Elim-ABtree reproduction: re-exports the public
//! crates so examples and integration tests have a single import point.

pub use abebr as ebr;
pub use abpmem as pmem;
pub use absync as sync;
pub use abtree;
pub use baselines;
pub use conctest;
pub use crashkv;
pub use kvserve;
pub use netserve;
pub use obs;
pub use pabtree;
pub use setbench;
pub use workload;
