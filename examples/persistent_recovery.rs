//! Durable index with crash recovery: builds a p-Elim-ABtree on the simulated
//! persistent-memory layer, injects the crash states the paper reasons about
//! (§5), runs recovery, and verifies the durably-linearizable outcome.
//!
//! Run with: `cargo run --release --example persistent_recovery`

use elim_abtree_repro::pabtree::{recover, PElimABTree};
use elim_abtree_repro::pmem::{self, PersistMode};

fn main() {
    // Count flushes/fences; switch to PersistMode::Real to execute actual
    // cache-line write-back instructions.
    pmem::set_mode(PersistMode::CountOnly);
    pmem::reset_stats();

    let tree: PElimABTree = PElimABTree::new();
    let mut session = tree.handle();
    for k in 0..100_000u64 {
        session.insert(k, k * 7);
    }
    let stats = pmem::stats();
    println!(
        "built durable index: 100k inserts issued {} flushes and {} fences",
        stats.flushes, stats.fences
    );

    // Simulate a crash that interrupted one insert and one delete after their
    // key stores were persisted, plus a structural update whose new pointer
    // was flushed but not yet unmarked.
    assert!(tree.force_partial_insert(1_000_000, 42));
    assert!(tree.force_partial_delete(5_000));
    tree.force_dirty_root_link();

    let report = recover(&tree);
    println!(
        "recovery visited {} leaves / {} internal nodes (height {}) in {:.2} ms",
        report.leaves,
        report.internal_nodes,
        report.height,
        report.elapsed_ns as f64 / 1e6
    );

    // Durable linearizability: the interrupted insert and delete were
    // linearized at the crash, so their effects survive.
    assert_eq!(session.get(1_000_000), Some(42));
    assert_eq!(session.get(5_000), None);
    tree.check_invariants().expect("recovered tree is well-formed");
    println!("recovered index holds {} keys and passes validation", tree.len());
}
