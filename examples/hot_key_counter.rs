//! A contended "live inventory" scenario: many threads repeatedly insert and
//! delete the *same* small set of hot keys (think: flash-sale stock items
//! going in and out of availability).  This is the update-heavy, highly
//! skewed workload the paper's publishing elimination targets (§1, §4): the
//! Elim-ABtree completes many of these operations without writing to the
//! tree at all.
//!
//! Run with: `cargo run --release --example hot_key_counter`

use std::sync::Arc;
use std::time::Instant;

use elim_abtree_repro::abtree::{ElimABTree, MapHandle as _, OccABTree, SessionMap};

fn churn<M: SessionMap>(map: &Arc<M>, threads: usize, ops_per_thread: u64) -> f64 {
    let hot_keys = 8u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let map = Arc::clone(map);
            scope.spawn(move || {
                // One statically-dispatched session per worker: the EBR
                // registration, elimination scratch and RNG live here, not
                // in per-op lookups, and ops are monomorphized.
                let mut session = map.session();
                for i in 0..ops_per_thread {
                    let key = (i + t as u64) % hot_keys;
                    if (i + t as u64).is_multiple_of(2) {
                        session.insert(key, i);
                    } else {
                        session.delete(key);
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * ops_per_thread) as f64 / secs / 1e6
}

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let ops = 500_000u64;

    let occ: Arc<OccABTree> = Arc::new(OccABTree::new());
    let elim: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    // Seed some surrounding keys so the hot leaf is an interior leaf.
    let mut occ_session = occ.handle();
    let mut elim_session = elim.handle();
    for k in 0..64u64 {
        occ_session.insert(1_000 + k, 0);
        elim_session.insert(1_000 + k, 0);
    }
    drop(occ_session);
    drop(elim_session);

    let occ_mops = churn(&occ, threads, ops);
    let elim_mops = churn(&elim, threads, ops);

    println!("hot-key churn with {threads} threads, {ops} ops/thread:");
    println!("  occ-abtree : {occ_mops:.2} Mops/s");
    println!(
        "  elim-abtree: {elim_mops:.2} Mops/s ({:.0}% of operations eliminated)",
        100.0 * elim.elimination_count() as f64 / (threads as u64 * ops) as f64
    );
    occ.check_invariants().unwrap();
    elim.check_invariants().unwrap();
}
