//! The **in-process** variant of the key-value server: client threads
//! encode request batches with the `kvserve` wire codec and send them over
//! `mpsc` channels to server workers, each of which owns one `ShardRouter`
//! over a shared 4-shard service.  The same scenario served over a real TCP
//! socket — epoll reactor, pipelined connections, graceful shutdown —
//! lives in `examples/netserve_server.rs`; this variant keeps the full
//! codec-to-router path with zero kernel involvement, which makes it the
//! baseline for quantifying socket overhead.
//!
//! Each shard is owned by its own dedicated service thread holding the
//! shard's single long-lived engine session; the routers feed those owners
//! through bounded SPSC lanes.  Every client is a tenant: its keys live
//! under its own namespace prefix, so tenants never collide and the final
//! per-tenant stats show exactly who sent what.  Batches are served with
//! `ShardRouter::serve_pipelined` — the same entry point the netserve
//! reactor bridges to — so point requests overlap across shard lanes and a
//! full lane surfaces as the codec's `Overloaded` response instead of
//! blocking the serving loop.
//!
//! Run with: `cargo run --release --example kvserve_server`

use std::sync::{mpsc, Arc, Mutex};

use elim_abtree_repro::abtree::ElimABTree;
use elim_abtree_repro::kvserve::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch, KvService,
    Namespace, Request, Response,
};
use elim_abtree_repro::obs;

/// One request frame: the encoded batch plus the channel to answer on.
type Frame = (Vec<u8>, mpsc::Sender<Vec<u8>>);

const TENANTS: u16 = 4;
const SERVER_WORKERS: usize = 2;
const BATCHES_PER_TENANT: u64 = 200;

fn main() {
    let service = Arc::new(KvService::new(4, TENANTS as usize, |_| {
        let shard: ElimABTree = ElimABTree::new();
        Box::new(shard)
    }));

    // A plain mpsc queue shared by the server workers (std's receiver is
    // single-consumer, so the workers share it behind a mutex — the
    // contended path here is the service, not the queue).
    let (requests_tx, requests_rx) = mpsc::channel::<Frame>();
    let requests_rx = Arc::new(Mutex::new(requests_rx));

    std::thread::scope(|scope| {
        // Server side: each worker opens one router (one engine session per
        // shard) and serves frames until the queue closes.
        for _ in 0..SERVER_WORKERS {
            let service = Arc::clone(&service);
            let requests_rx = Arc::clone(&requests_rx);
            scope.spawn(move || {
                let mut router = service.router();
                let mut responses = Vec::new();
                let mut wire = Vec::new();
                loop {
                    let frame = requests_rx.lock().unwrap().recv();
                    let Ok((bytes, reply_tx)) = frame else { break };
                    // Strict decoding is the trust boundary: corrupt frames,
                    // oversized batches and the engine's reserved key all
                    // surface here as errors, never inside a shard.  With
                    // in-process clients a bad frame is a bug, so panic; a
                    // network server would answer with an error frame.
                    let batch = decode_batch(&bytes).expect("client sent a corrupt frame");
                    router.serve_pipelined(&batch, &mut responses);
                    encode_response_batch(&responses, &mut wire);
                    // A closed reply channel just means the client is gone.
                    let _ = reply_tx.send(wire.clone());
                }
            });
        }

        // Client side: one thread per tenant, each mixing puts, batched
        // mgets and a tenant-scoped scan, and checking its answers.
        for tenant_id in 0..TENANTS {
            let requests_tx = requests_tx.clone();
            scope.spawn(move || {
                let tenant = Namespace::new(tenant_id);
                let (reply_tx, reply_rx) = mpsc::channel::<Vec<u8>>();
                let mut wire = Vec::new();
                for round in 0..BATCHES_PER_TENANT {
                    let base = round * 8;
                    let batch = vec![
                        Request::MPut {
                            pairs: (base..base + 8)
                                .map(|k| (tenant.prefixed(k), k * 10))
                                .collect(),
                        },
                        Request::Get {
                            key: tenant.prefixed(base),
                        },
                        Request::MGet {
                            keys: (base..base + 8).map(|k| tenant.prefixed(k)).collect(),
                        },
                        Request::Scan {
                            lo: tenant.prefixed(base),
                            len: 8,
                        },
                    ];
                    encode_batch(&batch, &mut wire);
                    requests_tx
                        .send((wire.clone(), reply_tx.clone()))
                        .expect("server hung up");
                    let reply = reply_rx.recv().expect("server dropped a frame");
                    let responses = decode_response_batch(&reply).expect("corrupt response");
                    assert_eq!(responses.len(), batch.len());
                    assert_eq!(responses[1], Response::Value(Some(base * 10)));
                    match &responses[3] {
                        Response::Entries(entries) => {
                            assert_eq!(entries.len(), 8, "tenant scan sees its own 8 keys");
                            assert!(entries.iter().all(|&(k, _)| tenant.contains(k)));
                        }
                        other => panic!("expected scan entries, got {other:?}"),
                    }
                }
            });
        }

        // Main thread's sender closes once the clients (which hold clones)
        // finish, which in turn shuts the server workers down.
        drop(requests_tx);
    });

    // Quiescent wrap-up: per-tenant accounting and service-wide latency.
    let stats = service.stats();
    println!("tenant   ops        hit-rate");
    for tenant_id in 0..TENANTS {
        let row = stats.namespace(tenant_id as usize);
        println!(
            "{:<8} {:<10} {:.3}",
            Namespace::new(tenant_id).to_string(),
            row.total_ops(),
            row.hit_rate()
        );
    }
    // The workload above always records both histograms, so quantiles are
    // `Some`; an empty histogram would print "n/a" instead of a fake 0.
    let fmt_ns = |q: Option<u64>| q.map_or_else(|| "n/a".to_string(), |ns| ns.to_string());
    println!(
        "point ops: p50 {} ns, p99 {} ns; batches: p50 {} ns, p99 {} ns",
        fmt_ns(stats.point_latency_ns.p50()),
        fmt_ns(stats.point_latency_ns.p99()),
        fmt_ns(stats.batch_latency_ns.p50()),
        fmt_ns(stats.batch_latency_ns.p99()),
    );
    // The same numbers, through the telemetry spine: render the service's
    // metric registry (what a netserve `Stats` scrape ships over the wire)
    // and read rows back with the expo helpers.
    let samples = obs::expo::parse(&service.registry().render()).expect("well-formed exposition");
    let gets = obs::expo::sum(&samples, "kv_ops_total", &[("op", "get")]);
    println!(
        "registry snapshot: {} rows; gets {}, mget keys {}, cache hits {}",
        samples.len(),
        gets,
        obs::expo::sum(&samples, "kv_lookups_total", &[]) - gets,
        obs::expo::sum(&samples, "kv_cache_hits_total", &[]),
    );
    assert_eq!(gets, TENANTS as u64 * BATCHES_PER_TENANT, "one Get per batch");
    // Cross-shard validation: the shards must hold exactly the keys the
    // tenants inserted.
    let expected: u128 = (0..TENANTS)
        .flat_map(|t| (0..BATCHES_PER_TENANT * 8).map(move |k| Namespace::new(t).prefixed(k) as u128))
        .sum();
    assert_eq!(service.key_sum(), expected, "cross-shard key-sum validation");
    println!(
        "service holds {} keys across {} shards; key-sum validation ok",
        TENANTS as u64 * BATCHES_PER_TENANT * 8,
        service.shard_count(),
    );
}
