//! Quickstart: the Elim-ABtree as a drop-in concurrent ordered map.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use elim_abtree_repro::abtree::ElimABTree;

fn main() {
    // An Elim-ABtree over 8-byte keys and values (u64::MAX is reserved).
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());

    // Basic single-threaded usage: open one session handle per thread and
    // run every operation through it.
    let mut session = tree.handle();
    assert_eq!(session.insert(10, 100), None);
    assert_eq!(session.insert(10, 999), Some(100)); // key already present
    assert_eq!(session.get(10), Some(100));
    assert_eq!(session.delete(10), Some(100));
    drop(session);

    // Concurrent usage: spawn writers over disjoint key ranges and a few
    // readers, then validate the contents.
    let writers = 4u64;
    let per_writer = 100_000u64;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let tree = Arc::clone(&tree);
            scope.spawn(move || {
                let mut session = tree.handle();
                let base = w * per_writer;
                for k in base..base + per_writer {
                    session.insert(k, k * 2);
                }
            });
        }
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            scope.spawn(move || {
                let mut session = tree.handle();
                for k in (0..writers * per_writer).step_by(1001) {
                    if let Some(v) = session.get(k) {
                        assert_eq!(v, k * 2);
                    }
                }
            });
        }
    });

    assert_eq!(tree.len() as u64, writers * per_writer);
    tree.check_invariants().expect("structural invariants hold");
    println!(
        "quickstart: inserted {} keys across {} threads; tree height = {}, eliminations = {}",
        tree.len(),
        writers,
        tree.stats().height,
        tree.elimination_count(),
    );
}
