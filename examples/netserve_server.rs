//! The multi-tenant key-value scenario from `kvserve_server`, served over a
//! **real TCP front end**: a `netserve::Server` (epoll reactor threads, one
//! `ShardRouter` each) listens on loopback, and each tenant runs a
//! `netserve::Client` over its own socket.  Compare with the in-process
//! variant in `examples/kvserve_server.rs`, which moves the same frames
//! over `mpsc` channels instead of sockets.
//!
//! What the socket adds over the in-process variant:
//! - request batches are **pipelined**: each tenant keeps several frames in
//!   flight per connection before collecting the answers;
//! - the reactor's connection state machine reassembles frames from
//!   whatever segments TCP delivers, so client batching and kernel
//!   buffering are decoupled;
//! - shutdown is the real lifecycle: clients hang up, the server drains,
//!   flushes, joins its reactor threads, and only then is the service
//!   inspected quiescently.
//!
//! Run with: `cargo run --release --example netserve_server`

use std::sync::Arc;

use elim_abtree_repro::abtree::ElimABTree;
use elim_abtree_repro::kvserve::{KvService, Namespace, Request, Response};
use elim_abtree_repro::netserve::{Client, Server, ServerConfig};
use elim_abtree_repro::obs;

const TENANTS: u16 = 4;
const BATCHES_PER_TENANT: u64 = 200;
/// Frames each tenant keeps in flight on its connection.
const PIPELINE_DEPTH: u64 = 8;

fn main() {
    let service = Arc::new(KvService::new(4, TENANTS as usize, |_| {
        let shard: ElimABTree = ElimABTree::new();
        Box::new(shard)
    }));

    let mut server = Server::start(
        ServerConfig {
            reactors: 2,
            ..ServerConfig::default()
        },
        Arc::clone(&service),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    println!("netserve listening on {addr} with 2 reactors over 4 shards");

    std::thread::scope(|scope| {
        for tenant_id in 0..TENANTS {
            scope.spawn(move || {
                let tenant = Namespace::new(tenant_id);
                let mut client = Client::connect(addr).expect("connect");
                let mut sent = 0u64;
                let mut checked = 0u64;
                while checked < BATCHES_PER_TENANT {
                    // Keep the pipeline full, then collect the oldest reply.
                    while sent < BATCHES_PER_TENANT && sent - checked < PIPELINE_DEPTH {
                        let base = sent * 8;
                        client
                            .send(&[
                                Request::MPut {
                                    pairs: (base..base + 8)
                                        .map(|k| (tenant.prefixed(k), k * 10))
                                        .collect(),
                                },
                                Request::Get {
                                    key: tenant.prefixed(base),
                                },
                                Request::MGet {
                                    keys: (base..base + 8).map(|k| tenant.prefixed(k)).collect(),
                                },
                                Request::Scan {
                                    lo: tenant.prefixed(base),
                                    len: 8,
                                },
                            ])
                            .expect("send");
                        sent += 1;
                    }
                    let base = checked * 8;
                    let responses = client.recv().expect("reply");
                    assert_eq!(responses.len(), 4);
                    assert_eq!(responses[1], Response::Value(Some(base * 10)));
                    match &responses[3] {
                        Response::Entries(entries) => {
                            assert_eq!(entries.len(), 8, "tenant scan sees its own 8 keys");
                            assert!(entries.iter().all(|&(k, _)| tenant.contains(k)));
                        }
                        other => panic!("expected scan entries, got {other:?}"),
                    }
                    checked += 1;
                }
            });
        }
    });

    // All tenants have hung up, so a scrape now reads quiescent counters:
    // one `Stats` request over a fresh connection renders the server's
    // whole registry — kv op counters, reactor counters, stage-trace
    // histograms — as Prometheus-style text, and the expo helpers pull
    // individual rows back out.
    let mut probe = Client::connect(addr).expect("connect scrape probe");
    let exposition = probe.scrape().expect("wire scrape");
    drop(probe);
    let samples = obs::expo::parse(&exposition).expect("well-formed exposition");
    let point_ops: u64 = ["get", "put", "delete"]
        .iter()
        .map(|op| obs::expo::sum(&samples, "kv_ops_total", &[("op", op)]))
        .sum();
    println!(
        "wire scrape: {} bytes / {} rows; kv point ops {}, shed {}, frames {}",
        exposition.len(),
        samples.len(),
        point_ops,
        obs::expo::sum(&samples, "kv_shed_total", &[]),
        obs::expo::sum(&samples, "net_frames_total", &[]),
    );
    assert_eq!(point_ops, TENANTS as u64 * BATCHES_PER_TENANT, "one Get per batch");
    if obs::ENABLED {
        let spans = obs::expo::sum(&samples, "stage_latency_ns_count", &[("stage", "apply")]);
        println!("stage trace: {spans} sampled apply spans on the scrape");
    }

    server.shutdown();
    let net = server.stats();
    println!(
        "served {} frames / {} requests over {} connections ({} protocol errors)",
        net.frames(),
        net.requests(),
        net.accepted(),
        net.protocol_errors(),
    );
    // + 1: the scrape probe's own `Stats` frame.
    assert_eq!(net.frames(), TENANTS as u64 * BATCHES_PER_TENANT + 1);
    assert_eq!(net.open_connections(), 0);

    // Quiescent wrap-up, identical to the in-process example: per-tenant
    // accounting, service-wide latency, and cross-shard validation.
    let stats = service.stats();
    println!("tenant   ops        hit-rate");
    for tenant_id in 0..TENANTS {
        let row = stats.namespace(tenant_id as usize);
        println!(
            "{:<8} {:<10} {:.3}",
            Namespace::new(tenant_id).to_string(),
            row.total_ops(),
            row.hit_rate()
        );
    }
    let fmt_ns = |q: Option<u64>| q.map_or_else(|| "n/a".to_string(), |ns| ns.to_string());
    println!(
        "point ops: p50 {} ns, p99 {} ns; batches: p50 {} ns, p99 {} ns",
        fmt_ns(stats.point_latency_ns.p50()),
        fmt_ns(stats.point_latency_ns.p99()),
        fmt_ns(stats.batch_latency_ns.p50()),
        fmt_ns(stats.batch_latency_ns.p99()),
    );
    let expected: u128 = (0..TENANTS)
        .flat_map(|t| {
            (0..BATCHES_PER_TENANT * 8).map(move |k| Namespace::new(t).prefixed(k) as u128)
        })
        .sum();
    assert_eq!(service.key_sum(), expected, "cross-shard key-sum validation");
    println!(
        "service holds {} keys across {} shards; key-sum validation ok",
        TENANTS as u64 * BATCHES_PER_TENANT * 8,
        service.shard_count(),
    );
}
