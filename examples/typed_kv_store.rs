//! A small typed key-value store: order IDs (signed 64-bit) mapped to prices
//! (f64), backed by the Elim-ABtree through the order-preserving typed
//! wrapper.  Demonstrates the `TypedTree` API that applications would use
//! instead of the raw `u64 -> u64` engine.
//!
//! Run with: `cargo run --release --example typed_kv_store`

use std::sync::Arc;

use elim_abtree_repro::abtree::{ElimABTree, TypedTree};

fn main() {
    let store: Arc<TypedTree<i64, f64, ElimABTree>> = Arc::new(TypedTree::default());

    // Concurrent order ingestion from several feeds, including negative IDs
    // (e.g. synthetic/backfill orders) to exercise the signed-key encoding.
    std::thread::scope(|scope| {
        for feed in 0..4i64 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let mut session = store.handle();
                for i in 0..50_000i64 {
                    let order_id = (i - 25_000) * 4 + feed;
                    let price = (order_id.unsigned_abs() % 10_000) as f64 / 100.0;
                    session.insert(order_id, price);
                }
            });
        }
    });

    // Point lookups and deletions, through a session of this thread.
    let mut session = store.handle();
    let probe = -37_001i64;
    if let Some(price) = session.get(probe) {
        println!("order {probe} priced at {price:.2}");
    }
    let removed = session.remove(probe);
    assert_eq!(session.get(probe), None);
    println!(
        "typed_kv_store: ingested 200k orders, removed {probe} (was {removed:?})"
    );
}
