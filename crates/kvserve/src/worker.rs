//! The shard-owner worker: one dedicated thread per shard, holding the
//! shard's single long-lived [`abtree::MapHandle`].
//!
//! This is the thread-per-core-style half of the service refactor: instead
//! of every router opening a session on every shard, each shard has exactly
//! one owner thread that opens one handle for the shard's whole lifetime
//! and executes *all* of its traffic.  Routers feed it through the SPSC
//! lanes in [`crate::queue`] — one request/reply pair per router × shard —
//! so the shard's EBR epoch, its tree's hot nodes and its stats stay on one
//! core, and a drain of a lane executes a *run* of requests against the
//! local handle with no per-request synchronization at all.
//!
//! ## Lane registry
//!
//! Routers come and go at any time, so each shard keeps a mutex-protected
//! mailbox of newly opened lanes plus a generation counter
//! ([`ShardState::lane_generation`]); the worker adopts pending lanes when
//! the counter moves and prunes lanes whose router half is gone.  The mutex
//! is touched only on router open — never on the request path.
//!
//! ## The version counter and the hot-key cache
//!
//! [`ShardState::version`] counts the shard's *state mutations*: the worker
//! bumps it (SeqCst) after applying any operation that changed the map and
//! before pushing that operation's reply.  Read replies carry the version
//! observed at execution, which is exact because the owner thread is the
//! only mutator.  A router's [`crate::cache::ReadCache`] entry `(key,
//! value, version)` is therefore valid exactly while the shard's current
//! version still equals the recorded one; because the bump happens before
//! the write's reply is released, a cached read that validates against an
//! un-bumped counter is *concurrent* with the in-flight write and may
//! legally linearize before it.  No-op writes (an insert that found the key
//! present, a delete that found nothing) leave both the state and the
//! counter untouched, so a Zipf-hot key that absorbs failed inserts does
//! not shed its cache entries.
//!
//! ## Idle protocol and shutdown
//!
//! An idle worker spins briefly, then publishes [`ShardState::idle`] and
//! re-scans once before parking; producers unpark it only when the flag is
//! up, so a busy shard never pays a syscall.  Dropping the
//! [`crate::KvService`] raises [`ShardState::shutdown`], unparks everyone
//! and joins the owners.

use std::sync::atomic::{AtomicBool, AtomicU8, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

use abtree::MapHandle;
use obs::{Stage, StageTrace, Stamp};

use crate::queue::{Consumer, Producer, PushError};
use crate::service::ShardStore;
use crate::stats::Histogram;

/// One request handed to a shard owner. Batch jobs carry their sub-batch
/// by value; the reply returns results the same way.
pub(crate) enum ShardJob {
    /// Point lookup.
    Get { key: u64 },
    /// Point insert-if-absent.
    Put { key: u64, value: u64 },
    /// Point removal.
    Delete { key: u64 },
    /// Range scan of the inclusive window `[lo, hi]` (pre-clamped by the
    /// router via `abtree::scan_window`).
    Range { lo: u64, hi: u64 },
    /// Shard-local multi-get sub-batch.
    GetBatch { keys: Vec<u64> },
    /// Shard-local multi-put sub-batch.
    PutBatch { pairs: Vec<(u64, u64)> },
}

/// The reply to one [`ShardJob`], in the same lane order. `version` is the
/// shard's mutation counter observed at execution (post-bump for writes),
/// which the router uses to stamp its hot-key cache entries.
pub(crate) enum ShardReply {
    /// Reply to the point jobs.
    Value { value: Option<u64>, version: u64 },
    /// Reply to `GetBatch`/`PutBatch`, values in sub-batch order.
    Values { values: Vec<Option<u64>>, version: u64 },
    /// Reply to `Range`: the entries stored in the window, in key order.
    Entries { entries: Vec<(u64, u64)> },
}

/// The worker end of one router's lane pair.  Every job rides with a
/// stage-trace [`Stamp`] — the router's post-enqueue time for a sampled
/// request, [`Stamp::NONE`] otherwise — and every reply carries the
/// post-apply stamp back so the router can time the reply-lane wait.
/// With telemetry compiled out `Stamp` is a ZST and the tuples cost
/// nothing.
pub(crate) struct Lane {
    pub(crate) jobs: Consumer<(Stamp, ShardJob)>,
    pub(crate) replies: Producer<(Stamp, ShardReply)>,
}

/// Startup not yet decided: the owner thread has not attempted to open
/// its store session.
pub(crate) const READY_STARTING: u8 = 0;
/// The owner opened its session and is serving.
pub(crate) const READY_UP: u8 = 1;
/// The owner could not register a session (SMR slot capacity) and exited.
pub(crate) const READY_FAILED: u8 = 2;

/// Shared coordination state of one shard, owned by its [`ShardCell`].
pub(crate) struct ShardState {
    /// Mutation counter; see the module docs.
    pub(crate) version: AtomicU64,
    /// Mailbox of lanes opened by routers but not yet adopted by the worker.
    pending_lanes: Mutex<Vec<Lane>>,
    /// Bumped on every mailbox deposit; the worker re-checks the mailbox
    /// only when it moves.
    lane_generation: AtomicU64,
    /// Raised by the worker just before parking; producers unpark only when
    /// it is up.
    idle: AtomicBool,
    /// Raised by [`crate::KvService`] teardown.
    shutdown: AtomicBool,
    /// Owner startup outcome: [`READY_STARTING`] until the owner thread has
    /// opened (or failed to open) its store session.
    ready: AtomicU8,
    /// The owner thread, for unparking (set once at spawn).
    owner: Mutex<Option<Thread>>,
    /// Lengths of the runs the worker drains per lane visit — the
    /// amortization the ownership model exists for.  Aggregated across
    /// shards with [`Histogram::merge`].
    pub(crate) run_length: Histogram,
}

impl ShardState {
    pub(crate) fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            pending_lanes: Mutex::new(Vec::new()),
            lane_generation: AtomicU64::new(0),
            idle: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            ready: AtomicU8::new(READY_STARTING),
            owner: Mutex::new(None),
            run_length: Histogram::new(),
        }
    }

    /// Publishes the owner's startup outcome (up or failed).
    pub(crate) fn publish_ready(&self, outcome: u8) {
        self.ready.store(outcome, Ordering::SeqCst);
    }

    /// Blocks until the owner published its startup outcome; returns `true`
    /// iff the owner came up.  Startup is bounded (one session-registration
    /// attempt), so a yield loop suffices.
    pub(crate) fn await_ready(&self) -> bool {
        loop {
            match self.ready.load(Ordering::SeqCst) {
                READY_STARTING => std::thread::yield_now(),
                READY_UP => return true,
                _ => return false,
            }
        }
    }

    /// Deposits a freshly opened lane for the worker to adopt and wakes it.
    pub(crate) fn register_lane(&self, lane: Lane) {
        self.pending_lanes.lock().expect("lane mailbox poisoned").push(lane);
        self.lane_generation.fetch_add(1, Ordering::Release);
        self.wake();
    }

    /// Records the owner thread handle; called once, right after spawn.
    pub(crate) fn set_owner(&self, thread: Thread) {
        *self.owner.lock().expect("owner slot poisoned") = Some(thread);
    }

    /// Unparks the owner if (and only if) it advertised itself idle.
    pub(crate) fn wake(&self) {
        if self.idle.load(Ordering::SeqCst) {
            if let Some(owner) = self.owner.lock().expect("owner slot poisoned").as_ref() {
                owner.unpark();
            }
        }
    }

    /// Raises the shutdown flag and wakes the owner unconditionally.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(owner) = self.owner.lock().expect("owner slot poisoned").as_ref() {
            owner.unpark();
        }
    }

    /// The shard's current mutation count (the validity stamp cached reads
    /// compare against).
    #[inline]
    pub(crate) fn current_version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }
}

/// One shard: the store plus its coordination state. `Arc`-shared between
/// the service (which also reads the store quiescently for key sums) and
/// the owner thread.
pub(crate) struct ShardCell {
    pub(crate) store: Box<dyn ShardStore>,
    pub(crate) state: ShardState,
    /// The service-wide stage trace; the owner records its `Dequeue` and
    /// `Apply` stages into it for requests the router sampled.
    pub(crate) trace: Arc<StageTrace>,
}

/// How many consecutive empty scans the worker tolerates before it
/// advertises idleness and parks.
const IDLE_SPINS: u32 = 64;

/// The shard-owner thread body: adopt lanes, drain them in runs, park when
/// idle, exit on shutdown once every adopted lane is dead or drained.
pub(crate) fn run_shard_owner(cell: Arc<ShardCell>) {
    let state = &cell.state;
    // The single long-lived session this whole design exists to create:
    // opened on the owner thread, kept until shutdown.  Registration can
    // fail (the store's SMR collector has a fixed slot capacity); report
    // the outcome instead of panicking so the service can refuse to start.
    let mut handle = match cell.store.try_handle() {
        Ok(handle) => {
            state.publish_ready(READY_UP);
            handle
        }
        Err(_) => {
            state.publish_ready(READY_FAILED);
            return;
        }
    };
    // Unsampled recorder: whether a request is traced was decided by the
    // router at submit time and rides in on the job's stamp.
    let recorder = cell.trace.recorder();
    let mut lanes: Vec<Lane> = Vec::new();
    let mut seen_generation = 0u64;
    let mut quiet_scans = 0u32;
    loop {
        let generation = state.lane_generation.load(Ordering::Acquire);
        if generation != seen_generation {
            seen_generation = generation;
            lanes.append(&mut state.pending_lanes.lock().expect("lane mailbox poisoned"));
        }
        let mut served = 0usize;
        lanes.retain_mut(|lane| {
            let mut run = 0u64;
            while let Some((stamp, job)) = lane.jobs.try_pop() {
                // Queue wait (post-enqueue to pop), then execution; both
                // no-ops for the untraced majority.  The post-apply stamp
                // rides back on the reply so the router can time `Ack`.
                let dequeued = recorder.record(Stage::Dequeue, stamp);
                let reply = execute(&mut *handle, state, job);
                let applied = recorder.record(Stage::Apply, dequeued);
                // The router bounds its in-flight requests by the lane
                // capacity, so a live reply ring always has room; a
                // disconnected one means the router is gone and the reply
                // is undeliverable — drop it.
                match lane.replies.try_push((applied, reply)) {
                    Ok(()) | Err(PushError::Disconnected(_)) => {}
                    Err(PushError::Full(_)) => {
                        unreachable!("reply lane overflowed its in-flight cap")
                    }
                }
                run += 1;
            }
            if run > 0 {
                state.run_length.record(run);
                served += run as usize;
            }
            // A lane is dead once its router dropped the producer half and
            // every queued job has been drained.
            !(lane.jobs.is_disconnected() && lane.jobs.is_empty())
        });
        if served > 0 {
            quiet_scans = 0;
            continue;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            // Shutdown requires exclusive service access, so no router (and
            // no new lane) can exist; drained means done.
            break;
        }
        quiet_scans += 1;
        if quiet_scans < IDLE_SPINS {
            std::hint::spin_loop();
            continue;
        }
        // Publish idleness, then re-scan once: a producer that pushed
        // before seeing the flag is caught by the re-scan, one that pushes
        // after seeing it will unpark us.
        state.idle.store(true, Ordering::SeqCst);
        let work_arrived = lanes.iter().any(|lane| !lane.jobs.is_empty())
            || state.lane_generation.load(Ordering::SeqCst) != seen_generation
            || state.shutdown.load(Ordering::SeqCst);
        if !work_arrived {
            std::thread::park();
        }
        state.idle.store(false, Ordering::SeqCst);
        quiet_scans = 0;
    }
}

/// Executes one job against the owner's handle, maintaining the mutation
/// counter (bump after apply, only on real mutations, always before the
/// reply is pushed — see the module docs for why that order is the one
/// that keeps cached reads linearizable).
fn execute(handle: &mut dyn MapHandle, state: &ShardState, job: ShardJob) -> ShardReply {
    match job {
        ShardJob::Get { key } => {
            let value = handle.get(key);
            ShardReply::Value {
                value,
                version: state.version.load(Ordering::Relaxed),
            }
        }
        ShardJob::Put { key, value } => {
            let previous = handle.insert(key, value);
            if previous.is_none() {
                state.version.fetch_add(1, Ordering::SeqCst);
            }
            ShardReply::Value {
                value: previous,
                version: state.version.load(Ordering::Relaxed),
            }
        }
        ShardJob::Delete { key } => {
            let removed = handle.delete(key);
            if removed.is_some() {
                state.version.fetch_add(1, Ordering::SeqCst);
            }
            ShardReply::Value {
                value: removed,
                version: state.version.load(Ordering::Relaxed),
            }
        }
        ShardJob::Range { lo, hi } => {
            let mut entries = Vec::new();
            handle.range(lo, hi, &mut entries);
            ShardReply::Entries { entries }
        }
        ShardJob::GetBatch { keys } => {
            let mut values = Vec::new();
            handle.get_batch(&keys, &mut values);
            ShardReply::Values {
                values,
                version: state.version.load(Ordering::Relaxed),
            }
        }
        ShardJob::PutBatch { pairs } => {
            let mut previous = Vec::new();
            handle.insert_batch(&pairs, &mut previous);
            // One bump covers the whole sub-batch: validity only needs the
            // counter to move whenever the state did.
            if previous.iter().any(|p| p.is_none()) {
                state.version.fetch_add(1, Ordering::SeqCst);
            }
            ShardReply::Values {
                values: previous,
                version: state.version.load(Ordering::Relaxed),
            }
        }
    }
}
