//! The multi-tenant namespace layer: tenant prefixes packed into keys.
//!
//! The engine stores plain `u64 -> u64`; the service layer carves the 64-bit
//! key space into a 16-bit **tenant prefix** and a 48-bit **local key**:
//!
//! ```text
//!   63            48 47                                0
//!  +----------------+----------------------------------+
//!  |  tenant (u16)  |         local key (48 bits)      |
//!  +----------------+----------------------------------+
//! ```
//!
//! Packing the tenant into the high bits keeps each tenant's keys
//! *contiguous* in the ordered engine, so a per-tenant scan is one window
//! ([`Namespace::key_range`]) rather than a filtered full scan.  The engine
//! reserves `u64::MAX` ([`abtree::EMPTY_KEY`]) as its "no key" sentinel,
//! which falls inside the last tenant's slice; [`Namespace::prefixed`]
//! therefore rejects the single colliding `(tenant, key)` combination.

use abtree::EMPTY_KEY;

/// Number of low bits holding the tenant-local key.
pub const LOCAL_KEY_BITS: u32 = 48;

/// Largest tenant-local key: local keys are 48-bit.
pub const MAX_LOCAL_KEY: u64 = (1 << LOCAL_KEY_BITS) - 1;

/// A tenant namespace: a 16-bit prefix over the engine's key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Namespace(u16);

impl Namespace {
    /// The namespace with tenant id `id`.
    pub fn new(id: u16) -> Self {
        Namespace(id)
    }

    /// This namespace's tenant id.
    pub fn id(&self) -> u16 {
        self.0
    }

    /// Packs a tenant-local key into the full engine key.
    ///
    /// Panics if `key` exceeds [`MAX_LOCAL_KEY`] or if the combination is
    /// the engine's reserved [`EMPTY_KEY`] sentinel (only
    /// `(u16::MAX, MAX_LOCAL_KEY)` collides).
    #[inline]
    pub fn prefixed(&self, key: u64) -> u64 {
        assert!(
            key <= MAX_LOCAL_KEY,
            "local key {key} exceeds the {LOCAL_KEY_BITS}-bit tenant key space"
        );
        let packed = ((self.0 as u64) << LOCAL_KEY_BITS) | key;
        assert!(
            packed != EMPTY_KEY,
            "(tenant {}, key {key}) packs to the reserved EMPTY_KEY sentinel",
            self.0
        );
        packed
    }

    /// Splits a full engine key back into `(namespace, local key)`.
    #[inline]
    pub fn split(packed: u64) -> (Namespace, u64) {
        (
            Namespace((packed >> LOCAL_KEY_BITS) as u16),
            packed & MAX_LOCAL_KEY,
        )
    }

    /// Whether `packed` belongs to this namespace.
    #[inline]
    pub fn contains(&self, packed: u64) -> bool {
        (packed >> LOCAL_KEY_BITS) as u16 == self.0
    }

    /// The inclusive window of engine keys owned by this namespace — feed it
    /// to a scan to enumerate one tenant's data.  The last tenant's upper
    /// bound is clamped below the reserved [`EMPTY_KEY`] sentinel.
    pub fn key_range(&self) -> (u64, u64) {
        let lo = (self.0 as u64) << LOCAL_KEY_BITS;
        let hi = (lo | MAX_LOCAL_KEY).min(EMPTY_KEY - 1);
        (lo, hi)
    }
}

impl std::fmt::Display for Namespace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_split_round_trips() {
        for (tenant, key) in [(0u16, 0u64), (1, 42), (u16::MAX, 0), (7, MAX_LOCAL_KEY)] {
            let ns = Namespace::new(tenant);
            let packed = ns.prefixed(key);
            assert_eq!(Namespace::split(packed), (ns, key));
            assert!(ns.contains(packed));
            assert!(!Namespace::new(tenant.wrapping_add(1)).contains(packed));
            let (lo, hi) = ns.key_range();
            assert!((lo..=hi).contains(&packed));
        }
    }

    #[test]
    fn namespaces_are_contiguous_and_ordered() {
        let a = Namespace::new(3);
        let b = Namespace::new(4);
        assert!(a.key_range().1 < b.key_range().0);
        assert_eq!(a.key_range().1 + 1, b.key_range().0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_local_key_panics() {
        Namespace::new(0).prefixed(MAX_LOCAL_KEY + 1);
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn the_one_reserved_combination_panics() {
        Namespace::new(u16::MAX).prefixed(MAX_LOCAL_KEY);
    }

    #[test]
    fn last_tenant_range_excludes_the_sentinel() {
        let (lo, hi) = Namespace::new(u16::MAX).key_range();
        assert_eq!(hi, EMPTY_KEY - 1);
        assert!(lo < hi);
        assert_eq!(Namespace::new(u16::MAX).to_string(), "tenant#65535");
    }
}
