//! A per-router hot-key read cache, validated by per-shard version
//! counters.
//!
//! Under the Zipf-skewed tenant traffic the load driver models, a handful
//! of keys absorb most lookups.  With the thread-per-shard service every
//! uncached lookup crosses an SPSC lane to the shard's owner thread; this
//! small, fixed-size, direct-mapped cache lets the top of the Zipf curve
//! skip the queue entirely.  It is private to one
//! [`ShardRouter`](crate::ShardRouter) (no sharing, no locks, no atomics on
//! the entry itself) and coherence comes from the owning shard worker's
//! mutation counter instead of invalidation messages: every entry is
//! stamped with the shard version observed when its value was read, and a
//! hit counts only while the shard's *current* version still equals that
//! stamp.  Any real mutation on the shard bumps the counter and implicitly
//! drops every entry cached from it — cheap, conservative, and exactly the
//! check that keeps cached reads linearizable (see the private `worker`
//! module for the bump-before-reply protocol this relies on).
//!
//! Negative results are cached too (`value = None`): a miss on a hot
//! absent key is as expensive through the queue as a hit.
//!
//! Sizing: the cache is a statically sized direct-mapped array indexed by
//! the same Fibonacci hash the service uses for shard routing.  Collisions
//! simply overwrite — with [`CACHE_SLOTS`] entries and Zipf traffic the
//! hot ranks effectively never alias each other.

/// Number of entries in a router's read cache. Power of two; at 24 bytes
/// per entry this is a ~24 KiB, comfortably L1/L2-resident table.
pub const CACHE_SLOTS: usize = 1024;

/// One cached read: `key` holds the engine's reserved `EMPTY_KEY` while
/// the slot is vacant (that key can never be stored or queried, so it is
/// unambiguous).
#[derive(Clone, Copy)]
struct Slot {
    key: u64,
    value: Option<u64>,
    version: u64,
}

const VACANT: Slot = Slot {
    key: abtree::EMPTY_KEY,
    value: None,
    version: 0,
};

/// The cache itself; see the module docs.
pub struct ReadCache {
    slots: Box<[Slot; CACHE_SLOTS]>,
}

impl Default for ReadCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ReadCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            slots: Box::new([VACANT; CACHE_SLOTS]),
        }
    }

    /// The slot index for `key`: high bits of the service's Fibonacci hash,
    /// so the index decorrelates from both the raw key and its shard.
    #[inline]
    fn slot_of(key: u64) -> usize {
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (hashed >> (64 - CACHE_SLOTS.trailing_zeros())) as usize
    }

    /// Looks up `key`, returning the cached read result (which may be a
    /// cached miss, `Some(None)`) only if the entry was stamped at the
    /// owning shard's current mutation version.
    #[inline]
    pub fn lookup(&self, key: u64, shard_version: u64) -> Option<Option<u64>> {
        let slot = &self.slots[Self::slot_of(key)];
        (slot.key == key && slot.version == shard_version).then_some(slot.value)
    }

    /// Records that `key` read as `value` while its shard was at mutation
    /// version `version`. Overwrites whatever occupied the slot.
    #[inline]
    pub fn store(&mut self, key: u64, value: Option<u64>, version: u64) {
        debug_assert_ne!(key, abtree::EMPTY_KEY, "reserved key reached the cache");
        self.slots[Self::slot_of(key)] = Slot { key, value, version };
    }

    /// Drops every entry (used by tests; routers rely on version drift).
    pub fn clear(&mut self) {
        self.slots.fill(VACANT);
    }
}

impl std::fmt::Debug for ReadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let occupied = self.slots.iter().filter(|s| s.key != abtree::EMPTY_KEY).count();
        f.debug_struct("ReadCache")
            .field("slots", &CACHE_SLOTS)
            .field("occupied", &occupied)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_requires_matching_key_and_version() {
        let mut cache = ReadCache::new();
        assert_eq!(cache.lookup(7, 0), None, "cold cache");
        cache.store(7, Some(70), 3);
        assert_eq!(cache.lookup(7, 3), Some(Some(70)));
        assert_eq!(cache.lookup(7, 4), None, "any shard mutation invalidates");
        assert_eq!(cache.lookup(8, 3), None, "different key");
        // Re-stamping at the new version revives the slot.
        cache.store(7, Some(71), 4);
        assert_eq!(cache.lookup(7, 4), Some(Some(71)));
    }

    #[test]
    fn negative_results_are_cached() {
        let mut cache = ReadCache::new();
        cache.store(9, None, 1);
        assert_eq!(cache.lookup(9, 1), Some(None), "a hit on an absent key");
        assert_eq!(cache.lookup(9, 2), None);
    }

    #[test]
    fn colliding_keys_overwrite() {
        let mut cache = ReadCache::new();
        // Two keys that map to the same direct-mapped slot.
        let a = 1u64;
        let mut b = 2u64;
        while ReadCache::slot_of(b) != ReadCache::slot_of(a) {
            b += 1;
        }
        cache.store(a, Some(10), 0);
        cache.store(b, Some(20), 0);
        assert_eq!(cache.lookup(a, 0), None, "evicted by the collision");
        assert_eq!(cache.lookup(b, 0), Some(Some(20)));
    }

    #[test]
    fn clear_empties_the_cache() {
        let mut cache = ReadCache::new();
        cache.store(5, Some(50), 0);
        cache.clear();
        assert_eq!(cache.lookup(5, 0), None);
        assert!(format!("{cache:?}").contains("occupied: 0"));
    }
}
