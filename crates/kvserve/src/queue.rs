//! Bounded single-producer / single-consumer ring queues on std atomics.
//!
//! These are the lanes that feed the thread-per-shard service: every
//! [`ShardRouter`](crate::ShardRouter) owns one `(request, reply)` queue
//! pair per shard, with the router as the sole producer of requests and
//! sole consumer of replies and the shard's owner thread on the other end
//! of both.  The SPSC restriction is what keeps the fast path to two plain
//! atomic loads and one release store per side — no CAS loops, no locks,
//! no external crates (the build environment is offline).
//!
//! The ring is a power-of-two slot array indexed by free-running `head`
//! (consumer cursor) and `tail` (producer cursor) counters, the classic
//! Lamport queue: the producer publishes a slot with a release store of
//! `tail`, the consumer acquires it, and each cursor is written by exactly
//! one side.  [`Producer::try_push`] never blocks — a full ring hands the
//! value back as [`PushError::Full`], which the service surfaces as its
//! `Overloaded` backpressure signal instead of wedging a client inside a
//! queue.
//!
//! Both halves share ownership of the ring; dropping either half raises a
//! side-specific disconnect flag so the survivor can stop (the shard worker
//! prunes lanes whose router is gone, the router panics rather than spin
//! on a dead worker).  Whichever half drops last releases the values still
//! in the ring.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a [`Producer::try_push`] could not enqueue; both cases hand the
/// rejected value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is at capacity; retry after the consumer drains, or shed
    /// the request.
    Full(T),
    /// The consumer half was dropped; nothing will ever drain the ring.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// The value that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(value) | PushError::Disconnected(value) => value,
        }
    }
}

/// The shared ring. `head`/`tail` are free-running counters (masked on
/// access), so `tail - head` is always the number of occupied slots.
struct Inner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`; the slot count is a power of two.
    mask: usize,
    /// Next slot to pop; written only by the consumer.
    head: AtomicUsize,
    /// Next slot to fill; written only by the producer.
    tail: AtomicUsize,
    producer_gone: AtomicBool,
    consumer_gone: AtomicBool,
}

// The UnsafeCell slots are only touched under the head/tail ownership
// protocol (each in-flight slot is accessed by exactly one side), so the
// ring as a whole is safe to share once `T` itself can move across threads.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: both halves are gone, so plain reads of
        // the cursors are current and the occupied range is ours to drop.
        let tail = *self.tail.get_mut();
        let mut head = *self.head.get_mut();
        while head != tail {
            unsafe { (*self.slots[head & self.mask].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// The sending half of an SPSC ring; see the module docs. Not clonable —
/// single-producer is the contract that makes the fast path cheap.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of an SPSC ring; see the module docs.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a bounded SPSC queue holding at least `capacity` values
/// (rounded up to a power of two, minimum 1).
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let slots = capacity.max(1).next_power_of_two();
    let inner = Arc::new(Inner {
        slots: (0..slots).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect(),
        mask: slots - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_gone: AtomicBool::new(false),
        consumer_gone: AtomicBool::new(false),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
        },
        Consumer { inner },
    )
}

impl<T> Producer<T> {
    /// Enqueues `value` if the ring has a free slot and a live consumer,
    /// handing it back as a [`PushError`] otherwise. Never blocks.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        if inner.consumer_gone.load(Ordering::Acquire) {
            return Err(PushError::Disconnected(value));
        }
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(PushError::Full(value));
        }
        unsafe { (*inner.slots[tail & inner.mask].get()).write(value) };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        len_of(&self.inner)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots in the ring (the `Full` threshold).
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Whether the consumer half was dropped.
    pub fn is_disconnected(&self) -> bool {
        self.inner.consumer_gone.load(Ordering::Acquire)
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.producer_gone.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Dequeues the oldest value, or `None` if the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        if head == inner.tail.load(Ordering::Acquire) {
            return None;
        }
        let value = unsafe { (*inner.slots[head & inner.mask].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        len_of(&self.inner)
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer half was dropped. A disconnected *and* empty
    /// lane is dead: no value is in flight and none can arrive.
    pub fn is_disconnected(&self) -> bool {
        self.inner.producer_gone.load(Ordering::Acquire)
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.consumer_gone.store(true, Ordering::Release);
    }
}

fn len_of<T>(inner: &Inner<T>) -> usize {
    let tail = inner.tail.load(Ordering::Acquire);
    let head = inner.head.load(Ordering::Acquire);
    tail.wrapping_sub(head)
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_len() {
        let (mut tx, mut rx) = channel::<u64>(4);
        assert_eq!(tx.capacity(), 4);
        assert!(tx.is_empty() && rx.is_empty());
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.len(), 4);
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn full_ring_hands_the_value_back() {
        let (mut tx, mut rx) = channel::<u64>(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(PushError::Full(3)));
        assert_eq!(PushError::Full(3u64).into_inner(), 3);
        // Draining one slot makes room again (the ring wraps).
        assert_eq!(rx.try_pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), Some(3));
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let (tx, _rx) = channel::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, _rx) = channel::<u8>(0);
        assert_eq!(tx.capacity(), 1);
    }

    #[test]
    fn disconnect_flags_both_ways() {
        let (mut tx, rx) = channel::<u64>(2);
        assert!(!tx.is_disconnected() && !rx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        assert_eq!(tx.try_push(7), Err(PushError::Disconnected(7)));

        let (tx, mut rx) = channel::<u64>(2);
        drop(tx);
        assert!(rx.is_disconnected());
        assert_eq!(rx.try_pop(), None, "disconnected and empty means dead");
    }

    #[test]
    fn queued_values_survive_a_producer_drop() {
        let (mut tx, mut rx) = channel::<u64>(2);
        tx.try_push(41).unwrap();
        tx.try_push(42).unwrap();
        drop(tx);
        assert!(rx.is_disconnected());
        assert_eq!(rx.try_pop(), Some(41));
        assert_eq!(rx.try_pop(), Some(42));
    }

    #[test]
    fn dropping_the_ring_drops_queued_values() {
        let witness = Arc::new(());
        let (mut tx, rx) = channel::<Arc<()>>(4);
        for _ in 0..3 {
            tx.try_push(Arc::clone(&witness)).unwrap();
        }
        assert_eq!(Arc::strong_count(&witness), 4);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&witness), 1, "ring released its slots");
    }

    #[test]
    fn two_thread_stress_keeps_order() {
        let (mut tx, mut rx) = channel::<u64>(8);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for v in 0..10_000u64 {
                    let mut value = v;
                    loop {
                        match tx.try_push(value) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                value = back;
                                // Yield, don't spin: on a single-core host a
                                // spinning producer starves the consumer for
                                // its whole timeslice.
                                std::thread::yield_now();
                            }
                            Err(PushError::Disconnected(_)) => panic!("consumer died"),
                        }
                    }
                }
            });
            scope.spawn(move || {
                let mut expected = 0u64;
                while expected < 10_000 {
                    if let Some(v) = rx.try_pop() {
                        assert_eq!(v, expected);
                        expected += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        });
    }

    #[test]
    fn debug_formats() {
        let (tx, rx) = channel::<u64>(2);
        assert!(format!("{tx:?}").contains("Producer"));
        assert!(format!("{rx:?}").contains("Consumer"));
    }
}
