//! The sharded service and its per-worker routers.
//!
//! A [`KvService`] owns `S` independent engine instances (*shards*) plus the
//! shared [`ServiceStats`].  Keys are spread over shards with a
//! multiplicative hash, so contiguous hot key ranges (Zipfian traffic) still
//! fan out — but a *single* hot key concentrates on one shard, which is the
//! hot-shard regime the load driver exercises.
//!
//! All request traffic flows through per-worker [`ShardRouter`] sessions.  A
//! router opens one [`MapHandle`] per shard **once** and keeps them for its
//! lifetime, so the per-operation cost is a local epoch pin in the target
//! shard rather than a collector registration; batches additionally amortize
//! virtual dispatch (one `get_batch`/`insert_batch` call per shard touched)
//! and the latency bookkeeping (one timestamp pair per batch).

use std::time::Instant;

use abtree::{ConcurrentMap, KeySum, MapHandle};

use crate::request::{Request, Response};
use crate::stats::ServiceStats;

/// What a shard must provide: per-thread sessions ([`ConcurrentMap`]) plus
/// quiescent key-sum validation ([`KeySum`]).
///
/// Blanket-implemented for every `ConcurrentMap + KeySum` type, which
/// includes the benchmark registry's `Box<dyn Benchable>` values — so any
/// registry structure can serve as a shard.
pub trait ShardStore: ConcurrentMap + KeySum {}

impl<T: ConcurrentMap + KeySum + ?Sized> ShardStore for T {}

/// A sharded, batched, embedded key-value service (see the module docs).
pub struct KvService {
    shards: Vec<Box<dyn ShardStore>>,
    stats: ServiceStats,
}

impl KvService {
    /// Builds a service with `shards` shards and `namespace_slots`
    /// namespace-stat rows (both clamped to at least 1), constructing each
    /// shard with `factory` (called with the shard index).
    ///
    /// The factory returns boxed [`ShardStore`]s, so shards can be concrete
    /// trees (`Box::new(ElimABTree::new())`) or registry-built trait objects
    /// (`Box::new(make_structure(name))`).
    pub fn new(
        shards: usize,
        namespace_slots: usize,
        mut factory: impl FnMut(usize) -> Box<dyn ShardStore>,
    ) -> Self {
        let shards: Vec<_> = (0..shards.max(1)).map(&mut factory).collect();
        let stats = ServiceStats::new(shards.len(), namespace_slots.max(1));
        Self { shards, stats }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared statistics (counters update live as routers serve
    /// traffic).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The shard serving `key`: high bits of a Fibonacci multiplicative
    /// hash, range-reduced without division.
    ///
    /// Panics on the engine's reserved [`abtree::EMPTY_KEY`] sentinel: the
    /// router sits on the wire boundary, and the codec accepts any `u64`, so
    /// this is the always-on guard (the engine itself only debug-asserts)
    /// that keeps a hostile or corrupt-but-well-formed frame from storing
    /// the empty-slot marker into a shard.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        assert!(
            key != abtree::EMPTY_KEY,
            "the reserved EMPTY_KEY sentinel cannot be stored or queried"
        );
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Opens a per-worker router session (one [`MapHandle`] per shard).
    /// Call once per worker thread, like [`ConcurrentMap::handle`].
    pub fn router(&self) -> ShardRouter<'_> {
        ShardRouter {
            handles: self.shards.iter().map(|s| s.handle()).collect(),
            groups: (0..self.shards.len()).map(|_| Group::default()).collect(),
            touched: Vec::new(),
            service: self,
            batch_results: Vec::new(),
            shard_scan: Vec::new(),
        }
    }

    /// Sum of keys stored across all shards.  Quiescent only, like
    /// [`KeySum::key_sum`]; drives the cross-shard checksum validation.
    pub fn key_sum(&self) -> u128 {
        self.shards.iter().map(|s| s.key_sum()).sum()
    }

    /// Per-shard key sums, in shard order (quiescent only).
    pub fn shard_key_sums(&self) -> Vec<u128> {
        self.shards.iter().map(|s| s.key_sum()).collect()
    }

    /// The registry name of shard `index`'s structure.
    pub fn shard_name(&self, index: usize) -> &'static str {
        self.shards[index].name()
    }
}

impl std::fmt::Debug for KvService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvService")
            .field("shards", &self.shards.len())
            .field("structure", &self.shards.first().map(|s| s.name()))
            .finish_non_exhaustive()
    }
}

/// Per-shard scratch used to regroup a batch by destination shard.
#[derive(Default)]
struct Group {
    keys: Vec<u64>,
    pairs: Vec<(u64, u64)>,
    /// Original batch positions of this group's entries, for scattering
    /// results back into input order.
    positions: Vec<u32>,
}

/// A per-worker session over the whole service: one pinned engine session
/// per shard, plus regrouping scratch so batch execution allocates nothing
/// in steady state.
///
/// Obtained from [`KvService::router`]; like the engine handles it wraps, a
/// router must stay on the thread that opened it.
pub struct ShardRouter<'s> {
    service: &'s KvService,
    handles: Vec<Box<dyn MapHandle + 's>>,
    groups: Vec<Group>,
    /// Shards with a non-empty group in the batch being executed (sparse
    /// clear: only touched groups are reset).
    touched: Vec<usize>,
    batch_results: Vec<Option<u64>>,
    shard_scan: Vec<(u64, u64)>,
}

impl<'s> ShardRouter<'s> {
    /// The service this router serves.
    pub fn service(&self) -> &'s KvService {
        self.service
    }

    /// Point lookup of `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let stats = &self.service.stats;
        let shard = self.service.shard_of(key);
        let started = Instant::now();
        let value = self.handles[shard].get(key);
        stats.point_latency_ns.record(elapsed_ns(started));
        stats.shard(shard).record_get(value.is_some());
        let ns = stats.namespace(stats.namespace_slot(key));
        ns.record_get(value.is_some());
        value
    }

    /// Insert-if-absent of `key -> value`: returns the existing value
    /// (leaving it unchanged) if `key` was present, `None` if the pair was
    /// inserted (see [`MapHandle::insert`]).
    pub fn put(&mut self, key: u64, value: u64) -> Option<u64> {
        let stats = &self.service.stats;
        let shard = self.service.shard_of(key);
        let started = Instant::now();
        let previous = self.handles[shard].insert(key, value);
        stats.point_latency_ns.record(elapsed_ns(started));
        stats.shard(shard).record_put();
        stats.namespace(stats.namespace_slot(key)).record_put();
        previous
    }

    /// Removes `key`, returning its value if it was present.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        let stats = &self.service.stats;
        let shard = self.service.shard_of(key);
        let started = Instant::now();
        let removed = self.handles[shard].delete(key);
        stats.point_latency_ns.record(elapsed_ns(started));
        stats.shard(shard).record_delete();
        stats.namespace(stats.namespace_slot(key)).record_delete();
        removed
    }

    /// Scatter-gather scan of the window `[lo, lo + len - 1]` (clamped below
    /// the engine's reserved sentinel): every shard is scanned and the
    /// results are merged into `out`, sorted by key (`out` is cleared
    /// first).
    ///
    /// Each *per-shard* sub-scan has that shard's scan guarantee (a
    /// linearizable snapshot on the (a,b)-trees); the merged cross-shard
    /// result is *not* one atomic snapshot — shards are scanned one after
    /// another, like any scatter-gather service read.
    pub fn scan(&mut self, lo: u64, len: u64, out: &mut Vec<(u64, u64)>) {
        // Same boundary guard as `shard_of` (which a scan bypasses): the
        // reserved sentinel is rejected loudly, not clamped into an empty
        // result.
        assert!(
            lo != abtree::EMPTY_KEY,
            "the reserved EMPTY_KEY sentinel cannot be stored or queried"
        );
        let stats = &self.service.stats;
        out.clear();
        let Some((lo, hi)) = abtree::scan_window(lo, len) else {
            return;
        };
        let started = Instant::now();
        for (shard, handle) in self.handles.iter_mut().enumerate() {
            handle.range(lo, hi, &mut self.shard_scan);
            out.extend_from_slice(&self.shard_scan);
            stats.shard(shard).record_scan();
        }
        out.sort_unstable_by_key(|&(key, _)| key);
        stats.scan_latency_ns.record(elapsed_ns(started));
        stats.namespace(stats.namespace_slot(lo)).record_scan();
    }

    /// Batched multi-get: one lookup per key, results pushed to `out`
    /// (cleared first) in input order.
    ///
    /// Keys are regrouped by destination shard, and each shard serves its
    /// whole sub-batch through one virtual [`MapHandle::get_batch`] call —
    /// this is what makes an `N`-key multi-get cheaper than `N` single
    /// [`get`](Self::get)s on the same router (one dispatch, one latency
    /// sample, one stats pass per shard instead of per key).
    pub fn mget(&mut self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        let stats = &self.service.stats;
        out.clear();
        out.resize(keys.len(), None);
        let started = Instant::now();
        for (position, &key) in keys.iter().enumerate() {
            let shard = self.service.shard_of(key);
            let group = &mut self.groups[shard];
            if group.keys.is_empty() {
                self.touched.push(shard);
            }
            group.keys.push(key);
            group.positions.push(position as u32);
        }
        for &shard in &self.touched {
            let group = &mut self.groups[shard];
            self.handles[shard].get_batch(&group.keys, &mut self.batch_results);
            let counters = stats.shard(shard);
            counters.record_mget();
            for (&position, (&key, &value)) in group
                .positions
                .iter()
                .zip(group.keys.iter().zip(&self.batch_results))
            {
                counters.record_lookup(value.is_some());
                let ns = stats.namespace(stats.namespace_slot(key));
                ns.record_mget();
                ns.record_lookup(value.is_some());
                out[position as usize] = value;
            }
            group.keys.clear();
            group.positions.clear();
        }
        self.touched.clear();
        stats.batch_latency_ns.record(elapsed_ns(started));
        stats.batch_size.record(keys.len() as u64);
    }

    /// Batched multi-put (insert-if-absent per pair): per-pair results
    /// pushed to `out` (cleared first) in input order, `None` meaning the
    /// pair was inserted.
    ///
    /// Same regrouping and amortization as [`mget`](Self::mget), through one
    /// [`MapHandle::insert_batch`] call per shard touched.
    pub fn mput(&mut self, pairs: &[(u64, u64)], out: &mut Vec<Option<u64>>) {
        let stats = &self.service.stats;
        out.clear();
        out.resize(pairs.len(), None);
        let started = Instant::now();
        for (position, &(key, value)) in pairs.iter().enumerate() {
            let shard = self.service.shard_of(key);
            let group = &mut self.groups[shard];
            if group.pairs.is_empty() {
                self.touched.push(shard);
            }
            group.pairs.push((key, value));
            group.positions.push(position as u32);
        }
        for &shard in &self.touched {
            let group = &mut self.groups[shard];
            self.handles[shard].insert_batch(&group.pairs, &mut self.batch_results);
            let counters = stats.shard(shard);
            counters.record_mput();
            for (&position, (&(key, _), &previous)) in group
                .positions
                .iter()
                .zip(group.pairs.iter().zip(&self.batch_results))
            {
                stats.namespace(stats.namespace_slot(key)).record_mput();
                out[position as usize] = previous;
            }
            group.pairs.clear();
            group.positions.clear();
        }
        self.touched.clear();
        stats.batch_latency_ns.record(elapsed_ns(started));
        stats.batch_size.record(pairs.len() as u64);
    }

    /// Executes one request, returning its response.
    pub fn execute(&mut self, request: &Request) -> Response {
        match request {
            Request::Get { key } => Response::Value(self.get(*key)),
            Request::Put { key, value } => Response::Value(self.put(*key, *value)),
            Request::Delete { key } => Response::Value(self.delete(*key)),
            Request::Scan { lo, len } => {
                let mut entries = Vec::new();
                self.scan(*lo, *len, &mut entries);
                Response::Entries(entries)
            }
            Request::MGet { keys } => {
                let mut values = Vec::new();
                self.mget(keys, &mut values);
                Response::Values(values)
            }
            Request::MPut { pairs } => {
                let mut results = Vec::new();
                self.mput(pairs, &mut results);
                Response::Values(results)
            }
        }
    }

    /// Executes a request batch in order, pushing one response per request
    /// onto `out` (cleared first).
    pub fn execute_batch(&mut self, requests: &[Request], out: &mut Vec<Response>) {
        out.clear();
        out.reserve(requests.len());
        for request in requests {
            out.push(self.execute(request));
        }
    }
}

impl std::fmt::Debug for ShardRouter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.handles.len())
            .finish_non_exhaustive()
    }
}

/// Elapsed nanoseconds since `started`, saturated into a `u64`.
#[inline]
fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use abtree::ElimABTree;

    fn two_shard_service() -> KvService {
        KvService::new(2, 1, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        })
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let service = two_shard_service();
        for key in 0..1_000u64 {
            let shard = service.shard_of(key);
            assert!(shard < 2);
            assert_eq!(shard, service.shard_of(key), "routing must be stable");
        }
        // The multiplicative hash must actually use both shards.
        let hits: std::collections::HashSet<_> = (0..100).map(|k| service.shard_of(k)).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn point_ops_round_trip_across_shards() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..500u64 {
            assert_eq!(router.put(key, key * 2), None);
        }
        for key in 0..500u64 {
            assert_eq!(router.get(key), Some(key * 2));
            assert_eq!(router.put(key, 999), Some(key * 2), "insert-if-absent");
        }
        for key in (0..500u64).step_by(2) {
            assert_eq!(router.delete(key), Some(key * 2));
            assert_eq!(router.get(key), None);
        }
        drop(router);
        assert_eq!(
            service.key_sum(),
            (0..500u128).filter(|k| k % 2 == 1).sum::<u128>()
        );
    }

    #[test]
    fn scan_merges_shards_in_key_order() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..200u64 {
            router.put(key, key + 1);
        }
        let mut out = Vec::new();
        router.scan(50, 100, &mut out);
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(out.first(), Some(&(50, 51)));
        assert_eq!(out.last(), Some(&(149, 150)));
        router.scan(10, 0, &mut out);
        assert!(out.is_empty(), "len 0 scans nothing");
    }

    #[test]
    fn mget_matches_single_gets_in_input_order() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..100u64 {
            router.put(key, key * 3);
        }
        let keys = [99, 0, 500, 42, 42, 7];
        let mut batched = Vec::new();
        router.mget(&keys, &mut batched);
        let singles: Vec<_> = keys.iter().map(|&k| router.get(k)).collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn mput_reports_per_pair_results() {
        let service = two_shard_service();
        let mut router = service.router();
        let mut results = Vec::new();
        router.mput(&[(1, 10), (2, 20), (1, 99)], &mut results);
        assert_eq!(results, vec![None, None, Some(10)]);
        assert_eq!(router.get(1), Some(10), "first writer wins");
    }

    #[test]
    fn execute_covers_every_request_kind() {
        let service = two_shard_service();
        let mut router = service.router();
        assert_eq!(
            router.execute(&Request::Put { key: 5, value: 50 }),
            Response::Value(None)
        );
        assert_eq!(
            router.execute(&Request::Get { key: 5 }),
            Response::Value(Some(50))
        );
        assert_eq!(
            router.execute(&Request::MPut {
                pairs: vec![(6, 60), (7, 70)]
            }),
            Response::Values(vec![None, None])
        );
        assert_eq!(
            router.execute(&Request::MGet { keys: vec![5, 6, 8] }),
            Response::Values(vec![Some(50), Some(60), None])
        );
        assert_eq!(
            router.execute(&Request::Scan { lo: 5, len: 3 }),
            Response::Entries(vec![(5, 50), (6, 60), (7, 70)])
        );
        assert_eq!(
            router.execute(&Request::Delete { key: 5 }),
            Response::Value(Some(50))
        );
        let mut responses = Vec::new();
        router.execute_batch(
            &[Request::Get { key: 6 }, Request::Get { key: 5 }],
            &mut responses,
        );
        assert_eq!(
            responses,
            vec![Response::Value(Some(60)), Response::Value(None)]
        );
    }

    #[test]
    fn stats_account_traffic() {
        let service = two_shard_service();
        let mut router = service.router();
        router.put(1, 1);
        router.get(1);
        router.get(2);
        router.mget(&[1, 2, 3], &mut Vec::new());
        router.delete(1);
        let mut scan_out = Vec::new();
        router.scan(0, 10, &mut scan_out);
        drop(router);

        let stats = service.stats();
        let totals: u64 = stats.shards().iter().map(|s| s.total_ops()).sum();
        assert!(totals >= 5);
        let hits: u64 = stats.shards().iter().map(|s| s.hits()).sum();
        let misses: u64 = stats.shards().iter().map(|s| s.misses()).sum();
        assert_eq!(hits, 2, "get(1) and mget hit on key 1");
        assert_eq!(misses, 3, "get(2) and mget misses on 2 and 3");
        assert_eq!(stats.point_latency_ns.count(), 4, "put+get+get+delete");
        assert_eq!(stats.batch_latency_ns.count(), 1);
        assert_eq!(stats.scan_latency_ns.count(), 1);
        assert_eq!(stats.batch_size.count(), 1);
        assert!(stats.point_latency_ns.p50().unwrap() <= stats.point_latency_ns.quantile(1.0).unwrap());
        // Every shard was scanned once by the scatter-gather scan.
        for shard in stats.shards() {
            assert_eq!(shard.scans(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn reserved_sentinel_is_rejected_at_the_boundary() {
        // A decoded wire frame may carry any u64; the router must refuse the
        // engine's reserved key loudly even in release builds.
        let service = two_shard_service();
        let mut router = service.router();
        router.put(abtree::EMPTY_KEY, 1);
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn reserved_sentinel_is_rejected_in_batches() {
        let service = two_shard_service();
        let mut router = service.router();
        router.mget(&[1, abtree::EMPTY_KEY], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn reserved_sentinel_is_rejected_in_scans() {
        let service = two_shard_service();
        let mut router = service.router();
        router.scan(abtree::EMPTY_KEY, 10, &mut Vec::new());
    }

    #[test]
    fn shard_count_is_clamped_to_one() {
        let service = KvService::new(0, 0, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        });
        assert_eq!(service.shard_count(), 1);
        let mut router = service.router();
        assert_eq!(router.put(1, 2), None);
        assert_eq!(router.get(1), Some(2));
        assert_eq!(service.shard_name(0), "elim-abtree");
        assert!(format!("{service:?}").contains("KvService"));
        assert!(format!("{router:?}").contains("ShardRouter"));
    }
}
