//! The sharded service, its shard-owner workers, and the per-client
//! routers.
//!
//! A [`KvService`] owns `S` independent engine instances (*shards*).  Each
//! shard is owned by exactly one dedicated worker thread (the private
//! `worker` module) that opens the shard's single long-lived
//! [`abtree::MapHandle`] and executes every operation that touches the
//! shard, so the tree's EBR epoch and hot cache lines stay put.  Keys are
//! spread over shards with a multiplicative hash, so contiguous hot key
//! ranges (Zipfian traffic) still fan out — but a *single* hot key
//! concentrates on one shard, which is the hot-shard regime the load
//! driver exercises.
//!
//! All request traffic flows through per-client [`ShardRouter`] sessions.
//! A router is a thin enqueue/await layer: it owns one pair of bounded
//! SPSC lanes ([`crate::queue`]) per shard, splits `MGet`/`MPut` into
//! shard-local sub-batches, pushes them to the owning workers (fanning out
//! before collecting, so shards execute concurrently), and reassembles the
//! completions in input order.  In front of the queues sits a per-router
//! hot-key read cache ([`crate::cache`]) validated by the shards' mutation
//! counters, so the top of the Zipf curve never crosses a lane at all.
//!
//! Two request interfaces share the lanes:
//!
//! * the **blocking** methods ([`get`](ShardRouter::get),
//!   [`mget`](ShardRouter::mget), ...) — one call, one completed result;
//! * the **pipelined** pair [`submit`](ShardRouter::submit) /
//!   [`collect`](ShardRouter::collect) for point requests, which keeps up
//!   to [`LANE_CAPACITY`] requests per shard in flight and returns
//!   [`Overloaded`] — never blocks — when a lane is full.  The two styles
//!   must not be interleaved: blocking calls assert that nothing is in
//!   flight.

use std::collections::VecDeque;
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use abtree::{ConcurrentMap, KeySum};
use obs::{Registry, Sample, Stage, StageRecorder, StageTrace, Stamp};

use crate::cache::ReadCache;
use crate::queue::{self, Consumer, Producer};
use crate::request::{Request, Response};
use crate::stats::{Histogram, ServiceStats};
use crate::worker::{run_shard_owner, Lane, ShardCell, ShardJob, ShardReply, ShardState};

/// What a shard must provide: per-thread sessions ([`ConcurrentMap`]) plus
/// quiescent key-sum validation ([`KeySum`]).
///
/// Blanket-implemented for every `ConcurrentMap + KeySum` type, which
/// includes the benchmark registry's `Box<dyn Benchable>` values — so any
/// registry structure can serve as a shard.
pub trait ShardStore: ConcurrentMap + KeySum {}

impl<T: ConcurrentMap + KeySum + ?Sized> ShardStore for T {}

/// Capacity of each SPSC lane, and therefore the per-shard in-flight cap
/// of one router's pipelined submissions.  A 65th uncollected submission
/// to one shard is refused with [`Overloaded`].
pub const LANE_CAPACITY: usize = 64;

/// Point requests are stage-traced one in `2^TRACE_SAMPLE_SHIFT`: dense
/// enough to fill the per-stage latency histograms within seconds of real
/// load, sparse enough that the extra clock reads stay far inside the
/// telemetry budget on the pipelined hot path.
const TRACE_SAMPLE_SHIFT: u32 = 4;

/// Backpressure signal of [`ShardRouter::submit`]: the target shard's lane
/// already holds [`LANE_CAPACITY`] uncollected requests from this router.
/// The request was **not** enqueued; collect completions (or shed the
/// request — the wire codec can answer [`Response::Overloaded`]) and
/// retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded;

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard lane full: {LANE_CAPACITY} requests already in flight")
    }
}

impl std::error::Error for Overloaded {}

/// Startup failure of [`KvService::try_new`]: a shard-owner thread could
/// not open its store session because the store's SMR collector is out of
/// registration slots ([`abebr::MAX_THREADS`]).  The partially started
/// service has already been torn down when this is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStartupError {
    /// Index of the first shard whose owner failed to register.
    pub shard: usize,
}

impl std::fmt::Display for ShardStartupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} owner could not register a reclamation session \
             (collector slot capacity exhausted)",
            self.shard
        )
    }
}

impl std::error::Error for ShardStartupError {}

/// A sharded, batched, embedded key-value service (see the module docs).
pub struct KvService {
    shards: Vec<Arc<ShardCell>>,
    owners: Vec<JoinHandle<()>>,
    stats: Arc<ServiceStats>,
    /// The telemetry spine: every subsystem of the service (operation
    /// counters, stage trace, per-shard EBR health) registers a pull
    /// source here, and front ends layered on top add their own.
    registry: Arc<Registry>,
    /// The per-request stage trace the routers and shard owners record
    /// into (sampled; see [`TRACE_SAMPLE_SHIFT`]).
    trace: Arc<StageTrace>,
    /// How long routers spin on an empty reply lane before yielding; ~0 on
    /// a single-core host, where spinning only delays the worker.
    reply_spin: u32,
}

impl KvService {
    /// Builds a service with `shards` shards and `namespace_slots`
    /// namespace-stat rows (both clamped to at least 1), constructing each
    /// shard with `factory` (called with the shard index) and spawning its
    /// owner thread.
    ///
    /// The factory returns boxed [`ShardStore`]s, so shards can be concrete
    /// trees (`Box::new(ElimABTree::new())`) or registry-built trait objects
    /// (`Box::new(make_structure(name))`).
    pub fn new(
        shards: usize,
        namespace_slots: usize,
        factory: impl FnMut(usize) -> Box<dyn ShardStore>,
    ) -> Self {
        Self::try_new(shards, namespace_slots, factory)
            .expect("kvserve: shard owner failed to start")
    }

    /// Like [`KvService::new`], but reports shard-owner startup failure
    /// (a store whose SMR collector has no free registration slots) as an
    /// error instead of panicking.  On failure the already-spawned owners
    /// are shut down and joined before returning.
    pub fn try_new(
        shards: usize,
        namespace_slots: usize,
        mut factory: impl FnMut(usize) -> Box<dyn ShardStore>,
    ) -> Result<Self, ShardStartupError> {
        let trace = Arc::new(StageTrace::new());
        let shards: Vec<Arc<ShardCell>> = (0..shards.max(1))
            .map(|index| {
                Arc::new(ShardCell {
                    store: factory(index),
                    state: ShardState::new(),
                    trace: Arc::clone(&trace),
                })
            })
            .collect();
        let stats = Arc::new(ServiceStats::new(shards.len(), namespace_slots.max(1)));
        let registry = Arc::new(Registry::new());
        {
            let stats = Arc::clone(&stats);
            registry.register(move |out| stats.collect(out));
        }
        {
            let trace = Arc::clone(&trace);
            registry.register(move |out| trace.collect(out));
        }
        {
            // Per-shard engine health, pulled live at scrape time: the
            // applied-mutation version, the owner's drain-run distribution,
            // and the EBR reclamation-lag gauges from each shard's
            // collector (when the store exposes one).
            let cells = shards.clone();
            registry.register(move |out| {
                for (index, cell) in cells.iter().enumerate() {
                    out.push(
                        Sample::gauge("kv_shard_version", cell.state.current_version())
                            .with("shard", index),
                    );
                    out.push(
                        Sample::histogram("kv_run_length", &cell.state.run_length)
                            .with("shard", index),
                    );
                    if let Some(ebr) = cell.store.ebr_stats() {
                        out.push(Sample::gauge("ebr_epoch", ebr.epoch).with("shard", index));
                        out.push(
                            Sample::counter("ebr_retired_total", ebr.retired).with("shard", index),
                        );
                        out.push(
                            Sample::counter("ebr_freed_total", ebr.freed).with("shard", index),
                        );
                        out.push(
                            Sample::gauge("ebr_unreclaimed", ebr.unreclaimed).with("shard", index),
                        );
                        out.push(
                            Sample::gauge("ebr_oldest_epoch_age", ebr.oldest_epoch_age)
                                .with("shard", index),
                        );
                        out.push(
                            Sample::gauge("ebr_pins", ebr.registry_pins + ebr.local_pins)
                                .with("shard", index),
                        );
                    }
                }
            });
        }
        let owners = shards
            .iter()
            .enumerate()
            .map(|(index, cell)| {
                let thread_cell = Arc::clone(cell);
                let owner = std::thread::Builder::new()
                    .name(format!("kvserve-shard-{index}"))
                    .spawn(move || run_shard_owner(thread_cell))
                    .expect("failed to spawn a shard owner thread");
                cell.state.set_owner(owner.thread().clone());
                owner
            })
            .collect();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let reply_spin = if cores > 1 { 128 } else { 1 };
        let service = Self {
            shards,
            owners,
            stats,
            registry,
            trace,
            reply_spin,
        };
        // Owners publish their startup outcome right after their (bounded)
        // session-registration attempt; wait for all of them so a capacity
        // failure surfaces here, not as a hang on the first request.  The
        // error path drops `service`, which shuts down and joins the
        // owners that did come up.
        for index in 0..service.shards.len() {
            if !service.shards[index].state.await_ready() {
                return Err(ShardStartupError { shard: index });
            }
        }
        Ok(service)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shared statistics (counters update live as routers serve
    /// traffic).
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The service's metric registry.  The service registers its own
    /// sources (operation counters, stage trace, per-shard EBR health) at
    /// construction; front ends layered on top register theirs here too,
    /// so one [`Request::Stats`] scrape — or one
    /// [`Registry::render`] call — covers the whole stack.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The per-request stage trace (sampled pipeline timing: enqueue,
    /// queue wait, apply, ack — front ends add recv/decode/write/fence).
    pub fn stage_trace(&self) -> &Arc<StageTrace> {
        &self.trace
    }

    /// The shard serving `key`: high bits of a Fibonacci multiplicative
    /// hash, range-reduced without division.
    ///
    /// Panics on the engine's reserved [`abtree::EMPTY_KEY`] sentinel: the
    /// router sits on the wire boundary, and the codec accepts any `u64`, so
    /// this is the always-on guard (the engine itself only debug-asserts)
    /// that keeps a hostile or corrupt-but-well-formed frame from storing
    /// the empty-slot marker into a shard.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        assert!(
            key != abtree::EMPTY_KEY,
            "the reserved EMPTY_KEY sentinel cannot be stored or queried"
        );
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Opens a per-client router session: one SPSC lane pair per shard,
    /// registered with the owning workers, plus a fresh hot-key cache.
    /// Call once per client thread, like [`ConcurrentMap::handle`].
    pub fn router(&self) -> ShardRouter<'_> {
        let mut lanes = Vec::with_capacity(self.shards.len());
        for cell in &self.shards {
            let (jobs, worker_jobs) = queue::channel(LANE_CAPACITY);
            let (worker_replies, replies) = queue::channel(LANE_CAPACITY);
            cell.state.register_lane(Lane {
                jobs: worker_jobs,
                replies: worker_replies,
            });
            lanes.push(RouterLane {
                jobs,
                replies,
                outstanding: 0,
            });
        }
        ShardRouter {
            service: self,
            lanes,
            cache: ReadCache::new(),
            groups: (0..self.shards.len()).map(|_| Group::default()).collect(),
            touched: Vec::new(),
            pending: VecDeque::new(),
            recorder: self.trace.sampled_recorder(TRACE_SAMPLE_SHIFT),
        }
    }

    /// Sum of keys stored across all shards.  Quiescent only, like
    /// [`KeySum::key_sum`]; drives the cross-shard checksum validation.
    pub fn key_sum(&self) -> u128 {
        self.shards.iter().map(|cell| cell.store.key_sum()).sum()
    }

    /// Per-shard key sums, in shard order (quiescent only).
    pub fn shard_key_sums(&self) -> Vec<u128> {
        self.shards.iter().map(|cell| cell.store.key_sum()).collect()
    }

    /// The registry name of shard `index`'s structure.
    pub fn shard_name(&self, index: usize) -> &'static str {
        self.shards[index].store.name()
    }

    /// The per-shard queue-run-length histograms (how many requests each
    /// owner drains per lane visit — the dispatch amortization the
    /// ownership model buys), merged across shards with
    /// [`Histogram::merge`].
    pub fn run_length_histogram(&self) -> Histogram {
        let mut merged = Histogram::new();
        for cell in &self.shards {
            merged.merge(&cell.state.run_length);
        }
        merged
    }

    /// Stops and joins every shard owner thread.  Idempotent; also runs on
    /// drop.  Requires `&mut self`, so it cannot race any live router (a
    /// router borrows the service).
    pub fn shutdown(&mut self) {
        for cell in &self.shards {
            cell.state.begin_shutdown();
        }
        for owner in self.owners.drain(..) {
            // A panicked owner already surfaced as a router panic; the
            // join result adds nothing (and must not double-panic in drop).
            let _ = owner.join();
        }
    }

    /// Whether [`shutdown`](Self::shutdown) has already joined the shard
    /// owners.
    pub fn is_shut_down(&self) -> bool {
        self.owners.is_empty()
    }

    pub(crate) fn shard_state(&self, shard: usize) -> &ShardState {
        &self.shards[shard].state
    }
}

impl Drop for KvService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for KvService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvService")
            .field("shards", &self.shards.len())
            .field("structure", &self.shards.first().map(|cell| cell.store.name()))
            .finish_non_exhaustive()
    }
}

/// Per-shard scratch used to regroup a batch by destination shard.
#[derive(Default)]
struct Group {
    keys: Vec<u64>,
    pairs: Vec<(u64, u64)>,
    /// Original batch positions of this group's entries, for scattering
    /// results back into input order.
    positions: Vec<u32>,
}

/// The router's end of one shard's lane pair. `outstanding` counts
/// submitted-but-uncollected requests, which bounds the occupancy of both
/// rings (so neither side ever meets a full ring unexpectedly).
struct RouterLane {
    jobs: Producer<(Stamp, ShardJob)>,
    replies: Consumer<(Stamp, ShardReply)>,
    outstanding: usize,
}

/// The point-request kinds the pipelined interface carries.
#[derive(Clone, Copy)]
enum PointOp {
    Get,
    Put,
    Delete,
}

/// One submitted-but-uncollected request, in submission order.
enum Pending {
    /// Answered immediately (a cache hit); stats were already recorded.
    Ready { response: Response },
    /// In flight to `shard`; `value` is the put payload (for cache fill).
    /// `started` is a real stamp for every submission (it feeds the point
    /// latency histogram), traced or not.
    Point {
        op: PointOp,
        shard: usize,
        key: u64,
        value: u64,
        started: Stamp,
    },
}

/// A per-client session over the whole service: one SPSC lane pair per
/// shard feeding the shard owners, a private hot-key read cache, and
/// regrouping scratch so batch execution allocates only the sub-batch
/// vectors it ships across the lanes.
///
/// Obtained from [`KvService::router`].  Routers are independent; open one
/// per client thread.
pub struct ShardRouter<'s> {
    service: &'s KvService,
    lanes: Vec<RouterLane>,
    cache: ReadCache,
    groups: Vec<Group>,
    /// Shards with a non-empty group in the batch being executed (sparse
    /// clear: only touched groups are reset).
    touched: Vec<usize>,
    /// FIFO of pipelined submissions awaiting [`collect`](Self::collect).
    pending: VecDeque<Pending>,
    /// Sampled stage recorder: decides at submit time which point requests
    /// get stage-traced, and records the router-side stages (`Enqueue`,
    /// `Ack`) for those that do.
    recorder: StageRecorder,
}

impl<'s> ShardRouter<'s> {
    /// The service this router serves.
    pub fn service(&self) -> &'s KvService {
        self.service
    }

    /// Blocking calls must not overtake pipelined submissions: per-lane
    /// replies are matched to requests purely by FIFO order.
    #[inline]
    fn assert_unpipelined(&self) {
        assert!(
            self.pending.is_empty(),
            "blocking router calls cannot run while pipelined submissions are in flight; \
             collect() them first"
        );
    }

    /// Pushes `job` into `shard`'s lane and wakes its owner. The caller
    /// guarantees lane capacity (sync calls keep at most one request per
    /// shard in flight; pipelined submission checks `outstanding` first).
    ///
    /// `stamp` is the request's trace stamp ([`Stamp::NONE`] for untraced
    /// requests, which makes every stage record below a no-op): the
    /// `Enqueue` stage — submit-side routing, cache probe and capacity
    /// check — closes here, and the post-enqueue stamp rides the lane so
    /// the owner can time the queue wait as `Dequeue`.
    fn enqueue(&mut self, shard: usize, stamp: Stamp, job: ShardJob) {
        let enqueued = self.recorder.record(Stage::Enqueue, stamp);
        let lane = &mut self.lanes[shard];
        if lane.jobs.try_push((enqueued, job)).is_err() {
            panic!("shard lane rejected a push despite the in-flight cap");
        }
        lane.outstanding += 1;
        // StoreLoad fence: the push above must be visible before we sample
        // the idle flag, or we could skip the unpark exactly as the owner
        // parks (it re-scans after raising the flag, symmetrically fenced).
        fence(Ordering::SeqCst);
        self.service.shard_state(shard).wake();
    }

    /// Pops the next reply from `shard`'s lane, spinning briefly (tuned to
    /// ~zero on single-core hosts) and then yielding.  The stamp is the
    /// owner's post-apply time ([`Stamp::NONE`] for untraced requests).
    fn await_reply(&mut self, shard: usize) -> (Stamp, ShardReply) {
        let spin_limit = self.service.reply_spin;
        let lane = &mut self.lanes[shard];
        let mut spins = 0u32;
        loop {
            if let Some(reply) = lane.replies.try_pop() {
                lane.outstanding -= 1;
                return reply;
            }
            assert!(
                !lane.replies.is_disconnected(),
                "shard owner thread died with replies outstanding"
            );
            spins += 1;
            if spins < spin_limit {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Point lookup of `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        self.assert_unpipelined();
        self.submit_point(PointOp::Get, key, 0)
            .expect("nothing in flight, the lane cannot be full");
        match self.collect() {
            Response::Value(value) => value,
            _ => unreachable!("point submissions collect point responses"),
        }
    }

    /// Insert-if-absent of `key -> value`: returns the existing value
    /// (leaving it unchanged) if `key` was present, `None` if the pair was
    /// inserted (see [`abtree::MapHandle::insert`]).
    pub fn put(&mut self, key: u64, value: u64) -> Option<u64> {
        self.assert_unpipelined();
        self.submit_point(PointOp::Put, key, value)
            .expect("nothing in flight, the lane cannot be full");
        match self.collect() {
            Response::Value(previous) => previous,
            _ => unreachable!("point submissions collect point responses"),
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        self.assert_unpipelined();
        self.submit_point(PointOp::Delete, key, 0)
            .expect("nothing in flight, the lane cannot be full");
        match self.collect() {
            Response::Value(removed) => removed,
            _ => unreachable!("point submissions collect point responses"),
        }
    }

    /// Pipelined submission of a point request (`Get`/`Put`/`Delete`).
    ///
    /// Returns without waiting for execution; responses are retrieved with
    /// [`collect`](Self::collect) in submission order.  Fails with
    /// [`Overloaded`] — refusing the request rather than blocking — when
    /// the target shard already has [`LANE_CAPACITY`] of this router's
    /// requests in flight.  A `Get` answered by the hot-key cache completes
    /// immediately (it still must be `collect`ed, in order).
    ///
    /// # Panics
    ///
    /// Panics on `Scan`/`MGet`/`MPut` requests: batches and scans use the
    /// blocking methods, whose shard fan-out is already parallel.
    pub fn submit(&mut self, request: &Request) -> Result<(), Overloaded> {
        match *request {
            Request::Get { key } => self.submit_point(PointOp::Get, key, 0),
            Request::Put { key, value } => self.submit_point(PointOp::Put, key, value),
            Request::Delete { key } => self.submit_point(PointOp::Delete, key, 0),
            Request::Scan { .. }
            | Request::MGet { .. }
            | Request::MPut { .. }
            | Request::Stats => panic!(
                "pipelined submission carries point requests only; \
                 use scan/mget/mput (their shard fan-out is already parallel) \
                 and execute() for stats scrapes"
            ),
        }
    }

    fn submit_point(&mut self, op: PointOp, key: u64, value: u64) -> Result<(), Overloaded> {
        let service = self.service;
        let stats = service.stats();
        let shard = service.shard_of(key);
        // One sampling decision covers the stage trace AND the point-latency
        // histogram: the untraced 15-in-16 majority reads no clock at all.
        // (A single `Stamp::now` costs ~25ns on a virtualized TSC — two per
        // op would eat most of the telemetry budget by themselves; uniform
        // 1-in-16 sampling keeps the latency quantiles unbiased.)
        let started = self.recorder.sample_start();
        // The cache fast path answers at *submit* time against the shard's
        // applied version — sound only while this router has nothing in
        // flight on the shard.  An uncollected submission may be a write to
        // this very key that the version counter cannot see yet, and a
        // cached answer would jump it: the session would fail to read its
        // own pipelined write.  Falling into the lane restores FIFO order.
        if matches!(op, PointOp::Get) && self.lanes[shard].outstanding == 0 {
            let version = service.shard_state(shard).current_version();
            if let Some(cached) = self.cache.lookup(key, version) {
                stats.record_cache_hit();
                if started.is_traced() {
                    stats.point_latency_ns.record(started.elapsed_ns());
                }
                stats.shard(shard).record_get(cached.is_some());
                stats
                    .namespace(stats.namespace_slot(key))
                    .record_get(cached.is_some());
                self.pending.push_back(Pending::Ready {
                    response: Response::Value(cached),
                });
                return Ok(());
            }
        }
        if self.lanes[shard].outstanding >= LANE_CAPACITY {
            stats.record_shed();
            return Err(Overloaded);
        }
        let job = match op {
            PointOp::Get => ShardJob::Get { key },
            PointOp::Put => ShardJob::Put { key, value },
            PointOp::Delete => ShardJob::Delete { key },
        };
        self.enqueue(shard, started, job);
        self.pending.push_back(Pending::Point {
            op,
            shard,
            key,
            value,
            started,
        });
        Ok(())
    }

    /// Number of pipelined submissions not yet collected.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Retrieves the response to the **oldest** uncollected submission,
    /// waiting for its shard if it has not completed yet.
    ///
    /// # Panics
    ///
    /// Panics if nothing is in flight.
    pub fn collect(&mut self) -> Response {
        let pending = self.pending.pop_front().expect("no submissions in flight");
        match pending {
            Pending::Ready { response } => response,
            Pending::Point {
                op,
                shard,
                key,
                value,
                started,
            } => {
                let (applied, ShardReply::Value { value: result, version }) =
                    self.await_reply(shard)
                else {
                    unreachable!("point jobs produce point replies")
                };
                let stats = self.service.stats();
                // Sampled requests only: one clock read closes both the
                // `Ack` stage (reply-lane wait) and the point latency; the
                // untraced majority skips the read entirely.
                if started.is_traced() {
                    let now = Stamp::now();
                    self.recorder.record_at(Stage::Ack, applied, now);
                    stats.point_latency_ns.record(now.since(started));
                }
                let ns = stats.namespace(stats.namespace_slot(key));
                match op {
                    PointOp::Get => {
                        stats.shard(shard).record_get(result.is_some());
                        ns.record_get(result.is_some());
                        self.cache.store(key, result, version);
                    }
                    PointOp::Put => {
                        stats.shard(shard).record_put();
                        ns.record_put();
                        // Either the insert landed (key -> value) or it was
                        // a no-op (key kept its prior value); both are
                        // exact at the replied version.
                        self.cache.store(key, Some(result.unwrap_or(value)), version);
                    }
                    PointOp::Delete => {
                        stats.shard(shard).record_delete();
                        ns.record_delete();
                        // Whatever was there, the key is now absent.
                        self.cache.store(key, None, version);
                    }
                }
                Response::Value(result)
            }
        }
    }

    /// Scatter-gather scan of the window `[lo, lo + len - 1]` (clamped below
    /// the engine's reserved sentinel): every shard owner scans its slice
    /// concurrently and the results are merged into `out`, sorted by key
    /// (`out` is cleared first).
    ///
    /// Each *per-shard* sub-scan has that shard's scan guarantee (a
    /// linearizable snapshot on the (a,b)-trees); the merged cross-shard
    /// result is *not* one atomic snapshot — shards scan independently,
    /// like any scatter-gather service read.
    pub fn scan(&mut self, lo: u64, len: u64, out: &mut Vec<(u64, u64)>) {
        self.assert_unpipelined();
        // Same boundary guard as `shard_of` (which a scan bypasses): the
        // reserved sentinel is rejected loudly, not clamped into an empty
        // result.
        assert!(
            lo != abtree::EMPTY_KEY,
            "the reserved EMPTY_KEY sentinel cannot be stored or queried"
        );
        let stats = &self.service.stats;
        out.clear();
        let Some((lo, hi)) = abtree::scan_window(lo, len) else {
            return;
        };
        let started = Stamp::now();
        for shard in 0..self.lanes.len() {
            self.enqueue(shard, Stamp::NONE, ShardJob::Range { lo, hi });
        }
        for shard in 0..self.lanes.len() {
            let (_, ShardReply::Entries { entries }) = self.await_reply(shard) else {
                unreachable!("range jobs produce entry replies")
            };
            out.extend_from_slice(&entries);
            stats.shard(shard).record_scan();
        }
        out.sort_unstable_by_key(|&(key, _)| key);
        stats.scan_latency_ns.record(started.elapsed_ns());
        stats.namespace(stats.namespace_slot(lo)).record_scan();
    }

    /// Batched multi-get: one lookup per key, results pushed to `out`
    /// (cleared first) in input order.
    ///
    /// Keys the hot-key cache can answer are filled in locally; the rest
    /// are regrouped by destination shard and shipped as one
    /// [`abtree::MapHandle::get_batch`] sub-batch per shard, **all fanned
    /// out before any reply is awaited** — so an `N`-key multi-get costs
    /// one concurrent queue round-trip, not `N` serial ones.
    pub fn mget(&mut self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        self.assert_unpipelined();
        let service = self.service;
        let stats = service.stats();
        out.clear();
        out.resize(keys.len(), None);
        let started = Stamp::now();
        for (position, &key) in keys.iter().enumerate() {
            let shard = service.shard_of(key);
            let version = service.shard_state(shard).current_version();
            if let Some(cached) = self.cache.lookup(key, version) {
                stats.record_cache_hit();
                stats.shard(shard).record_lookup(cached.is_some());
                let ns = stats.namespace(stats.namespace_slot(key));
                ns.record_mget();
                ns.record_lookup(cached.is_some());
                out[position] = cached;
                continue;
            }
            let group = &mut self.groups[shard];
            if group.keys.is_empty() {
                self.touched.push(shard);
            }
            group.keys.push(key);
            group.positions.push(position as u32);
        }
        for i in 0..self.touched.len() {
            let shard = self.touched[i];
            let sub_batch = std::mem::take(&mut self.groups[shard].keys);
            self.enqueue(shard, Stamp::NONE, ShardJob::GetBatch { keys: sub_batch });
        }
        for i in 0..self.touched.len() {
            let shard = self.touched[i];
            let (_, ShardReply::Values { values, version }) = self.await_reply(shard) else {
                unreachable!("batch jobs produce batch replies")
            };
            let counters = stats.shard(shard);
            counters.record_mget();
            let group = &mut self.groups[shard];
            for (&position, &value) in group.positions.iter().zip(&values) {
                let key = keys[position as usize];
                counters.record_lookup(value.is_some());
                let ns = stats.namespace(stats.namespace_slot(key));
                ns.record_mget();
                ns.record_lookup(value.is_some());
                out[position as usize] = value;
                self.cache.store(key, value, version);
            }
            group.positions.clear();
        }
        self.touched.clear();
        stats.batch_latency_ns.record(started.elapsed_ns());
        stats.batch_size.record(keys.len() as u64);
    }

    /// Batched multi-put (insert-if-absent per pair): per-pair results
    /// pushed to `out` (cleared first) in input order, `None` meaning the
    /// pair was inserted.
    ///
    /// Same regrouping and concurrent fan-out as [`mget`](Self::mget),
    /// through one [`abtree::MapHandle::insert_batch`] sub-batch per shard
    /// touched.
    pub fn mput(&mut self, pairs: &[(u64, u64)], out: &mut Vec<Option<u64>>) {
        self.assert_unpipelined();
        let service = self.service;
        let stats = service.stats();
        out.clear();
        out.resize(pairs.len(), None);
        let started = Stamp::now();
        for (position, &(key, value)) in pairs.iter().enumerate() {
            let shard = service.shard_of(key);
            let group = &mut self.groups[shard];
            if group.pairs.is_empty() {
                self.touched.push(shard);
            }
            group.pairs.push((key, value));
            group.positions.push(position as u32);
        }
        for i in 0..self.touched.len() {
            let shard = self.touched[i];
            let sub_batch = std::mem::take(&mut self.groups[shard].pairs);
            self.enqueue(shard, Stamp::NONE, ShardJob::PutBatch { pairs: sub_batch });
        }
        for i in 0..self.touched.len() {
            let shard = self.touched[i];
            let (_, ShardReply::Values { values, version }) = self.await_reply(shard) else {
                unreachable!("batch jobs produce batch replies")
            };
            let counters = stats.shard(shard);
            counters.record_mput();
            let group = &mut self.groups[shard];
            for (&position, &previous) in group.positions.iter().zip(&values) {
                let (key, value) = pairs[position as usize];
                stats.namespace(stats.namespace_slot(key)).record_mput();
                out[position as usize] = previous;
                // Same post-state as a point put: the key now holds either
                // its prior value or the inserted one.
                self.cache.store(key, Some(previous.unwrap_or(value)), version);
            }
            group.positions.clear();
        }
        self.touched.clear();
        stats.batch_latency_ns.record(started.elapsed_ns());
        stats.batch_size.record(pairs.len() as u64);
    }

    /// Executes one request, returning its response.
    pub fn execute(&mut self, request: &Request) -> Response {
        match request {
            Request::Get { key } => Response::Value(self.get(*key)),
            Request::Put { key, value } => Response::Value(self.put(*key, *value)),
            Request::Delete { key } => Response::Value(self.delete(*key)),
            Request::Scan { lo, len } => {
                let mut entries = Vec::new();
                self.scan(*lo, *len, &mut entries);
                Response::Entries(entries)
            }
            Request::MGet { keys } => {
                let mut values = Vec::new();
                self.mget(keys, &mut values);
                Response::Values(values)
            }
            Request::MPut { pairs } => {
                let mut results = Vec::new();
                self.mput(pairs, &mut results);
                Response::Values(results)
            }
            // A scrape never crosses a shard lane: the registry pulls
            // every source (shard counters, stage trace, EBR gauges, any
            // front-end sources) from right here, so it cannot be shed,
            // cannot be reordered behind queued work, and is not counted
            // in the per-shard operation counters.
            Request::Stats => Response::Stats(self.service.registry.render()),
        }
    }

    /// Executes a request batch in order, pushing one response per request
    /// onto `out` (cleared first).
    pub fn execute_batch(&mut self, requests: &[Request], out: &mut Vec<Response>) {
        out.clear();
        out.reserve(requests.len());
        for request in requests {
            out.push(self.execute(request));
        }
    }

    /// Serves one decoded request batch the way a non-blocking front end
    /// must: point requests ride the pipelined [`submit`](Self::submit) /
    /// [`collect`](Self::collect) window (several in flight per shard at
    /// once), and a submission the window refuses is answered with
    /// [`Response::Overloaded`] in place — the request is shed, **never**
    /// blocked on.  Scans and batches use the blocking calls (their shard
    /// fan-out is already parallel), draining the window first so replies
    /// cannot be misattributed.
    ///
    /// One response per request is pushed onto `responses` (cleared first),
    /// in request order.  The pipeline is empty again when this returns.
    ///
    /// # Panics
    ///
    /// Panics if pipelined submissions are already in flight.
    pub fn serve_pipelined(&mut self, batch: &[Request], responses: &mut Vec<Response>) {
        self.assert_unpipelined();
        responses.clear();
        responses.reserve(batch.len());
        // Positions of pipelined requests whose placeholder response must
        // be overwritten when the window is collected (submission order).
        let mut pending: Vec<usize> = Vec::new();
        fn flush(
            router: &mut ShardRouter<'_>,
            pending: &mut Vec<usize>,
            responses: &mut [Response],
        ) {
            for &position in pending.iter() {
                responses[position] = router.collect();
            }
            pending.clear();
        }
        for (position, request) in batch.iter().enumerate() {
            match request {
                Request::Get { .. } | Request::Put { .. } | Request::Delete { .. } => {
                    match self.submit(request) {
                        Ok(()) => {
                            pending.push(position);
                            // Placeholder; overwritten on flush.
                            responses.push(Response::Overloaded);
                        }
                        // The lane is full: shed this request — the wire
                        // answer the codec exists to carry — rather than
                        // block the serving loop on a hot shard.
                        Err(Overloaded) => responses.push(Response::Overloaded),
                    }
                }
                other => {
                    // Blocking calls must not overtake the window: drain
                    // it, then serve the scan/batch.
                    flush(self, &mut pending, responses);
                    responses.push(self.execute(other));
                }
            }
        }
        flush(self, &mut pending, responses);
    }
}

impl std::fmt::Debug for ShardRouter<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.lanes.len())
            .field("in_flight", &self.pending.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abtree::ElimABTree;

    fn two_shard_service() -> KvService {
        KvService::new(2, 1, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        })
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let service = two_shard_service();
        for key in 0..1_000u64 {
            let shard = service.shard_of(key);
            assert!(shard < 2);
            assert_eq!(shard, service.shard_of(key), "routing must be stable");
        }
        // The multiplicative hash must actually use both shards.
        let hits: std::collections::HashSet<_> = (0..100).map(|k| service.shard_of(k)).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn point_ops_round_trip_across_shards() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..500u64 {
            assert_eq!(router.put(key, key * 2), None);
        }
        for key in 0..500u64 {
            assert_eq!(router.get(key), Some(key * 2));
            assert_eq!(router.put(key, 999), Some(key * 2), "insert-if-absent");
        }
        for key in (0..500u64).step_by(2) {
            assert_eq!(router.delete(key), Some(key * 2));
            assert_eq!(router.get(key), None);
        }
        drop(router);
        assert_eq!(
            service.key_sum(),
            (0..500u128).filter(|k| k % 2 == 1).sum::<u128>()
        );
    }

    #[test]
    fn scan_merges_shards_in_key_order() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..200u64 {
            router.put(key, key + 1);
        }
        let mut out = Vec::new();
        router.scan(50, 100, &mut out);
        assert_eq!(out.len(), 100);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert_eq!(out.first(), Some(&(50, 51)));
        assert_eq!(out.last(), Some(&(149, 150)));
        router.scan(10, 0, &mut out);
        assert!(out.is_empty(), "len 0 scans nothing");
    }

    #[test]
    fn mget_matches_single_gets_in_input_order() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..100u64 {
            router.put(key, key * 3);
        }
        let keys = [99, 0, 500, 42, 42, 7];
        let mut batched = Vec::new();
        router.mget(&keys, &mut batched);
        let singles: Vec<_> = keys.iter().map(|&k| router.get(k)).collect();
        assert_eq!(batched, singles);
    }

    #[test]
    fn mput_reports_per_pair_results() {
        let service = two_shard_service();
        let mut router = service.router();
        let mut results = Vec::new();
        router.mput(&[(1, 10), (2, 20), (1, 99)], &mut results);
        assert_eq!(results, vec![None, None, Some(10)]);
        assert_eq!(router.get(1), Some(10), "first writer wins");
    }

    #[test]
    fn execute_covers_every_request_kind() {
        let service = two_shard_service();
        let mut router = service.router();
        assert_eq!(
            router.execute(&Request::Put { key: 5, value: 50 }),
            Response::Value(None)
        );
        assert_eq!(
            router.execute(&Request::Get { key: 5 }),
            Response::Value(Some(50))
        );
        assert_eq!(
            router.execute(&Request::MPut {
                pairs: vec![(6, 60), (7, 70)]
            }),
            Response::Values(vec![None, None])
        );
        assert_eq!(
            router.execute(&Request::MGet { keys: vec![5, 6, 8] }),
            Response::Values(vec![Some(50), Some(60), None])
        );
        assert_eq!(
            router.execute(&Request::Scan { lo: 5, len: 3 }),
            Response::Entries(vec![(5, 50), (6, 60), (7, 70)])
        );
        assert_eq!(
            router.execute(&Request::Delete { key: 5 }),
            Response::Value(Some(50))
        );
        let mut responses = Vec::new();
        router.execute_batch(
            &[Request::Get { key: 6 }, Request::Get { key: 5 }],
            &mut responses,
        );
        assert_eq!(
            responses,
            vec![Response::Value(Some(60)), Response::Value(None)]
        );
    }

    #[test]
    fn stats_account_traffic() {
        if !obs::ENABLED {
            return; // counters are compiled out
        }
        let service = two_shard_service();
        let mut router = service.router();
        router.put(1, 1);
        router.get(1);
        router.get(2);
        router.mget(&[1, 2, 3], &mut Vec::new());
        router.delete(1);
        let mut scan_out = Vec::new();
        router.scan(0, 10, &mut scan_out);
        drop(router);

        let stats = service.stats();
        let totals: u64 = stats.shards().iter().map(|s| s.total_ops()).sum();
        assert!(totals >= 5);
        let hits: u64 = stats.shards().iter().map(|s| s.hits()).sum();
        let misses: u64 = stats.shards().iter().map(|s| s.misses()).sum();
        assert_eq!(hits, 2, "get(1) and mget hit on key 1");
        assert_eq!(misses, 3, "get(2) and mget misses on 2 and 3");
        // Point latency is sampled 1-in-16 with the stage trace: four point
        // submissions on a fresh router stay below the sample period, so
        // the histogram is empty (the batch/scan histograms are always-on —
        // their clock reads amortize over the whole batch).
        assert_eq!(stats.point_latency_ns.count(), 0, "4 ops < sample period");
        assert_eq!(stats.batch_latency_ns.count(), 1);
        assert_eq!(stats.scan_latency_ns.count(), 1);
        assert_eq!(stats.batch_size.count(), 1);
        // Every shard was scanned once by the scatter-gather scan.
        for shard in stats.shards() {
            assert_eq!(shard.scans(), 1);
        }
        // The put filled the cache for key 1, so the get and the mget both
        // hit it; key 2's miss is cached too and re-served to the mget.
        assert_eq!(stats.cache_hits(), 3, "get(1), mget keys 1 and 2");
        assert_eq!(stats.shed(), 0);
    }

    #[test]
    fn cached_reads_observe_every_write() {
        let service = two_shard_service();
        let mut router = service.router();
        assert_eq!(router.put(8, 80), None);
        // Warm hit.
        assert_eq!(router.get(8), Some(80));
        // A delete through the same shard owner must invalidate/overwrite.
        assert_eq!(router.delete(8), Some(80));
        assert_eq!(router.get(8), None);
        // A no-op put (insert-if-absent on a present key) must NOT shed
        // other cached entries: versions only move on real mutations.
        router.put(9, 90);
        let before = service.stats().cache_hits();
        router.put(9, 91); // no-op
        assert_eq!(router.get(9), Some(90), "first writer wins");
        assert!(
            !obs::ENABLED || service.stats().cache_hits() > before,
            "the no-op put must not invalidate key 9's cache entry"
        );
        // Writes from a *different* router invalidate this router's cache
        // through the shard version, not through any shared cache state.
        let mut other = service.router();
        assert_eq!(other.delete(9), Some(90));
        drop(other);
        assert_eq!(router.get(9), None, "stale hit would return Some(90)");
    }

    #[test]
    fn pipelined_window_collects_in_order() {
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..32u64 {
            router.put(key, key + 100);
        }
        // Submit a window of gets (some cache hits, some queued), then
        // collect: responses must arrive in submission order.
        for key in 0..32u64 {
            router.submit(&Request::Get { key }).unwrap();
        }
        assert_eq!(router.in_flight(), 32);
        for key in 0..32u64 {
            assert_eq!(router.collect(), Response::Value(Some(key + 100)));
        }
        assert_eq!(router.in_flight(), 0);
        // Mixed point kinds pipeline too.
        router.submit(&Request::Put { key: 900, value: 1 }).unwrap();
        router.submit(&Request::Get { key: 900 }).unwrap();
        router.submit(&Request::Delete { key: 900 }).unwrap();
        assert_eq!(router.collect(), Response::Value(None));
        assert_eq!(router.collect(), Response::Value(Some(1)));
        assert_eq!(router.collect(), Response::Value(Some(1)));
    }

    #[test]
    fn full_lane_sheds_with_overloaded() {
        // One shard makes the target lane deterministic. `outstanding` is
        // only released by collect(), so the cap is reached regardless of
        // how fast the owner drains.
        let service = KvService::new(1, 1, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        });
        let mut router = service.router();
        for key in 0..LANE_CAPACITY as u64 {
            router.submit(&Request::Get { key }).unwrap();
        }
        assert_eq!(
            router.submit(&Request::Get { key: 9_999 }),
            Err(Overloaded),
            "the 65th in-flight request must be refused, not block"
        );
        assert!(!obs::ENABLED || service.stats().shed() == 1);
        assert!(Overloaded.to_string().contains("in flight"));
        // Collecting frees the window again.
        for _ in 0..LANE_CAPACITY {
            assert_eq!(router.collect(), Response::Value(None));
        }
        router.submit(&Request::Get { key: 9_999 }).unwrap();
        assert_eq!(router.collect(), Response::Value(None));
    }

    #[test]
    fn serve_pipelined_answers_in_request_order() {
        let service = two_shard_service();
        let mut router = service.router();
        let batch = vec![
            Request::Put { key: 1, value: 10 },
            Request::Put { key: 2, value: 20 },
            Request::Get { key: 1 },
            // A blocking request mid-batch forces a window drain first.
            Request::MGet { keys: vec![1, 2, 3] },
            Request::Delete { key: 2 },
            Request::Scan { lo: 1, len: 4 },
        ];
        let mut responses = Vec::new();
        router.serve_pipelined(&batch, &mut responses);
        assert_eq!(
            responses,
            vec![
                Response::Value(None),
                Response::Value(None),
                Response::Value(Some(10)),
                Response::Values(vec![Some(10), Some(20), None]),
                Response::Value(Some(20)),
                Response::Entries(vec![(1, 10)]),
            ]
        );
        assert_eq!(router.in_flight(), 0, "the pipeline drains fully");
    }

    #[test]
    fn serve_pipelined_sheds_with_overloaded_in_place() {
        // One shard: every point request targets the same lane, so the
        // 65th-and-later uncollected submissions in one frame must shed.
        let service = KvService::new(1, 1, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        });
        let mut router = service.router();
        // Distinct keys, so the read cache cannot absorb any of them.
        let batch: Vec<Request> = (1..=LANE_CAPACITY as u64 + 8)
            .map(|key| Request::Get { key })
            .collect();
        let mut responses = Vec::new();
        router.serve_pipelined(&batch, &mut responses);
        assert_eq!(responses.len(), batch.len());
        let shed = responses
            .iter()
            .filter(|r| matches!(r, Response::Overloaded))
            .count();
        assert_eq!(shed, 8, "exactly the beyond-capacity tail is shed");
        assert!(
            responses[..LANE_CAPACITY]
                .iter()
                .all(|r| *r == Response::Value(None)),
            "the in-window prefix is served normally"
        );
        assert!(!obs::ENABLED || service.stats().shed() == 8);
    }

    #[test]
    fn pipelined_get_reads_its_own_in_flight_put() {
        // Regression: mget caches "absent" for missed keys, and the cache
        // fast path used to answer a pipelined Get at submit time even
        // while a Put of the same key sat uncollected in the lane — the
        // applied-version check cannot see in-flight writes.  The session
        // then failed to read its own write.
        let service = KvService::new(1, 1, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        });
        let mut router = service.router();

        // Seed the cache with key 7 -> absent.
        let mut values = Vec::new();
        router.mget(&[7], &mut values);
        assert_eq!(values, vec![None]);

        // Same frame: Put(7) then Get(7).  The Get must ride the lane
        // behind the Put, not hit the stale cache entry.
        let mut responses = Vec::new();
        router.serve_pipelined(
            &[
                Request::Put { key: 7, value: 70 },
                Request::Get { key: 7 },
            ],
            &mut responses,
        );
        assert_eq!(
            responses,
            vec![Response::Value(None), Response::Value(Some(70))]
        );
    }

    #[test]
    #[should_panic(expected = "pipelined submissions are in flight")]
    fn blocking_calls_refuse_to_overtake_the_pipeline() {
        let service = two_shard_service();
        let mut router = service.router();
        router.submit(&Request::Put { key: 1, value: 1 }).unwrap();
        let _ = router.get(2);
    }

    #[test]
    #[should_panic(expected = "point requests only")]
    fn batch_requests_cannot_be_pipelined() {
        let service = two_shard_service();
        let mut router = service.router();
        let _ = router.submit(&Request::MGet { keys: vec![1] });
    }

    #[test]
    fn shutdown_joins_owners_and_is_idempotent() {
        let mut service = two_shard_service();
        {
            let mut router = service.router();
            router.put(1, 2);
            // Leave a submission uncollected: the owner must drain it and
            // discard the undeliverable reply once the router is gone.
            router.submit(&Request::Put { key: 3, value: 4 }).unwrap();
        }
        assert!(!service.is_shut_down());
        service.shutdown();
        assert!(service.is_shut_down());
        service.shutdown(); // idempotent
        assert!(service.is_shut_down());
        // Quiescent reads still work after shutdown.
        assert!(service.key_sum() > 0);
    }

    #[test]
    fn owners_record_queue_run_lengths() {
        if !obs::ENABLED {
            return; // histograms are compiled out
        }
        let service = two_shard_service();
        let mut router = service.router();
        for key in 0..64u64 {
            router.put(key, key);
        }
        let mut out = Vec::new();
        router.mget(&(0..64u64).collect::<Vec<_>>(), &mut out);
        drop(router);
        let runs = service.run_length_histogram();
        assert!(runs.count() > 0, "owners saw at least one drain run");
        assert!(runs.p50().is_some());
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn reserved_sentinel_is_rejected_at_the_boundary() {
        // A decoded wire frame may carry any u64; the router must refuse the
        // engine's reserved key loudly even in release builds.
        let service = two_shard_service();
        let mut router = service.router();
        router.put(abtree::EMPTY_KEY, 1);
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn reserved_sentinel_is_rejected_in_batches() {
        let service = two_shard_service();
        let mut router = service.router();
        router.mget(&[1, abtree::EMPTY_KEY], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn reserved_sentinel_is_rejected_in_scans() {
        let service = two_shard_service();
        let mut router = service.router();
        router.scan(abtree::EMPTY_KEY, 10, &mut Vec::new());
    }

    #[test]
    fn stats_request_renders_the_whole_registry() {
        let service = two_shard_service();
        let mut router = service.router();
        router.put(1, 2);
        router.get(1);
        let Response::Stats(text) = router.execute(&Request::Stats) else {
            panic!("a stats request answers with Response::Stats")
        };
        let samples = obs::expo::parse(&text).expect("the scrape parses back");
        // The shard closure always runs, so structural gauges are present
        // even with recording compiled out.
        assert!(
            obs::expo::value(&samples, "kv_shard_version", &[("shard", "0")]).is_some(),
            "per-shard version gauges are in the scrape"
        );
        assert!(
            samples.iter().any(|s| s.name == "ebr_epoch"),
            "the shards' EBR collectors report reclamation health"
        );
        if obs::ENABLED {
            assert_eq!(
                obs::expo::sum(&samples, "kv_ops_total", &[("op", "put")]),
                1,
                "the put is visible across the per-shard op counters"
            );
            assert_eq!(obs::expo::sum(&samples, "kv_ops_total", &[("op", "get")]), 1);
        }
        // Scrapes are served by the router, not the shards: op counters
        // must not move.
        let before = obs::expo::sum(
            &obs::expo::parse(&text).unwrap(),
            "kv_ops_total",
            &[],
        );
        let Response::Stats(again) = router.execute(&Request::Stats) else {
            panic!("a stats request answers with Response::Stats")
        };
        let after = obs::expo::sum(&obs::expo::parse(&again).unwrap(), "kv_ops_total", &[]);
        assert_eq!(before, after, "a scrape does not count as an operation");
    }

    #[test]
    fn sampled_point_traffic_fills_the_stage_histograms() {
        if !obs::ENABLED {
            return; // tracing is compiled out
        }
        let service = two_shard_service();
        let mut router = service.router();
        // Puts always cross a lane (no cache fast path), and 1024
        // submissions at a 1-in-16 sample rate trace exactly 64 of them.
        for key in 0..1024u64 {
            router.put(key, key);
        }
        drop(router);
        let trace = service.stage_trace();
        for stage in [Stage::Enqueue, Stage::Dequeue, Stage::Apply, Stage::Ack] {
            assert!(
                trace.histogram(stage).count() > 0,
                "stage {} saw no samples",
                stage.name()
            );
        }
        assert_eq!(
            trace.histogram(Stage::Enqueue).count(),
            1024 >> TRACE_SAMPLE_SHIFT,
            "the sampler is deterministic"
        );
        // The same 1-in-16 decision feeds the point-latency histogram, so
        // the untraced majority pays no clock read anywhere.
        assert_eq!(
            service.stats().point_latency_ns.count(),
            1024 >> TRACE_SAMPLE_SHIFT,
            "point latency records exactly the sampled subset"
        );
        assert!(
            !trace.recent_events().is_empty(),
            "the rings hold the raw recent events"
        );
    }

    #[test]
    fn shard_count_is_clamped_to_one() {
        let service = KvService::new(0, 0, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        });
        assert_eq!(service.shard_count(), 1);
        let mut router = service.router();
        assert_eq!(router.put(1, 2), None);
        assert_eq!(router.get(1), Some(2));
        assert_eq!(service.shard_name(0), "elim-abtree");
        assert!(format!("{service:?}").contains("KvService"));
        assert!(format!("{router:?}").contains("ShardRouter"));
    }

    /// Regression for the startup path: a store whose SMR collector has no
    /// free registration slots must surface as [`ShardStartupError`] from
    /// `try_new` (it used to panic on the owner thread), and the service
    /// must come up normally once slots free.
    #[test]
    fn collector_exhaustion_is_a_startup_error_not_a_panic() {
        let collector = abebr::Collector::new();
        let mut held = Vec::new();
        while let Ok(handle) = collector.try_register() {
            held.push(handle);
        }
        assert_eq!(held.len(), abebr::MAX_THREADS);

        let shard_factory = |collector: abebr::Collector| {
            move |_: usize| {
                let tree: ElimABTree = ElimABTree::with_collector(collector.clone());
                Box::new(tree) as Box<dyn ShardStore>
            }
        };
        let err = KvService::try_new(1, 1, shard_factory(collector.clone()))
            .expect_err("owner registration must fail with every slot held");
        assert_eq!(err.shard, 0);
        assert!(err.to_string().contains("slot capacity"));

        // Freeing the hoarded sessions makes the same construction succeed.
        drop(held);
        let service = KvService::try_new(1, 1, shard_factory(collector))
            .expect("registration succeeds once slots are free");
        let mut router = service.router();
        assert_eq!(router.put(9, 90), None);
        assert_eq!(router.get(9), Some(90));
    }
}
