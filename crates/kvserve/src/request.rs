//! The service request/response model.
//!
//! A front-end speaks to the service in [`Request`]s — point operations,
//! window scans, and the batched [`Request::MGet`]/[`Request::MPut`] that
//! let a client amortize per-request overhead — and receives one
//! [`Response`] per request.  Requests are plain data: they can be built
//! directly, or encoded to / decoded from the compact wire format in
//! [`crate::codec`].
//!
//! Semantics follow the underlying engine ([`abtree::MapHandle`]):
//! `Put` is **insert-if-absent** (it returns the existing value, unchanged,
//! when the key is already present), `Delete` returns the removed value, and
//! a `Scan` covers the inclusive key window `[lo, lo + len - 1]`.

/// One service request over the engine's 8-byte keys and values.
///
/// Keys (including a `Scan`'s `lo`) must not be the engine's reserved
/// sentinel ([`abtree::EMPTY_KEY`], `u64::MAX`): the wire codec rejects
/// such frames on decode and panics on encode, and the router asserts on
/// direct misuse.  A `Scan`'s `len` is additionally capped at
/// [`crate::codec::MAX_DECODED_LEN`] *on the wire* — which also bounds the
/// size of any `Entries` response a decoded frame can produce — while
/// routers accept larger windows from embedded callers (e.g. a whole-tenant
/// dump), whose oversized results only matter if re-encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup of `key`.
    Get {
        /// The key to look up.
        key: u64,
    },
    /// Insert-if-absent of `key -> value` (see [`abtree::MapHandle::insert`]).
    Put {
        /// The key to insert.
        key: u64,
        /// The value to associate with `key` if it is absent.
        value: u64,
    },
    /// Removal of `key`.
    Delete {
        /// The key to remove.
        key: u64,
    },
    /// Range scan over the window `[lo, lo + len - 1]` (clamped below the
    /// engine's reserved sentinel key).
    Scan {
        /// First key of the window.
        lo: u64,
        /// Window length in keys (`0` yields an empty result).
        len: u64,
    },
    /// Batched multi-get: one lookup per key, results in input order.
    MGet {
        /// The keys to look up.
        keys: Vec<u64>,
    },
    /// Batched multi-put: one insert-if-absent per pair, results in input
    /// order.
    MPut {
        /// The `(key, value)` pairs to insert.
        pairs: Vec<(u64, u64)>,
    },
    /// Telemetry scrape: a point-in-time snapshot of every metric the
    /// service's [`obs::Registry`] knows about, answered with
    /// [`Response::Stats`].  Served by the router directly (it never
    /// crosses a shard lane), so it does not perturb — and is not counted
    /// in — the per-shard operation counters.
    Stats,
}

impl Request {
    /// The number of keys this request touches (1 for point ops, the batch
    /// length for batches, `len` for scans) — the unit in which the service
    /// reports per-request work.
    pub fn key_count(&self) -> u64 {
        match self {
            Request::Get { .. } | Request::Put { .. } | Request::Delete { .. } => 1,
            Request::Scan { len, .. } => *len,
            Request::MGet { keys } => keys.len() as u64,
            Request::MPut { pairs } => pairs.len() as u64,
            Request::Stats => 0,
        }
    }
}

/// The response to one [`Request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Result of a point op: the looked-up value (`Get`), the pre-existing
    /// value that made the insert a no-op (`Put`), or the removed value
    /// (`Delete`).
    Value(Option<u64>),
    /// Results of a batch (`MGet`/`MPut`), one entry per input in input
    /// order, with the same per-entry meaning as [`Response::Value`].
    Values(Vec<Option<u64>>),
    /// Result of a `Scan`: the `(key, value)` pairs stored in the window,
    /// sorted by key.
    Entries(Vec<(u64, u64)>),
    /// The request was shed without executing: its target shard already had
    /// a full lane of this client's requests in flight (see
    /// [`crate::service::Overloaded`]).  A front-end answers with this
    /// instead of blocking its event loop; the client may retry.
    Overloaded,
    /// A protocol-level failure: the server could not (or refused to)
    /// serve the client's frame — a corrupt batch, an oversized length
    /// prefix, a malformed frame header.  Carries a machine-readable
    /// reason `code` (the `netserve` front end defines the codes it
    /// sends); a server closes the connection after sending it.
    Error {
        /// Machine-readable reason code.
        code: u64,
    },
    /// Result of a [`Request::Stats`] scrape: the Prometheus-style text
    /// exposition of every registered metric at the moment the router
    /// served the request (parse it with [`obs::expo::parse`]).
    Stats(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_counts() {
        assert_eq!(Request::Get { key: 1 }.key_count(), 1);
        assert_eq!(Request::Put { key: 1, value: 2 }.key_count(), 1);
        assert_eq!(Request::Delete { key: 1 }.key_count(), 1);
        assert_eq!(Request::Scan { lo: 5, len: 40 }.key_count(), 40);
        assert_eq!(Request::MGet { keys: vec![1, 2, 3] }.key_count(), 3);
        assert_eq!(
            Request::MPut {
                pairs: vec![(1, 1), (2, 2)]
            }
            .key_count(),
            2
        );
        assert_eq!(Request::Stats.key_count(), 0, "a scrape touches no keys");
    }
}
