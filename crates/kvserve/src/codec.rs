//! Compact wire codec for request and response batches.
//!
//! The format is purpose-built and offline-friendly (no external
//! serialization crates): everything is a byte stream of LEB128 varints
//! behind 1-byte tags.  Small keys — the common case under Zipfian service
//! traffic, where hot keys are small ranks — encode in 1 byte instead of 8.
//!
//! ```text
//! batch          := varint(count) request*
//! request        := 0x01 varint(key)                      -- Get
//!                 | 0x02 varint(key) varint(value)        -- Put
//!                 | 0x03 varint(key)                      -- Delete
//!                 | 0x04 varint(lo) varint(len)           -- Scan
//!                 | 0x05 varint(n) varint(key)*n          -- MGet
//!                 | 0x06 varint(n) (varint varint)*n      -- MPut
//!                 | 0x07                                  -- Stats
//! response_batch := varint(count) response*
//! response       := 0x81 opt                              -- Value
//!                 | 0x82 varint(n) opt*n                  -- Values
//!                 | 0x83 varint(n) (varint varint)*n      -- Entries
//!                 | 0x84                                  -- Overloaded
//!                 | 0x85 varint(code)                     -- Error
//!                 | 0x86 varint(len) byte*len             -- Stats (UTF-8 text)
//! opt            := 0x00 | 0x01 varint(value)
//! ```
//!
//! Decoding is strict: unknown tags, truncated input, over-long varints,
//! oversized batches and trailing bytes are all rejected with a
//! [`CodecError`] rather than silently accepted, so a corrupted frame can
//! never turn into a plausible-looking batch.  Two engine-level limits are
//! part of the wire contract so that a decoded frame is always *servable*
//! and a served response is always *encodable*:
//!
//! * every key position (and a `Scan`'s window length) is capped by
//!   [`MAX_DECODED_LEN`] where it bounds downstream work, and
//! * the engine's reserved key ([`abtree::EMPTY_KEY`], `u64::MAX`) is
//!   rejected in key positions ([`CodecError::ReservedKey`]) — it can never
//!   be stored, and letting it through would trade a decode error for a
//!   panic deeper in the stack.
//!
//! Encoders enforce the same limits by panicking, so this module can never
//! produce a frame it would itself refuse.

use crate::request::{Request, Response};

/// Upper bound on any encoded or decoded count (batch length, multi-get
/// size, scan result size).  Decoders reject larger length prefixes up
/// front — keeping a corrupt or hostile prefix from provoking a huge
/// allocation — and encoders panic on oversized collections, so a frame
/// this module produces is always decodable by it.
pub const MAX_DECODED_LEN: u64 = 1 << 20;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended inside a value.
    Truncated,
    /// An unknown request/response tag byte (the offending byte).
    BadTag(u8),
    /// An `Option` flag byte other than 0 or 1 (the offending byte).
    BadFlag(u8),
    /// A varint ran longer than 10 bytes or overflowed 64 bits.
    BadVarint,
    /// A length prefix exceeded [`MAX_DECODED_LEN`] (the offending length).
    TooLong(u64),
    /// A key position carried the engine's reserved `EMPTY_KEY` sentinel
    /// (`u64::MAX`), which can never be stored or queried.
    ReservedKey,
    /// The batch decoded successfully but bytes remain (the count).
    TrailingBytes(usize),
    /// A stats-snapshot payload was not valid UTF-8.  The exposition text
    /// is UTF-8 by construction, so this means corruption, same severity
    /// as a bad tag.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated mid-value"),
            CodecError::BadTag(tag) => write!(f, "unknown tag byte 0x{tag:02x}"),
            CodecError::BadFlag(flag) => write!(f, "option flag must be 0 or 1, got 0x{flag:02x}"),
            CodecError::BadVarint => write!(f, "varint longer than 10 bytes or overflowing u64"),
            CodecError::TooLong(len) => {
                write!(f, "length prefix {len} exceeds the {MAX_DECODED_LEN} cap")
            }
            CodecError::ReservedKey => {
                write!(f, "key is the reserved EMPTY_KEY sentinel (u64::MAX)")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the batch"),
            CodecError::BadUtf8 => write!(f, "stats payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `value` to `out` as a LEB128 varint (1 byte for values < 128,
/// at most 10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        out.push((value as u8) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Reads a LEB128 varint from `buf` starting at `*pos`, advancing `*pos`.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        let &byte = buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        let chunk = (byte & 0x7F) as u64;
        // The 10th byte may only carry the single remaining bit.
        if shift == 63 && chunk > 1 {
            return Err(CodecError::BadVarint);
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(CodecError::BadVarint)
}

fn read_len(buf: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let len = read_varint(buf, pos)?;
    if len > MAX_DECODED_LEN {
        return Err(CodecError::TooLong(len));
    }
    Ok(len as usize)
}

/// Encoder-side twin of `read_len`: writes a length prefix, panicking on
/// counts the decoder would reject so an encoded frame is always decodable.
fn write_len(out: &mut Vec<u8>, len: usize) {
    assert!(
        len as u64 <= MAX_DECODED_LEN,
        "count {len} exceeds the {MAX_DECODED_LEN} wire cap; split the batch"
    );
    write_varint(out, len as u64);
}

/// Reads a key position, rejecting the engine's reserved sentinel.
fn read_key(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    match read_varint(buf, pos)? {
        abtree::EMPTY_KEY => Err(CodecError::ReservedKey),
        key => Ok(key),
    }
}

/// Encoder-side twin of `read_key`.
fn write_key(out: &mut Vec<u8>, key: u64) {
    assert!(
        key != abtree::EMPTY_KEY,
        "the reserved EMPTY_KEY sentinel cannot appear in a key position"
    );
    write_varint(out, key);
}

fn write_opt(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        None => out.push(0x00),
        Some(v) => {
            out.push(0x01);
            write_varint(out, v);
        }
    }
}

fn read_opt(buf: &[u8], pos: &mut usize) -> Result<Option<u64>, CodecError> {
    let &flag = buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    match flag {
        0x00 => Ok(None),
        0x01 => Ok(Some(read_varint(buf, pos)?)),
        other => Err(CodecError::BadFlag(other)),
    }
}

/// Appends the encoding of one request to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    match req {
        Request::Get { key } => {
            out.push(0x01);
            write_key(out, *key);
        }
        Request::Put { key, value } => {
            out.push(0x02);
            write_key(out, *key);
            write_varint(out, *value);
        }
        Request::Delete { key } => {
            out.push(0x03);
            write_key(out, *key);
        }
        Request::Scan { lo, len } => {
            out.push(0x04);
            write_key(out, *lo);
            // The window length caps the work a single scan request can
            // demand of a shard *and* the size of the entries response, so
            // it shares the batch-length cap.
            write_len(out, *len as usize);
        }
        Request::MGet { keys } => {
            out.push(0x05);
            write_len(out, keys.len());
            for &key in keys {
                write_key(out, key);
            }
        }
        Request::MPut { pairs } => {
            out.push(0x06);
            write_len(out, pairs.len());
            for &(key, value) in pairs {
                write_key(out, key);
                write_varint(out, value);
            }
        }
        // Payload-free, like Overloaded on the response side: a scrape
        // asks for everything, so there is nothing to parameterize.
        Request::Stats => out.push(0x07),
    }
}

fn decode_request(buf: &[u8], pos: &mut usize) -> Result<Request, CodecError> {
    let &tag = buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    Ok(match tag {
        0x01 => Request::Get {
            key: read_key(buf, pos)?,
        },
        0x02 => Request::Put {
            key: read_key(buf, pos)?,
            value: read_varint(buf, pos)?,
        },
        0x03 => Request::Delete {
            key: read_key(buf, pos)?,
        },
        0x04 => Request::Scan {
            lo: read_key(buf, pos)?,
            len: read_len(buf, pos)? as u64,
        },
        0x05 => {
            let n = read_len(buf, pos)?;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(read_key(buf, pos)?);
            }
            Request::MGet { keys }
        }
        0x06 => {
            let n = read_len(buf, pos)?;
            let mut pairs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = read_key(buf, pos)?;
                let value = read_varint(buf, pos)?;
                pairs.push((key, value));
            }
            Request::MPut { pairs }
        }
        0x07 => Request::Stats,
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Appends the encoding of one response to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    match resp {
        Response::Value(value) => {
            out.push(0x81);
            write_opt(out, *value);
        }
        Response::Values(values) => {
            out.push(0x82);
            write_len(out, values.len());
            for &value in values {
                write_opt(out, value);
            }
        }
        Response::Entries(entries) => {
            out.push(0x83);
            write_len(out, entries.len());
            for &(key, value) in entries {
                write_varint(out, key);
                write_varint(out, value);
            }
        }
        // Payload-free: the shed signal carries no data, only the tag.
        Response::Overloaded => out.push(0x84),
        Response::Error { code } => {
            out.push(0x85);
            write_varint(out, *code);
        }
        Response::Stats(text) => {
            out.push(0x86);
            // The exposition text shares the wire length cap, so a stats
            // frame can never exceed what any decoder would accept (a
            // full scrape of a large deployment is tens of KB).
            write_len(out, text.len());
            out.extend_from_slice(text.as_bytes());
        }
    }
}

fn decode_response(buf: &[u8], pos: &mut usize) -> Result<Response, CodecError> {
    let &tag = buf.get(*pos).ok_or(CodecError::Truncated)?;
    *pos += 1;
    Ok(match tag {
        0x81 => Response::Value(read_opt(buf, pos)?),
        0x82 => {
            let n = read_len(buf, pos)?;
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                values.push(read_opt(buf, pos)?);
            }
            Response::Values(values)
        }
        0x83 => {
            let n = read_len(buf, pos)?;
            let mut entries = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let key = read_varint(buf, pos)?;
                let value = read_varint(buf, pos)?;
                entries.push((key, value));
            }
            Response::Entries(entries)
        }
        0x84 => Response::Overloaded,
        0x85 => Response::Error {
            code: read_varint(buf, pos)?,
        },
        0x86 => {
            let n = read_len(buf, pos)?;
            let bytes = buf
                .get(*pos..*pos + n)
                .ok_or(CodecError::Truncated)?;
            *pos += n;
            let text = std::str::from_utf8(bytes)
                .map_err(|_| CodecError::BadUtf8)?
                .to_string();
            Response::Stats(text)
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

/// Encodes a request batch into `out` (cleared first).
pub fn encode_batch(requests: &[Request], out: &mut Vec<u8>) {
    out.clear();
    write_len(out, requests.len());
    for req in requests {
        encode_request(req, out);
    }
}

/// Decodes a request batch, requiring the whole buffer to be consumed.
pub fn decode_batch(buf: &[u8]) -> Result<Vec<Request>, CodecError> {
    let mut pos = 0;
    let count = read_len(buf, &mut pos)?;
    let mut requests = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        requests.push(decode_request(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(CodecError::TrailingBytes(buf.len() - pos));
    }
    Ok(requests)
}

/// Encodes a response batch into `out` (cleared first).
pub fn encode_response_batch(responses: &[Response], out: &mut Vec<u8>) {
    out.clear();
    write_len(out, responses.len());
    for resp in responses {
        encode_response(resp, out);
    }
}

/// Decodes a response batch, requiring the whole buffer to be consumed.
pub fn decode_response_batch(buf: &[u8]) -> Result<Vec<Response>, CodecError> {
    let mut pos = 0;
    let count = read_len(buf, &mut pos)?;
    let mut responses = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        responses.push(decode_response(buf, &mut pos)?);
    }
    if pos != buf.len() {
        return Err(CodecError::TrailingBytes(buf.len() - pos));
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX - 1, u64::MAX] {
            buf.clear();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
        // Small values are 1 byte — the compactness the format exists for.
        buf.clear();
        write_varint(&mut buf, 42);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn overlong_varint_is_rejected() {
        // 11 continuation bytes can never be a valid u64.
        let buf = [0x80u8; 11];
        assert_eq!(read_varint(&buf, &mut 0), Err(CodecError::BadVarint));
        // A 10-byte varint whose top byte overflows bit 63 is rejected too.
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x02);
        assert_eq!(read_varint(&buf, &mut 0), Err(CodecError::BadVarint));
    }

    #[test]
    fn batch_round_trips() {
        let reqs = vec![
            Request::Get { key: 7 },
            Request::Put { key: 1, value: u64::MAX },
            Request::Delete { key: 0 },
            Request::Scan { lo: 100, len: 50 },
            Request::MGet { keys: vec![1, 128, 300_000] },
            Request::MPut {
                pairs: vec![(5, 50), (6, 60)],
            },
        ];
        let mut wire = Vec::new();
        encode_batch(&reqs, &mut wire);
        assert_eq!(decode_batch(&wire).unwrap(), reqs);

        let resps = vec![
            Response::Value(None),
            Response::Value(Some(9)),
            Response::Values(vec![Some(1), None, Some(u64::MAX)]),
            Response::Entries(vec![(1, 2), (3, 4)]),
            Response::Overloaded,
            Response::Error { code: 2 },
        ];
        encode_response_batch(&resps, &mut wire);
        assert_eq!(decode_response_batch(&wire).unwrap(), resps);
        // An error frame is tag + code and nothing else.
        encode_response_batch(&[Response::Error { code: 3 }], &mut wire);
        assert_eq!(wire, vec![1, 0x85, 3]);
        // Overloaded is a bare tag: it must cost exactly one byte.
        encode_response_batch(&[Response::Overloaded], &mut wire);
        assert_eq!(wire, vec![1, 0x84]);
    }

    #[test]
    fn strictness() {
        let mut wire = Vec::new();
        encode_batch(&[Request::Get { key: 1000 }], &mut wire);
        // Truncation anywhere inside the frame is an error.
        for cut in 0..wire.len() {
            assert!(decode_batch(&wire[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is an error.
        wire.push(0x00);
        assert_eq!(decode_batch(&wire), Err(CodecError::TrailingBytes(1)));
        // Unknown tags are an error.
        assert_eq!(decode_batch(&[1, 0x7F, 0]), Err(CodecError::BadTag(0x7F)));
        // Hostile length prefixes are capped.
        let mut huge = Vec::new();
        write_varint(&mut huge, u64::MAX / 2);
        assert!(matches!(
            decode_batch(&huge),
            Err(CodecError::TooLong(_))
        ));
        // Bad option flags are an error.
        assert_eq!(
            decode_response_batch(&[1, 0x81, 0x07]),
            Err(CodecError::BadFlag(0x07))
        );
    }

    #[test]
    fn reserved_key_is_rejected_both_ways() {
        // Decoder: a well-formed frame carrying the sentinel in a key
        // position errors instead of reaching the engine.
        let mut frame = Vec::new();
        write_varint(&mut frame, 1); // batch of one
        frame.push(0x01); // Get
        write_varint(&mut frame, u64::MAX);
        assert_eq!(decode_batch(&frame), Err(CodecError::ReservedKey));
        // Scan window lengths above the cap are rejected at decode, so a
        // decoded scan can never demand an unencodable Entries response.
        let mut frame = Vec::new();
        write_varint(&mut frame, 1);
        frame.push(0x04); // Scan
        write_varint(&mut frame, 0); // lo
        write_varint(&mut frame, MAX_DECODED_LEN + 1); // len
        assert!(matches!(decode_batch(&frame), Err(CodecError::TooLong(_))));
    }

    #[test]
    #[should_panic(expected = "EMPTY_KEY")]
    fn encoder_rejects_the_reserved_key_too() {
        encode_batch(&[Request::Get { key: u64::MAX }], &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn encoder_enforces_the_cap_too() {
        // A frame the decoder would reject must never be produced: the
        // encoder panics instead of emitting an undecodable batch.
        let oversized = Request::MGet {
            keys: vec![0; MAX_DECODED_LEN as usize + 1],
        };
        encode_batch(std::slice::from_ref(&oversized), &mut Vec::new());
    }

    #[test]
    fn errors_display() {
        for (err, needle) in [
            (CodecError::Truncated, "truncated"),
            (CodecError::BadTag(0xAA), "0xaa"),
            (CodecError::BadFlag(9), "flag"),
            (CodecError::BadVarint, "varint"),
            (CodecError::TooLong(1 << 30), "cap"),
            (CodecError::ReservedKey, "EMPTY_KEY"),
            (CodecError::TrailingBytes(3), "3 trailing"),
            (CodecError::BadUtf8, "UTF-8"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn stats_frames_round_trip() {
        // The request is a bare tag, like Overloaded on the response side.
        let mut wire = Vec::new();
        encode_batch(&[Request::Stats], &mut wire);
        assert_eq!(wire, vec![1, 0x07]);
        assert_eq!(decode_batch(&wire).unwrap(), vec![Request::Stats]);

        // The response carries length-prefixed UTF-8 exposition text.
        let text = "# TYPE kv_ops_total counter\nkv_ops_total{shard=\"0\"} 42\n";
        let resp = Response::Stats(text.to_string());
        encode_response_batch(std::slice::from_ref(&resp), &mut wire);
        assert_eq!(decode_response_batch(&wire).unwrap(), vec![resp]);
        // Empty exposition (no sources registered) is legal.
        let empty = Response::Stats(String::new());
        encode_response_batch(std::slice::from_ref(&empty), &mut wire);
        assert_eq!(decode_response_batch(&wire).unwrap(), vec![empty]);
        // Stats mixes with other responses in one batch.
        let mixed = vec![
            Response::Value(Some(1)),
            Response::Stats("x 1\n".to_string()),
            Response::Overloaded,
        ];
        encode_response_batch(&mixed, &mut wire);
        assert_eq!(decode_response_batch(&wire).unwrap(), mixed);
    }

    #[test]
    fn stats_decode_is_strict() {
        let mut wire = Vec::new();
        encode_response_batch(
            &[Response::Stats("metric_total 7\n".to_string())],
            &mut wire,
        );
        // Truncation anywhere inside the frame — including mid-payload —
        // is an error, same rule as every other frame.
        for cut in 0..wire.len() {
            assert!(
                decode_response_batch(&wire[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Trailing bytes after the payload are an error.
        wire.push(0x00);
        assert_eq!(
            decode_response_batch(&wire),
            Err(CodecError::TrailingBytes(1))
        );
        // A length prefix larger than the cap is rejected before any
        // allocation.
        let mut hostile = Vec::new();
        write_varint(&mut hostile, 1); // batch of one
        hostile.push(0x86);
        write_varint(&mut hostile, MAX_DECODED_LEN + 1);
        assert!(matches!(
            decode_response_batch(&hostile),
            Err(CodecError::TooLong(_))
        ));
        // Non-UTF-8 payload bytes are rejected, not lossily accepted.
        let mut bad = Vec::new();
        write_varint(&mut bad, 1);
        bad.push(0x86);
        write_varint(&mut bad, 2);
        bad.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_response_batch(&bad), Err(CodecError::BadUtf8));
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn stats_encoder_enforces_the_cap_too() {
        let oversized = Response::Stats("x".repeat(MAX_DECODED_LEN as usize + 1));
        encode_response_batch(std::slice::from_ref(&oversized), &mut Vec::new());
    }
}
