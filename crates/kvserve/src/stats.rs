//! Service observability: operation counters and their registry sources.
//!
//! Everything here is lock-free (plain relaxed atomics) and allocation-free
//! on the record path, so routers can update stats inline without perturbing
//! the workload they measure.  The histogram type itself lives in the
//! telemetry crate ([`obs::Histogram`], re-exported here for compatibility);
//! this module owns the *service-shaped* aggregates — per-shard and
//! per-namespace counters, the latency/batch-size histograms — and knows how
//! to emit them as registry [`Sample`]s for a scrape.
//!
//! With `obs`'s `compile-out` feature enabled every `record_*` method
//! returns immediately (the [`obs::ENABLED`] branch is a `const`, so it
//! folds away), which is what makes the measured-overhead baseline honest.

use std::sync::atomic::{AtomicU64, Ordering};

pub use obs::{Histogram, HISTOGRAM_BUCKETS};

use obs::Sample;

/// Operation counters for one shard or one namespace.
///
/// Batched requests bump shard-level `mgets`/`mputs` once per *sub-batch*
/// (a multi-get spanning three shards bumps three shard-level `mgets` — the
/// dispatch unit) and namespace-level `mgets`/`mputs` once per *key* (the
/// tenant-billing unit).  `hits`/`misses` always count per key, so hit rate
/// is per-key everywhere.
#[derive(Debug, Default)]
pub struct OpCounters {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
    mgets: AtomicU64,
    mputs: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OpCounters {
    #[inline]
    pub(crate) fn record_get(&self, hit: bool) {
        if !obs::ENABLED {
            return;
        }
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.record_lookup(hit);
    }

    #[inline]
    pub(crate) fn record_lookup(&self, hit: bool) {
        if !obs::ENABLED {
            return;
        }
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn record_put(&self) {
        if !obs::ENABLED {
            return;
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_delete(&self) {
        if !obs::ENABLED {
            return;
        }
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_scan(&self) {
        if !obs::ENABLED {
            return;
        }
        self.scans.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_mget(&self) {
        if !obs::ENABLED {
            return;
        }
        self.mgets.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_mput(&self) {
        if !obs::ENABLED {
            return;
        }
        self.mputs.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes every counter (quiescent only, like [`Histogram::reset`]).
    pub fn reset(&self) {
        for counter in [
            &self.gets,
            &self.puts,
            &self.deletes,
            &self.scans,
            &self.mgets,
            &self.mputs,
            &self.hits,
            &self.misses,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Point lookups served.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Point insert-if-absent operations served.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Point deletes served.
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    /// Scans served (scatter-gather scans count once per shard touched).
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Multi-get sub-batches served.
    pub fn mgets(&self) -> u64 {
        self.mgets.load(Ordering::Relaxed)
    }

    /// Multi-put sub-batches served.
    pub fn mputs(&self) -> u64 {
        self.mputs.load(Ordering::Relaxed)
    }

    /// Lookups (point gets plus multi-get keys) that found a value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// All operations served (batches counted per sub-batch).
    pub fn total_ops(&self) -> u64 {
        self.gets() + self.puts() + self.deletes() + self.scans() + self.mgets() + self.mputs()
    }

    /// Per-key hit rate of lookups in `[0, 1]`; 0 when no lookups ran.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Emits this counter set as labeled samples: one `ops_name{label,op=*}`
    /// counter per op family and `lookups_name{label,outcome=hit|miss}`.
    /// All eight are emitted even when zero, so scrape consumers see a
    /// stable shape.
    fn collect(
        &self,
        out: &mut Vec<Sample>,
        ops_name: &'static str,
        lookups_name: &'static str,
        label: &'static str,
        index: usize,
    ) {
        for (op, value) in [
            ("get", self.gets()),
            ("put", self.puts()),
            ("delete", self.deletes()),
            ("scan", self.scans()),
            ("mget", self.mgets()),
            ("mput", self.mputs()),
        ] {
            out.push(Sample::counter(ops_name, value).with(label, index).with("op", op));
        }
        out.push(
            Sample::counter(lookups_name, self.hits())
                .with(label, index)
                .with("outcome", "hit"),
        );
        out.push(
            Sample::counter(lookups_name, self.misses())
                .with(label, index)
                .with("outcome", "miss"),
        );
    }
}

/// All service-level statistics: per-shard counters, per-namespace counters,
/// and the latency/batch-size histograms.
#[derive(Debug)]
pub struct ServiceStats {
    shards: Vec<OpCounters>,
    namespaces: Vec<OpCounters>,
    /// Latency of point requests (`Get`/`Put`/`Delete`), in nanoseconds.
    /// **Sampled**: recorded for the same deterministic 1-in-16 subset the
    /// stage trace follows, so the untraced majority of point ops reads no
    /// clock at all (quantiles stay unbiased; `count()` is ~ops/16).
    pub point_latency_ns: Histogram,
    /// Latency of whole batched requests (`MGet`/`MPut`), in nanoseconds.
    pub batch_latency_ns: Histogram,
    /// Latency of scans (scatter-gather across shards), in nanoseconds.
    pub scan_latency_ns: Histogram,
    /// Sizes (key counts) of batched requests.
    pub batch_size: Histogram,
    /// Reads answered by a router's hot-key cache (no queue crossing).
    cache_hits: AtomicU64,
    /// Pipelined submissions refused with `Overloaded` (full shard lane).
    shed: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn new(shards: usize, namespaces: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| OpCounters::default()).collect(),
            namespaces: (0..namespaces).map(|_| OpCounters::default()).collect(),
            point_latency_ns: Histogram::new(),
            batch_latency_ns: Histogram::new(),
            scan_latency_ns: Histogram::new(),
            batch_size: Histogram::new(),
            cache_hits: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record_cache_hit(&self) {
        if !obs::ENABLED {
            return;
        }
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_shed(&self) {
        if !obs::ENABLED {
            return;
        }
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads (point gets and multi-get keys) answered by a router's hot-key
    /// cache without crossing a shard lane.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Pipelined submissions refused with
    /// [`Overloaded`](crate::service::Overloaded) because the target
    /// shard's lane was at capacity.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Counters of shard `index` (panics if out of range).
    pub fn shard(&self, index: usize) -> &OpCounters {
        &self.shards[index]
    }

    /// Per-shard counters, in shard order.
    pub fn shards(&self) -> &[OpCounters] {
        &self.shards
    }

    /// Counters of the namespace-stat slot `index` (panics if out of range).
    ///
    /// Keys are attributed to slot `tenant % slots`, so with at least as
    /// many slots as active tenants each tenant gets its own row.
    pub fn namespace(&self, index: usize) -> &OpCounters {
        &self.namespaces[index]
    }

    /// Per-namespace counters, in slot order.
    pub fn namespaces(&self) -> &[OpCounters] {
        &self.namespaces
    }

    /// The namespace-stat slot a packed key is attributed to.
    #[inline]
    pub(crate) fn namespace_slot(&self, packed_key: u64) -> usize {
        (packed_key >> crate::namespace::LOCAL_KEY_BITS) as usize % self.namespaces.len()
    }

    /// Total operations across all shards (batches counted per sub-batch).
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.total_ops()).sum()
    }

    /// Zeroes every counter and histogram, so a measured phase can start
    /// from a clean slate after prefill.  Quiescent only: call it while no
    /// router is serving traffic.
    pub fn reset(&self) {
        for counters in self.shards.iter().chain(&self.namespaces) {
            counters.reset();
        }
        self.point_latency_ns.reset();
        self.batch_latency_ns.reset();
        self.scan_latency_ns.reset();
        self.batch_size.reset();
        self.cache_hits.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
    }

    /// Registry source: emits every service-level metric (the `kv_*` rows
    /// of the metric table in the repository README).
    pub fn collect(&self, out: &mut Vec<Sample>) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.collect(out, "kv_ops_total", "kv_lookups_total", "shard", i);
        }
        for (i, ns) in self.namespaces.iter().enumerate() {
            ns.collect(
                out,
                "kv_namespace_ops_total",
                "kv_namespace_lookups_total",
                "namespace",
                i,
            );
        }
        out.push(Sample::counter("kv_cache_hits_total", self.cache_hits()));
        out.push(Sample::counter("kv_shed_total", self.shed()));
        out.push(Sample::histogram("kv_point_latency_ns", &self.point_latency_ns));
        out.push(Sample::histogram("kv_batch_latency_ns", &self.batch_latency_ns));
        out.push(Sample::histogram("kv_scan_latency_ns", &self.scan_latency_ns));
        out.push(Sample::histogram("kv_batch_size", &self.batch_size));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_hit_rate() {
        if !obs::ENABLED {
            return; // recording is compiled out
        }
        let c = OpCounters::default();
        assert_eq!(c.hit_rate(), 0.0, "no lookups yet");
        c.record_get(true);
        c.record_get(true);
        c.record_get(false);
        c.record_put();
        c.record_delete();
        c.record_scan();
        c.record_mget();
        c.record_lookup(false);
        c.record_mput();
        assert_eq!(c.gets(), 3);
        assert_eq!(c.puts(), 1);
        assert_eq!(c.deletes(), 1);
        assert_eq!(c.scans(), 1);
        assert_eq!(c.mgets(), 1);
        assert_eq!(c.mputs(), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.total_ops(), 8);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let stats = ServiceStats::new(2, 2);
        stats.shard(0).record_get(true);
        stats.namespace(1).record_mput();
        stats.point_latency_ns.record(100);
        stats.batch_size.record(16);
        stats.record_cache_hit();
        stats.record_shed();
        if obs::ENABLED {
            assert_eq!(stats.cache_hits(), 1);
            assert_eq!(stats.shed(), 1);
        }
        stats.reset();
        assert_eq!(stats.total_ops(), 0);
        assert_eq!(stats.shard(0).hits(), 0);
        assert_eq!(stats.namespace(1).mputs(), 0);
        assert_eq!(stats.point_latency_ns.count(), 0);
        assert_eq!(stats.batch_size.count(), 0);
        assert_eq!(stats.cache_hits(), 0);
        assert_eq!(stats.shed(), 0);
    }

    #[test]
    fn namespace_slots_wrap() {
        let stats = ServiceStats::new(2, 4);
        let key_t0 = 5u64;
        let key_t6 = (6u64 << crate::namespace::LOCAL_KEY_BITS) | 5;
        assert_eq!(stats.namespace_slot(key_t0), 0);
        assert_eq!(stats.namespace_slot(key_t6), 2, "tenant 6 % 4 slots");
        assert_eq!(stats.shards().len(), 2);
        assert_eq!(stats.namespaces().len(), 4);
    }

    #[test]
    fn collect_emits_the_documented_metric_names() {
        if !obs::ENABLED {
            return;
        }
        let stats = ServiceStats::new(2, 1);
        stats.shard(0).record_get(true);
        stats.shard(1).record_put();
        stats.namespace(0).record_lookup(false);
        stats.record_shed();
        stats.point_latency_ns.record(500);
        let mut out = Vec::new();
        stats.collect(&mut out);
        let text = obs::expo::render(&out);
        let parsed = obs::expo::parse(&text).unwrap();
        assert_eq!(
            obs::expo::value(&parsed, "kv_ops_total", &[("shard", "0"), ("op", "get")]),
            Some(1)
        );
        assert_eq!(
            obs::expo::value(&parsed, "kv_ops_total", &[("shard", "1"), ("op", "put")]),
            Some(1)
        );
        assert_eq!(
            obs::expo::sum(&parsed, "kv_ops_total", &[("op", "delete")]),
            0,
            "zero-valued rows are emitted, not skipped"
        );
        assert_eq!(
            obs::expo::value(
                &parsed,
                "kv_namespace_lookups_total",
                &[("namespace", "0"), ("outcome", "miss")]
            ),
            Some(1)
        );
        assert_eq!(obs::expo::value(&parsed, "kv_shed_total", &[]), Some(1));
        assert_eq!(
            obs::expo::value(&parsed, "kv_point_latency_ns_count", &[]),
            Some(1)
        );
    }
}
