//! Service observability: operation counters and fixed-bucket histograms.
//!
//! Everything here is lock-free (plain relaxed atomics) and allocation-free
//! on the record path, so routers can update stats inline without perturbing
//! the workload they measure.  The build environment is offline, so the
//! latency histogram is a purpose-built fixed-bucket power-of-two histogram
//! (the shape HdrHistogram-style recorders degrade to at low resolution)
//! rather than an external crate: 64 buckets, bucket *i* holding values
//! whose highest set bit is *i*, i.e. `[2^i, 2^(i+1))`.  Quantiles are
//! resolved to the bucket upper bound, giving ~2x-resolution p50/p99 — ample
//! for distinguishing "100ns point get" from "10µs cross-shard scan".

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (one per possible highest set bit of a
/// `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram over `u64` samples.
///
/// `record` is wait-free (one relaxed fetch-add); quantile queries walk the
/// 64 buckets.  Used for latencies (nanoseconds) and batch sizes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index holding `value`: the position of its highest set bit
    /// (0 for values 0 and 1).
    #[inline]
    fn bucket_of(value: u64) -> usize {
        63 - (value | 1).leading_zeros() as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or `None` for an empty histogram.  Resolution is
    /// the bucket width, i.e. within 2x of the true quantile.
    ///
    /// An empty histogram has no quantiles: returning any in-band number
    /// (this function used to return 0, a value inside bucket 0) lets "no
    /// traffic" masquerade as "sub-nanosecond latency" in reports.  Samples
    /// that land in the top bucket resolve to `Some(u64::MAX)`, a *saturated*
    /// reading meaning "at least 2^63" — distinguishable from the empty case.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // The rank of the requested quantile, 1-based, clamped into range
        // (also forgiving of q outside [0, 1] and NaN, which clamp to the
        // extremes).
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { (1 << (i + 1)) - 1 });
            }
        }
        // Unreachable when counts are stable; concurrent `record`s between
        // the `count` above and the walk can only increase `seen`.
        Some(u64::MAX)
    }

    /// Median, or `None` when no samples were recorded (see
    /// [`quantile`](Self::quantile) for resolution and saturation).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile, or `None` when no samples were recorded (see
    /// [`quantile`](Self::quantile) for resolution and saturation).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Zeroes every bucket.  Quiescent only: concurrent `record`s may be
    /// lost or survive, so call it between phases (e.g. after prefill),
    /// never under traffic.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }

    /// Folds `other`'s samples into `self`, bucket by bucket (saturating).
    ///
    /// This is how per-shard-worker histograms are aggregated without any
    /// locking on the hot path: each shard owner records into its own
    /// histogram with relaxed adds, and a reporting thread merges the
    /// per-shard instances into a scratch histogram when asked.  The merge
    /// itself is a racy-but-monotone snapshot, same contract as
    /// [`count`](Self::count) under concurrent `record`s.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            let merged = (*mine.get_mut()).saturating_add(theirs.load(Ordering::Relaxed));
            *mine.get_mut() = merged;
        }
    }

    /// Arithmetic mean of the recorded samples, approximated by bucket
    /// midpoints; 0 for an empty histogram.
    pub fn approx_mean(&self) -> f64 {
        let mut total = 0u64;
        let mut weighted = 0f64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                let midpoint = if i == 0 { 1.0 } else { 1.5 * (1u64 << i) as f64 };
                weighted += n as f64 * midpoint;
                total += n;
            }
        }
        if total == 0 {
            0.0
        } else {
            weighted / total as f64
        }
    }
}

/// Operation counters for one shard or one namespace.
///
/// Batched requests bump shard-level `mgets`/`mputs` once per *sub-batch*
/// (a multi-get spanning three shards bumps three shard-level `mgets` — the
/// dispatch unit) and namespace-level `mgets`/`mputs` once per *key* (the
/// tenant-billing unit).  `hits`/`misses` always count per key, so hit rate
/// is per-key everywhere.
#[derive(Debug, Default)]
pub struct OpCounters {
    gets: AtomicU64,
    puts: AtomicU64,
    deletes: AtomicU64,
    scans: AtomicU64,
    mgets: AtomicU64,
    mputs: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl OpCounters {
    #[inline]
    pub(crate) fn record_get(&self, hit: bool) {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.record_lookup(hit);
    }

    #[inline]
    pub(crate) fn record_lookup(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn record_put(&self) {
        self.puts.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_scan(&self) {
        self.scans.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_mget(&self) {
        self.mgets.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_mput(&self) {
        self.mputs.fetch_add(1, Ordering::Relaxed);
    }

    /// Zeroes every counter (quiescent only, like [`Histogram::reset`]).
    pub fn reset(&self) {
        for counter in [
            &self.gets,
            &self.puts,
            &self.deletes,
            &self.scans,
            &self.mgets,
            &self.mputs,
            &self.hits,
            &self.misses,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// Point lookups served.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Point insert-if-absent operations served.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Point deletes served.
    pub fn deletes(&self) -> u64 {
        self.deletes.load(Ordering::Relaxed)
    }

    /// Scans served (scatter-gather scans count once per shard touched).
    pub fn scans(&self) -> u64 {
        self.scans.load(Ordering::Relaxed)
    }

    /// Multi-get sub-batches served.
    pub fn mgets(&self) -> u64 {
        self.mgets.load(Ordering::Relaxed)
    }

    /// Multi-put sub-batches served.
    pub fn mputs(&self) -> u64 {
        self.mputs.load(Ordering::Relaxed)
    }

    /// Lookups (point gets plus multi-get keys) that found a value.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// All operations served (batches counted per sub-batch).
    pub fn total_ops(&self) -> u64 {
        self.gets() + self.puts() + self.deletes() + self.scans() + self.mgets() + self.mputs()
    }

    /// Per-key hit rate of lookups in `[0, 1]`; 0 when no lookups ran.
    pub fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// All service-level statistics: per-shard counters, per-namespace counters,
/// and the latency/batch-size histograms.
#[derive(Debug)]
pub struct ServiceStats {
    shards: Vec<OpCounters>,
    namespaces: Vec<OpCounters>,
    /// Latency of point requests (`Get`/`Put`/`Delete`), in nanoseconds.
    pub point_latency_ns: Histogram,
    /// Latency of whole batched requests (`MGet`/`MPut`), in nanoseconds.
    pub batch_latency_ns: Histogram,
    /// Latency of scans (scatter-gather across shards), in nanoseconds.
    pub scan_latency_ns: Histogram,
    /// Sizes (key counts) of batched requests.
    pub batch_size: Histogram,
    /// Reads answered by a router's hot-key cache (no queue crossing).
    cache_hits: AtomicU64,
    /// Pipelined submissions refused with `Overloaded` (full shard lane).
    shed: AtomicU64,
}

impl ServiceStats {
    pub(crate) fn new(shards: usize, namespaces: usize) -> Self {
        Self {
            shards: (0..shards).map(|_| OpCounters::default()).collect(),
            namespaces: (0..namespaces).map(|_| OpCounters::default()).collect(),
            point_latency_ns: Histogram::new(),
            batch_latency_ns: Histogram::new(),
            scan_latency_ns: Histogram::new(),
            batch_size: Histogram::new(),
            cache_hits: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads (point gets and multi-get keys) answered by a router's hot-key
    /// cache without crossing a shard lane.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Pipelined submissions refused with
    /// [`Overloaded`](crate::service::Overloaded) because the target
    /// shard's lane was at capacity.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Counters of shard `index` (panics if out of range).
    pub fn shard(&self, index: usize) -> &OpCounters {
        &self.shards[index]
    }

    /// Per-shard counters, in shard order.
    pub fn shards(&self) -> &[OpCounters] {
        &self.shards
    }

    /// Counters of the namespace-stat slot `index` (panics if out of range).
    ///
    /// Keys are attributed to slot `tenant % slots`, so with at least as
    /// many slots as active tenants each tenant gets its own row.
    pub fn namespace(&self, index: usize) -> &OpCounters {
        &self.namespaces[index]
    }

    /// Per-namespace counters, in slot order.
    pub fn namespaces(&self) -> &[OpCounters] {
        &self.namespaces
    }

    /// The namespace-stat slot a packed key is attributed to.
    #[inline]
    pub(crate) fn namespace_slot(&self, packed_key: u64) -> usize {
        (packed_key >> crate::namespace::LOCAL_KEY_BITS) as usize % self.namespaces.len()
    }

    /// Total operations across all shards (batches counted per sub-batch).
    pub fn total_ops(&self) -> u64 {
        self.shards.iter().map(|s| s.total_ops()).sum()
    }

    /// Zeroes every counter and histogram, so a measured phase can start
    /// from a clean slate after prefill.  Quiescent only: call it while no
    /// router is serving traffic.
    pub fn reset(&self) {
        for counters in self.shards.iter().chain(&self.namespaces) {
            counters.reset();
        }
        self.point_latency_ns.reset();
        self.batch_latency_ns.reset();
        self.scan_latency_ns.reset();
        self.batch_size.reset();
        self.cache_hits.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1.
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 2);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 2);
        assert_eq!(h.buckets[63].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper bound 127
        }
        h.record(1 << 20); // one outlier
        assert_eq!(h.p50(), Some(127));
        assert_eq!(h.p99(), Some(127));
        assert_eq!(h.quantile(1.0), Some((1 << 21) - 1));
        // True mean ~10.6k; the bucket-midpoint approximation may be off by
        // up to the 2x bucket width.
        let mean = h.approx_mean();
        assert!(mean > 90.0 && mean < 22_000.0, "mean = {mean}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q = {q}");
        }
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        // A single bucket-0 sample is `Some` — the empty sentinel must not
        // be confusable with a real (tiny) quantile.
        h.record(0);
        assert_eq!(h.p50(), Some(1));
        assert_ne!(h.p50(), None);
        // ... and reset returns the histogram to the no-quantiles state.
        h.reset();
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantile_of_max_value_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50(), Some(u64::MAX), "saturated, not None");
        // Out-of-range and NaN quantiles clamp instead of panicking.
        assert_eq!(h.quantile(-3.0), Some(u64::MAX));
        assert_eq!(h.quantile(42.0), Some(u64::MAX));
        assert_eq!(h.quantile(f64::NAN), Some(u64::MAX));
    }

    #[test]
    fn counters_and_hit_rate() {
        let c = OpCounters::default();
        assert_eq!(c.hit_rate(), 0.0, "no lookups yet");
        c.record_get(true);
        c.record_get(true);
        c.record_get(false);
        c.record_put();
        c.record_delete();
        c.record_scan();
        c.record_mget();
        c.record_lookup(false);
        c.record_mput();
        assert_eq!(c.gets(), 3);
        assert_eq!(c.puts(), 1);
        assert_eq!(c.deletes(), 1);
        assert_eq!(c.scans(), 1);
        assert_eq!(c.mgets(), 1);
        assert_eq!(c.mputs(), 1);
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.total_ops(), 8);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_folds_buckets_and_preserves_quantiles() {
        let fast = Histogram::new();
        for _ in 0..90 {
            fast.record(100); // bucket 6, upper bound 127
        }
        let slow = Histogram::new();
        for _ in 0..10 {
            slow.record(1 << 20); // bucket 20
        }
        let mut merged = Histogram::new();
        merged.merge(&fast);
        merged.merge(&slow);
        assert_eq!(merged.count(), 100);
        // The merged distribution is exactly the union: p50 from the fast
        // source, p99 from the slow tail neither source had alone.
        assert_eq!(merged.p50(), Some(127));
        assert_eq!(merged.p99(), Some((1 << 21) - 1));
        assert_eq!(fast.p99(), Some(127), "sources are untouched");
        assert_eq!(slow.count(), 10);
    }

    #[test]
    fn merge_with_empty_respects_the_option_api() {
        // Merging empty histograms must not manufacture samples: the
        // no-quantiles `None` state from PR 5 has to survive.
        let mut merged = Histogram::new();
        merged.merge(&Histogram::new());
        assert_eq!(merged.count(), 0);
        assert_eq!(merged.p50(), None);
        assert_eq!(merged.p99(), None);
        // Empty + non-empty behaves like a copy.
        let source = Histogram::new();
        source.record(0);
        source.record(u64::MAX);
        merged.merge(&source);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.p50(), Some(1));
        assert_eq!(merged.quantile(1.0), Some(u64::MAX), "saturated top bucket");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut merged = Histogram::new();
        merged.buckets[0].store(u64::MAX - 1, Ordering::Relaxed);
        let source = Histogram::new();
        source.record(0);
        source.record(1);
        merged.merge(&source);
        assert_eq!(merged.buckets[0].load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn reset_clears_everything() {
        let stats = ServiceStats::new(2, 2);
        stats.shard(0).record_get(true);
        stats.namespace(1).record_mput();
        stats.point_latency_ns.record(100);
        stats.batch_size.record(16);
        stats.record_cache_hit();
        stats.record_shed();
        assert_eq!(stats.cache_hits(), 1);
        assert_eq!(stats.shed(), 1);
        stats.reset();
        assert_eq!(stats.total_ops(), 0);
        assert_eq!(stats.shard(0).hits(), 0);
        assert_eq!(stats.namespace(1).mputs(), 0);
        assert_eq!(stats.point_latency_ns.count(), 0);
        assert_eq!(stats.batch_size.count(), 0);
        assert_eq!(stats.cache_hits(), 0);
        assert_eq!(stats.shed(), 0);
    }

    #[test]
    fn namespace_slots_wrap() {
        let stats = ServiceStats::new(2, 4);
        let key_t0 = 5u64;
        let key_t6 = (6u64 << crate::namespace::LOCAL_KEY_BITS) | 5;
        assert_eq!(stats.namespace_slot(key_t0), 0);
        assert_eq!(stats.namespace_slot(key_t6), 2, "tenant 6 % 4 slots");
        assert_eq!(stats.shards().len(), 2);
        assert_eq!(stats.namespaces().len(), 4);
    }
}
