//! `kvserve`: an embedded, sharded, batched key-value service layer over
//! the engine's per-thread [`abtree::MapHandle`] sessions.
//!
//! The reproduction's trees absorb high-contention update traffic; this
//! crate grows them toward the front half of a real serving system.  It
//! adds the pieces a data structure does not have but a service needs:
//!
//! * **Sharding with thread-per-shard ownership** ([`KvService`]): `S`
//!   independent engine instances behind a multiplicative-hash router, each
//!   owned by one dedicated worker thread holding the shard's single
//!   long-lived engine session — the tree's EBR epoch and hot cache lines
//!   stay on one core for the shard's whole lifetime.  Each shard can be
//!   any structure — concrete trees, or the benchmark registry's
//!   `Box<dyn Benchable>` trait objects (the [`ShardStore`] bound is
//!   blanket-implemented for every `ConcurrentMap + KeySum` type).
//! * **SPSC-fed routing sessions** ([`ShardRouter`]): a per-client session
//!   holding one bounded single-producer/single-consumer lane pair
//!   ([`queue`]) per shard.  Blocking calls round-trip one request; the
//!   pipelined [`submit`](ShardRouter::submit)/[`collect`](ShardRouter::collect)
//!   pair keeps a window in flight per shard and sheds with [`Overloaded`]
//!   (never blocks) when a lane fills.
//! * **A hot-key read cache** ([`cache`]): a small per-router direct-mapped
//!   cache validated by per-shard mutation counters, so the top of the
//!   Zipf curve never crosses a lane at all.
//! * **Request batching** ([`Request::MGet`]/[`Request::MPut`]): batches
//!   are regrouped by destination shard, shipped as one sub-batch per shard
//!   (all fanned out before any reply is awaited, so shards execute
//!   concurrently), and served with one latency sample and one stats pass
//!   per shard touched, instead of per key.
//! * **A compact wire codec** ([`codec`]): varint-based request/response
//!   framing with strict, allocation-capped decoding.
//! * **Namespaces** ([`Namespace`]): 16-bit tenant prefixes packed into the
//!   high key bits, keeping each tenant's keys contiguous in the ordered
//!   shards (a tenant scan is one window).
//! * **Observability** ([`ServiceStats`] + [`obs`]): per-shard and
//!   per-namespace counters (ops, hit rate) plus fixed-bucket power-of-two
//!   histograms for p50/p99 latency and batch sizes, all registered as pull
//!   sources in the service's [`obs::Registry`] — one [`Request::Stats`]
//!   scrape renders the whole stack (op counters, sampled per-stage
//!   pipeline latency, per-shard EBR reclamation lag) as Prometheus-style
//!   text exposition.  Building `obs` with its `compile-out` feature
//!   removes every recording site — no external crates either way.
//!
//! # Example
//!
//! ```
//! use kvserve::{KvService, Namespace, Request, Response};
//!
//! // Four elim-abtree shards, stats for up to 2 tenants.
//! let service = KvService::new(4, 2, |_| {
//!     let tree: abtree::ElimABTree = abtree::ElimABTree::new();
//!     Box::new(tree)
//! });
//!
//! // One router per worker thread.
//! let mut router = service.router();
//! let tenant = Namespace::new(1);
//! assert_eq!(router.put(tenant.prefixed(7), 700), None);
//! assert_eq!(
//!     router.execute(&Request::Get { key: tenant.prefixed(7) }),
//!     Response::Value(Some(700)),
//! );
//!
//! // Batches amortize dispatch and bookkeeping across keys.
//! let keys: Vec<u64> = (0..8).map(|k| tenant.prefixed(k)).collect();
//! let mut values = Vec::new();
//! router.mget(&keys, &mut values);
//! assert_eq!(values[7], Some(700));
//!
//! // One Stats request scrapes every registered metric as text.
//! let Response::Stats(text) = router.execute(&Request::Stats) else {
//!     unreachable!()
//! };
//! assert!(text.contains("kv_shard_version"));
//! drop(router);
//! assert!(!obs::ENABLED || service.stats().namespace(1).hits() >= 2);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod namespace;
pub mod queue;
pub mod request;
pub mod service;
pub mod stats;
mod worker;

pub use cache::ReadCache;
pub use codec::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch, CodecError,
};
pub use namespace::{Namespace, LOCAL_KEY_BITS, MAX_LOCAL_KEY};
pub use queue::{Consumer, Producer, PushError};
pub use request::{Request, Response};
pub use service::{KvService, Overloaded, ShardRouter, ShardStartupError, ShardStore, LANE_CAPACITY};
pub use stats::{Histogram, OpCounters, ServiceStats};
