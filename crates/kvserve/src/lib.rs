//! `kvserve`: an embedded, sharded, batched key-value service layer over
//! the engine's per-thread [`abtree::MapHandle`] sessions.
//!
//! The reproduction's trees absorb high-contention update traffic; this
//! crate grows them toward the front half of a real serving system.  It
//! adds the pieces a data structure does not have but a service needs:
//!
//! * **Sharding** ([`KvService`]): `S` independent engine instances behind
//!   a multiplicative-hash router.  Each shard can be any structure —
//!   concrete trees, or the benchmark registry's `Box<dyn Benchable>` trait
//!   objects (the [`ShardStore`] bound is blanket-implemented for every
//!   `ConcurrentMap + KeySum` type).
//! * **Per-worker routing sessions** ([`ShardRouter`]): one engine session
//!   per shard, opened once and pinned to the worker, so serving a request
//!   costs a local epoch pin — never a collector registration.
//! * **Request batching** ([`Request::MGet`]/[`Request::MPut`]): batches
//!   are regrouped by destination shard and served with one virtual
//!   dispatch, one latency sample and one stats pass per shard touched,
//!   instead of per key.
//! * **A compact wire codec** ([`codec`]): varint-based request/response
//!   framing with strict, allocation-capped decoding.
//! * **Namespaces** ([`Namespace`]): 16-bit tenant prefixes packed into the
//!   high key bits, keeping each tenant's keys contiguous in the ordered
//!   shards (a tenant scan is one window).
//! * **Observability** ([`ServiceStats`]): per-shard and per-namespace
//!   counters (ops, hit rate) plus fixed-bucket power-of-two histograms for
//!   p50/p99 latency and batch sizes — no external crates.
//!
//! # Example
//!
//! ```
//! use kvserve::{KvService, Namespace, Request, Response};
//!
//! // Four elim-abtree shards, stats for up to 2 tenants.
//! let service = KvService::new(4, 2, |_| {
//!     let tree: abtree::ElimABTree = abtree::ElimABTree::new();
//!     Box::new(tree)
//! });
//!
//! // One router per worker thread.
//! let mut router = service.router();
//! let tenant = Namespace::new(1);
//! assert_eq!(router.put(tenant.prefixed(7), 700), None);
//! assert_eq!(
//!     router.execute(&Request::Get { key: tenant.prefixed(7) }),
//!     Response::Value(Some(700)),
//! );
//!
//! // Batches amortize dispatch and bookkeeping across keys.
//! let keys: Vec<u64> = (0..8).map(|k| tenant.prefixed(k)).collect();
//! let mut values = Vec::new();
//! router.mget(&keys, &mut values);
//! assert_eq!(values[7], Some(700));
//! drop(router);
//! assert!(service.stats().namespace(1).hits() >= 2);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod namespace;
pub mod request;
pub mod service;
pub mod stats;

pub use codec::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch, CodecError,
};
pub use namespace::{Namespace, LOCAL_KEY_BITS, MAX_LOCAL_KEY};
pub use request::{Request, Response};
pub use service::{KvService, ShardRouter, ShardStore};
pub use stats::{Histogram, OpCounters, ServiceStats};
