//! Service-level invariants, headlined by the cross-shard key-sum check:
//! after any amount of concurrent batched traffic, the sum of keys stored
//! across all shards must equal the net sum of keys the workers observed
//! themselves inserting minus deleting — the paper's §6 checksum validation
//! lifted from one structure to the sharded service.

use std::sync::Arc;

use abtree::ElimABTree;
use kvserve::{KvService, Namespace, Request, Response};
use rand::prelude::*;

fn elim_service(shards: usize, namespaces: usize) -> KvService {
    KvService::new(shards, namespaces, |_| {
        let tree: ElimABTree = ElimABTree::new();
        Box::new(tree)
    })
}

/// Concurrent batched `MPut`/`Delete` traffic from several routers must
/// leave the service with a key sum equal to the net of what the workers
/// saw succeed.  Like the repository's other concurrency tests, it needs
/// real parallelism to stress cross-shard routing and skips on single-core
/// machines (the sequential oracle test below covers the semantics there).
#[test]
fn cross_shard_key_sum_survives_concurrent_batched_updates() {
    let parallelism = abtree::par::test_parallelism();
    if parallelism < 2 {
        eprintln!(
            "skipping cross-shard concurrency test: needs >1 hardware thread \
             (or AB_FORCE_PARALLEL=1)"
        );
        return;
    }
    let threads = parallelism.clamp(2, 8);
    let service = Arc::new(elim_service(4, 1));
    let key_space = 10_000u64;
    let mut net: i128 = 0;

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let service = Arc::clone(&service);
            workers.push(scope.spawn(move || {
                let mut router = service.router();
                let mut rng = StdRng::seed_from_u64(0xD15C ^ t);
                let mut pairs = Vec::new();
                let mut results = Vec::new();
                let mut net = 0i128;
                for _ in 0..400 {
                    // One MPut batch...
                    pairs.clear();
                    for _ in 0..16 {
                        let k = rng.gen_range(0..key_space);
                        pairs.push((k, k));
                    }
                    router.mput(&pairs, &mut results);
                    for (&(k, _), prev) in pairs.iter().zip(&results) {
                        if prev.is_none() {
                            net += k as i128;
                        }
                    }
                    // ... then a burst of deletes over the same key space.
                    for _ in 0..8 {
                        let k = rng.gen_range(0..key_space);
                        if router.delete(k).is_some() {
                            net -= k as i128;
                        }
                    }
                }
                net
            }));
        }
        for worker in workers {
            net += worker.join().expect("worker panicked");
        }
    });

    assert_eq!(
        service.key_sum() as i128,
        net,
        "cross-shard key sum diverged from the workers' net"
    );
    // The hash router must have spread the traffic over every shard.
    let per_shard = service.shard_key_sums();
    assert_eq!(per_shard.len(), 4);
    assert_eq!(per_shard.iter().sum::<u128>(), service.key_sum());
    for (shard, counters) in service.stats().shards().iter().enumerate() {
        assert!(
            counters.mputs() > 0,
            "shard {shard} served no multi-put sub-batches"
        );
    }
}

/// A sequential oracle check: the service must behave exactly like a
/// `BTreeMap` under a long random request stream, including scans and
/// namespaced keys, regardless of how keys are spread over shards.
#[test]
fn service_matches_sequential_oracle() {
    use std::collections::BTreeMap;
    for &shards in &[1usize, 3, 8] {
        let service = elim_service(shards, 4);
        let mut router = service.router();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(0x0_5EED ^ shards as u64);
        let mut scan_out = Vec::new();
        for _ in 0..3_000 {
            let tenant = Namespace::new(rng.gen_range(0..4u16));
            let key = tenant.prefixed(rng.gen_range(0..500u64));
            match rng.gen_range(0..5u32) {
                0 => {
                    let value = rng.gen::<u32>() as u64;
                    let expected = oracle.get(&key).copied();
                    if expected.is_none() {
                        oracle.insert(key, value);
                    }
                    assert_eq!(router.put(key, value), expected);
                }
                1 => {
                    assert_eq!(router.delete(key), oracle.remove(&key));
                }
                2 => {
                    assert_eq!(router.get(key), oracle.get(&key).copied());
                }
                3 => {
                    let (lo, hi) = tenant.key_range();
                    router.scan(lo, hi - lo + 1, &mut scan_out);
                    let expected: Vec<(u64, u64)> =
                        oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(scan_out, expected, "tenant scan ({shards} shards)");
                }
                _ => {
                    let keys: Vec<u64> = (0..8)
                        .map(|_| tenant.prefixed(rng.gen_range(0..500u64)))
                        .collect();
                    let mut values = Vec::new();
                    router.mget(&keys, &mut values);
                    let expected: Vec<Option<u64>> =
                        keys.iter().map(|k| oracle.get(k).copied()).collect();
                    assert_eq!(values, expected);
                }
            }
        }
        drop(router);
        let oracle_sum: u128 = oracle.keys().map(|&k| k as u128).sum();
        assert_eq!(service.key_sum(), oracle_sum);
    }
}

/// End-to-end wire path: encode a batch, decode it, execute it, encode the
/// responses, decode them — what the in-process server example does over a
/// channel.
#[test]
fn wire_round_trip_through_execution() {
    let service = elim_service(2, 4);
    let mut router = service.router();
    let tenant = Namespace::new(3);
    let requests = vec![
        Request::MPut {
            pairs: (0..10).map(|k| (tenant.prefixed(k), k * 11)).collect(),
        },
        Request::Get {
            key: tenant.prefixed(4),
        },
        Request::Scan {
            lo: tenant.key_range().0,
            len: 6,
        },
        Request::Delete {
            key: tenant.prefixed(4),
        },
        Request::MGet {
            keys: vec![tenant.prefixed(4), tenant.prefixed(5)],
        },
    ];

    let mut wire = Vec::new();
    kvserve::encode_batch(&requests, &mut wire);
    let decoded = kvserve::decode_batch(&wire).unwrap();
    assert_eq!(decoded, requests);

    let mut responses = Vec::new();
    router.execute_batch(&decoded, &mut responses);
    let mut response_wire = Vec::new();
    kvserve::encode_response_batch(&responses, &mut response_wire);
    let returned = kvserve::decode_response_batch(&response_wire).unwrap();

    assert_eq!(returned[1], Response::Value(Some(44)));
    match &returned[2] {
        Response::Entries(entries) => {
            assert_eq!(entries.len(), 6);
            assert_eq!(entries[0], (tenant.prefixed(0), 0));
        }
        other => panic!("expected entries, got {other:?}"),
    }
    assert_eq!(returned[3], Response::Value(Some(44)));
    assert_eq!(returned[4], Response::Values(vec![None, Some(55)]));

    // Stats saw the traffic: the batch histograms are populated and the
    // tenant's namespace row billed the keys.
    if !obs::ENABLED {
        return; // counters are compiled out
    }
    let stats = service.stats();
    assert!(stats.batch_size.count() >= 2);
    assert!(stats.batch_size.p50().expect("batches were recorded") >= 2);
    assert_eq!(stats.namespace(3).mputs(), 10);
}
