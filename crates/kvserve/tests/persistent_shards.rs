//! The service layer is storage-agnostic: its shard factory accepts any
//! `ConcurrentMap + KeySum`, including the *durable* trees.  This test
//! builds a `KvService` whose shards are `pabtree::POccABTree` instances
//! and checks that (a) the full request surface works unchanged over
//! persistent shards, (b) the shards really issue persist traffic (flush
//! and fence counters move under the default count-only persist mode), and
//! (c) a quiescent `pabtree::recover` pass over each shard is clean.

use kvserve::{KvService, Namespace, ShardStore};
use pabtree::POccABTree;
use std::sync::Arc;

/// A service over durable p-OCC-ABtree shards.  The factory keeps its own
/// handles to the trees so the test can run recovery on them afterwards —
/// exactly how an embedding application would retain shard ownership for
/// restart.
fn persistent_service(shards: usize) -> (KvService, Vec<Arc<POccABTree>>) {
    let trees: Vec<Arc<POccABTree>> = (0..shards).map(|_| Arc::new(POccABTree::new())).collect();
    let factory_trees = trees.clone();
    let service = KvService::new(shards, 1, move |shard| {
        let tree: Box<dyn ShardStore> = Box::new(abtree::SharedMap(Arc::clone(&factory_trees[shard])));
        tree
    });
    (service, trees)
}

#[test]
fn kvservice_over_durable_shards_persists_and_recovers() {
    let (service, trees) = persistent_service(4);
    abpmem::reset_stats();

    let ns = Namespace::new(0);
    let mut router = service.router();
    let mut expected_sum = 0i128;
    for key in 1..=600u64 {
        let packed = ns.prefixed(key);
        assert_eq!(router.put(packed, key * 7), None);
        expected_sum += packed as i128;
    }
    for key in (1..=600u64).step_by(3) {
        let packed = ns.prefixed(key);
        assert_eq!(router.delete(packed), Some(key * 7));
        expected_sum -= packed as i128;
    }
    for key in 1..=600u64 {
        let packed = ns.prefixed(key);
        let expect = if key % 3 == 1 { None } else { Some(key * 7) };
        assert_eq!(router.get(packed), expect, "key {key}");
    }
    assert_eq!(service.key_sum() as i128, expected_sum);

    // The shards are genuinely durable: the writes above must have issued
    // cache-line flushes and store fences (counted, not executed, under
    // the default CountOnly mode).
    let stats = abpmem::stats();
    assert!(stats.flushes > 0, "durable shards issued no flushes");
    assert!(stats.fences > 0, "durable shards issued no fences");

    // Quiescent recovery over every shard finds a consistent tree holding
    // exactly the keys the service reports.
    drop(router);
    let recovered_keys: u64 = trees.iter().map(|tree| pabtree::recover(tree.as_ref()).keys).sum();
    assert_eq!(recovered_keys, 600 - 200);
    for tree in &trees {
        tree.check_invariants().expect("recovered shard invariants");
    }
}
