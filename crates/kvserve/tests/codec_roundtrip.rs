//! Randomized codec properties, in the repository's seeded-workload style
//! (the offline build cannot use the `proptest` crate, so the same
//! properties run over 64 seeded pseudo-random cases and every failure
//! message carries the seed for deterministic replay):
//!
//! 1. encode → decode is the identity for any request/response batch;
//! 2. decoding any strict prefix of a valid frame fails (no silent
//!    truncation);
//! 3. decoding a valid frame with trailing bytes fails.

use kvserve::codec::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch,
};
use kvserve::{CodecError, Request, Response};
use rand::prelude::*;

const CASES: u64 = 64;

fn random_key(rng: &mut StdRng) -> u64 {
    // Mix small (1-byte varint) and arbitrary keys to cover both encoder
    // paths; clamp below the reserved EMPTY_KEY sentinel, which the codec
    // rejects in key positions.
    if rng.gen_range(0..2u32) == 0 {
        rng.gen_range(0..128u64)
    } else {
        rng.gen::<u64>().min(u64::MAX - 1)
    }
}

fn random_requests(rng: &mut StdRng) -> Vec<Request> {
    let len = rng.gen_range(0..40usize);
    (0..len)
        .map(|_| match rng.gen_range(0..6u32) {
            0 => Request::Get { key: random_key(rng) },
            1 => Request::Put {
                key: random_key(rng),
                value: rng.gen(),
            },
            2 => Request::Delete { key: random_key(rng) },
            3 => Request::Scan {
                lo: random_key(rng),
                len: rng.gen_range(0..1_000),
            },
            4 => Request::MGet {
                keys: (0..rng.gen_range(0..20usize))
                    .map(|_| random_key(rng))
                    .collect(),
            },
            _ => Request::MPut {
                pairs: (0..rng.gen_range(0..20usize))
                    .map(|_| (random_key(rng), rng.gen()))
                    .collect(),
            },
        })
        .collect()
}

fn random_responses(rng: &mut StdRng) -> Vec<Response> {
    let len = rng.gen_range(0..40usize);
    (0..len)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => Response::Value(rng.gen_range(0..2u32).eq(&1).then(|| rng.gen())),
            1 => Response::Values(
                (0..rng.gen_range(0..20usize))
                    .map(|_| rng.gen_range(0..2u32).eq(&1).then(|| rng.gen()))
                    .collect(),
            ),
            _ => Response::Entries(
                (0..rng.gen_range(0..20usize))
                    .map(|_| (random_key(rng), rng.gen()))
                    .collect(),
            ),
        })
        .collect()
}

#[test]
fn request_batches_round_trip() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DEC ^ seed);
        let requests = random_requests(&mut rng);
        encode_batch(&requests, &mut wire);
        let decoded = decode_batch(&wire).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(decoded, requests, "seed {seed}");
    }
}

#[test]
fn response_batches_round_trip() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E5F ^ seed);
        let responses = random_responses(&mut rng);
        encode_response_batch(&responses, &mut wire);
        let decoded =
            decode_response_batch(&wire).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(decoded, responses, "seed {seed}");
    }
}

#[test]
fn truncated_frames_never_decode() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7A11 ^ seed);
        let requests = random_requests(&mut rng);
        if requests.is_empty() {
            continue; // the empty batch's frame has no strict prefix but "".
        }
        encode_batch(&requests, &mut wire);
        // Check a sample of cut points (all of them for short frames).
        let step = (wire.len() / 16).max(1);
        for cut in (0..wire.len()).step_by(step) {
            assert!(
                decode_batch(&wire[..cut]).is_err(),
                "seed {seed}: prefix of {cut}/{} bytes decoded",
                wire.len()
            );
        }
    }
}

#[test]
fn trailing_bytes_never_decode() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7341 ^ seed);
        let requests = random_requests(&mut rng);
        encode_batch(&requests, &mut wire);
        wire.push(rng.gen_range(0..=255u32) as u8);
        match decode_batch(&wire) {
            // One trailing byte can also extend a trailing varint or read
            // as a truncated extra request, so accept any error — what is
            // forbidden is a successful decode.
            Err(CodecError::TrailingBytes(1)) | Err(_) => {}
            Ok(decoded) => panic!("seed {seed}: decoded with trailing garbage: {decoded:?}"),
        }
    }
}
