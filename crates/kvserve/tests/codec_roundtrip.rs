//! Randomized codec properties, in the repository's seeded-workload style
//! (the offline build cannot use the `proptest` crate, so the same
//! properties run over 64 seeded pseudo-random cases and every failure
//! message carries the seed for deterministic replay):
//!
//! 1. encode → decode is the identity for any request/response batch;
//! 2. decoding any strict prefix of a valid frame fails (no silent
//!    truncation);
//! 3. decoding a valid frame with trailing bytes fails.

use kvserve::codec::{
    decode_batch, decode_response_batch, encode_batch, encode_response_batch,
};
use kvserve::{CodecError, Request, Response};
use rand::prelude::*;

const CASES: u64 = 64;

fn random_key(rng: &mut StdRng) -> u64 {
    // Mix small (1-byte varint) and arbitrary keys to cover both encoder
    // paths; clamp below the reserved EMPTY_KEY sentinel, which the codec
    // rejects in key positions.
    if rng.gen_range(0..2u32) == 0 {
        rng.gen_range(0..128u64)
    } else {
        rng.gen::<u64>().min(u64::MAX - 1)
    }
}

fn random_requests(rng: &mut StdRng) -> Vec<Request> {
    let len = rng.gen_range(0..40usize);
    (0..len)
        .map(|_| match rng.gen_range(0..6u32) {
            0 => Request::Get { key: random_key(rng) },
            1 => Request::Put {
                key: random_key(rng),
                value: rng.gen(),
            },
            2 => Request::Delete { key: random_key(rng) },
            3 => Request::Scan {
                lo: random_key(rng),
                len: rng.gen_range(0..1_000),
            },
            4 => Request::MGet {
                keys: (0..rng.gen_range(0..20usize))
                    .map(|_| random_key(rng))
                    .collect(),
            },
            _ => Request::MPut {
                pairs: (0..rng.gen_range(0..20usize))
                    .map(|_| (random_key(rng), rng.gen()))
                    .collect(),
            },
        })
        .collect()
}

fn random_responses(rng: &mut StdRng) -> Vec<Response> {
    let len = rng.gen_range(0..40usize);
    (0..len)
        .map(|_| match rng.gen_range(0..3u32) {
            0 => Response::Value(rng.gen_range(0..2u32).eq(&1).then(|| rng.gen())),
            1 => Response::Values(
                (0..rng.gen_range(0..20usize))
                    .map(|_| rng.gen_range(0..2u32).eq(&1).then(|| rng.gen()))
                    .collect(),
            ),
            _ => Response::Entries(
                (0..rng.gen_range(0..20usize))
                    .map(|_| (random_key(rng), rng.gen()))
                    .collect(),
            ),
        })
        .collect()
}

#[test]
fn request_batches_round_trip() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0DEC ^ seed);
        let requests = random_requests(&mut rng);
        encode_batch(&requests, &mut wire);
        let decoded = decode_batch(&wire).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(decoded, requests, "seed {seed}");
    }
}

#[test]
fn response_batches_round_trip() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5E5F ^ seed);
        let responses = random_responses(&mut rng);
        encode_response_batch(&responses, &mut wire);
        let decoded =
            decode_response_batch(&wire).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(decoded, responses, "seed {seed}");
    }
}

#[test]
fn truncated_frames_never_decode() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7A11 ^ seed);
        let requests = random_requests(&mut rng);
        if requests.is_empty() {
            continue; // the empty batch's frame has no strict prefix but "".
        }
        encode_batch(&requests, &mut wire);
        // Check a sample of cut points (all of them for short frames).
        let step = (wire.len() / 16).max(1);
        for cut in (0..wire.len()).step_by(step) {
            assert!(
                decode_batch(&wire[..cut]).is_err(),
                "seed {seed}: prefix of {cut}/{} bytes decoded",
                wire.len()
            );
        }
    }
}

#[test]
fn trailing_bytes_never_decode() {
    let mut wire = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7341 ^ seed);
        let requests = random_requests(&mut rng);
        encode_batch(&requests, &mut wire);
        wire.push(rng.gen_range(0..=255u32) as u8);
        match decode_batch(&wire) {
            // One trailing byte can also extend a trailing varint or read
            // as a truncated extra request, so accept any error — what is
            // forbidden is a successful decode.
            Err(CodecError::TrailingBytes(1)) | Err(_) => {}
            Ok(decoded) => panic!("seed {seed}: decoded with trailing garbage: {decoded:?}"),
        }
    }
}

/// One frame containing all six request kinds — the densest shape the wire
/// sees — used by the exhaustive error-path tests below.
fn every_kind_frame() -> (Vec<Request>, Vec<u8>) {
    let requests = vec![
        Request::Get { key: 7 },
        Request::Put { key: 300, value: u64::MAX },
        Request::Delete { key: 0 },
        Request::Scan { lo: 1 << 40, len: 100 },
        Request::MGet { keys: vec![1, 128, 1 << 50] },
        Request::MPut { pairs: vec![(5, 50), (1 << 33, 60)] },
    ];
    let mut wire = Vec::new();
    encode_batch(&requests, &mut wire);
    (requests, wire)
}

/// Truncation at *every* byte offset of a multi-request frame must fail —
/// not just the sampled cut points of the randomized test above.  Every cut
/// lands either inside a varint, after a tag, inside a batch, or before the
/// declared count is satisfied; all of them are `Truncated` (the only error
/// a pure prefix can produce, since every prefix of valid data is valid
/// until the input runs out).
#[test]
fn every_byte_offset_of_a_multi_request_frame_truncates() {
    let (requests, wire) = every_kind_frame();
    assert!(requests.len() >= 6);
    for cut in 0..wire.len() {
        assert_eq!(
            decode_batch(&wire[..cut]),
            Err(CodecError::Truncated),
            "cut at {cut}/{} bytes",
            wire.len()
        );
    }
    // The untruncated frame still round-trips.
    assert_eq!(decode_batch(&wire).unwrap(), requests);
}

/// Oversized length prefixes must be rejected up front in every position
/// that carries one: the batch count, a multi-get key count, a multi-put
/// pair count, and a scan window length.
#[test]
fn oversized_length_prefixes_are_rejected_everywhere() {
    use kvserve::codec::{write_varint, MAX_DECODED_LEN};
    let hostile = MAX_DECODED_LEN + 1;

    // Batch count.
    let mut frame = Vec::new();
    write_varint(&mut frame, hostile);
    assert_eq!(decode_batch(&frame), Err(CodecError::TooLong(hostile)));

    // MGet key count (tag 0x05).
    let mut frame = Vec::new();
    write_varint(&mut frame, 1);
    frame.push(0x05);
    write_varint(&mut frame, hostile);
    assert_eq!(decode_batch(&frame), Err(CodecError::TooLong(hostile)));

    // MPut pair count (tag 0x06).
    let mut frame = Vec::new();
    write_varint(&mut frame, 1);
    frame.push(0x06);
    write_varint(&mut frame, hostile);
    assert_eq!(decode_batch(&frame), Err(CodecError::TooLong(hostile)));

    // Scan window length (tag 0x04): bounds the work a shard does *and* the
    // size of the Entries response, so it shares the cap.
    let mut frame = Vec::new();
    write_varint(&mut frame, 1);
    frame.push(0x04);
    write_varint(&mut frame, 3); // lo
    write_varint(&mut frame, hostile);
    assert_eq!(decode_batch(&frame), Err(CodecError::TooLong(hostile)));

    // Response-side Values / Entries counts.
    for tag in [0x82u8, 0x83] {
        let mut frame = Vec::new();
        write_varint(&mut frame, 1);
        frame.push(tag);
        write_varint(&mut frame, hostile);
        assert_eq!(
            decode_response_batch(&frame),
            Err(CodecError::TooLong(hostile)),
            "response tag 0x{tag:02x}"
        );
    }

    // At the cap itself the prefix is accepted (and then truncates, since
    // no elements follow) — the cap is inclusive.
    let mut frame = Vec::new();
    write_varint(&mut frame, 1);
    frame.push(0x05);
    write_varint(&mut frame, kvserve::codec::MAX_DECODED_LEN);
    assert_eq!(decode_batch(&frame), Err(CodecError::Truncated));
}

/// The reserved `EMPTY_KEY` sentinel must be rejected in *every* key
/// position a request can carry, not only `Get` (which the unit tests
/// cover): `Put`, `Delete`, a `Scan`'s window start, and inside `MGet` /
/// `MPut` batches — including after valid leading keys.
#[test]
fn reserved_key_is_rejected_in_every_key_position() {
    use kvserve::codec::write_varint;
    let sentinel = u64::MAX;

    let frame_with = |build: &dyn Fn(&mut Vec<u8>)| {
        let mut frame = Vec::new();
        write_varint(&mut frame, 1);
        build(&mut frame);
        frame
    };

    let cases: Vec<(&str, Vec<u8>)> = vec![
        ("Put", frame_with(&|f| {
            f.push(0x02);
            write_varint(f, sentinel);
            write_varint(f, 1);
        })),
        ("Delete", frame_with(&|f| {
            f.push(0x03);
            write_varint(f, sentinel);
        })),
        ("Scan lo", frame_with(&|f| {
            f.push(0x04);
            write_varint(f, sentinel);
            write_varint(f, 10);
        })),
        ("MGet key after valid keys", frame_with(&|f| {
            f.push(0x05);
            write_varint(f, 3);
            write_varint(f, 1);
            write_varint(f, 2);
            write_varint(f, sentinel);
        })),
        ("MPut pair key", frame_with(&|f| {
            f.push(0x06);
            write_varint(f, 2);
            write_varint(f, 1);
            write_varint(f, 10);
            write_varint(f, sentinel);
            write_varint(f, 20);
        })),
    ];
    for (position, frame) in cases {
        assert_eq!(
            decode_batch(&frame),
            Err(CodecError::ReservedKey),
            "{position}"
        );
    }

    // Values are *not* key positions: u64::MAX round-trips as a Put value
    // and inside responses.
    let ok = vec![Request::Put { key: 3, value: u64::MAX }];
    let mut wire = Vec::new();
    encode_batch(&ok, &mut wire);
    assert_eq!(decode_batch(&wire).unwrap(), ok);
}
