//! Test-and-test-and-set spinlock with exponential backoff.
//!
//! The paper (§7) notes that switching the per-node locks from
//! test-and-test-and-set spinlocks to MCS locks "significantly increased the
//! scalability of the OCC-ABtree".  This lock exists so the lock-type
//! ablation benchmark (`ablation_locks`) can reproduce that comparison: the
//! tree types are generic over [`crate::RawNodeLock`], and instantiating them
//! with [`TatasLock`] yields the spinlock variant.

use core::sync::atomic::{AtomicBool, Ordering};

use crate::backoff::Backoff;

/// A test-and-test-and-set spinlock.
///
/// # Examples
///
/// ```
/// use absync::TatasLock;
///
/// let lock = TatasLock::new();
/// {
///     let _guard = lock.lock_guard();
/// }
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug, Default)]
pub struct TatasLock {
    locked: AtomicBool,
}

impl TatasLock {
    /// Creates a new, unlocked spinlock.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
        }
    }

    /// Returns `true` if the lock is currently held (may be stale).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Acquire)
    }

    /// Acquires the lock, spinning with exponential backoff.
    pub fn lock(&self) {
        let mut backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: spin on a read before attempting the
            // read-modify-write, so waiting threads do not keep the line in
            // the modified state.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return;
            }
            backoff.wait();
        }
    }

    /// Attempts to acquire the lock without waiting.
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
    }

    /// Releases the lock.
    ///
    /// # Safety
    ///
    /// Must only be called by the thread that currently holds the lock.
    pub unsafe fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Acquires the lock and returns a guard that releases it on drop.
    pub fn lock_guard(&self) -> TatasGuard<'_> {
        self.lock();
        TatasGuard { lock: self }
    }

    /// Attempts to acquire the lock; returns a releasing guard on success.
    pub fn try_lock_guard(&self) -> Option<TatasGuard<'_>> {
        if self.try_lock() {
            Some(TatasGuard { lock: self })
        } else {
            None
        }
    }

    /// Runs `f` while holding the lock.
    pub fn with_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.lock_guard();
        f()
    }
}

/// RAII guard for [`TatasLock`].
#[derive(Debug)]
pub struct TatasGuard<'a> {
    lock: &'a TatasLock,
}

impl Drop for TatasGuard<'_> {
    fn drop(&mut self) {
        // SAFETY: the guard exists only while the lock is held by this thread.
        unsafe { self.lock.unlock() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_unlock() {
        let lock = TatasLock::new();
        assert!(!lock.is_locked());
        {
            let _g = lock.lock_guard();
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_behaviour() {
        let lock = TatasLock::new();
        let g = lock.lock_guard();
        assert!(!lock.try_lock());
        drop(g);
        assert!(lock.try_lock());
        unsafe { lock.unlock() };
    }

    #[test]
    fn mutual_exclusion_counter() {
        const THREADS: usize = 8;
        const ITERS: u64 = 20_000;
        let lock = Arc::new(TatasLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ITERS {
                    let _g = lock.lock_guard();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
    }

    #[test]
    fn with_lock_returns_value() {
        let lock = TatasLock::new();
        assert_eq!(lock.with_lock(|| "ok"), "ok");
    }
}
