//! MCS queue lock (Mellor-Crummey & Scott, 1991).
//!
//! The paper's trees lock individual nodes with MCS locks (§3.1): "In MCS
//! locks, threads waiting for the lock join a queue and spin on a local bit
//! (meaning they scale well across multiple NUMA nodes)."  The queue node on
//! which a waiter spins lives on the waiter's own stack, so contended
//! acquisitions do not bounce a shared cache line between cores.
//!
//! Two APIs are provided:
//!
//! * a safe, guard-based API ([`McsLock::lock_guard`] /
//!   [`McsLock::try_lock_guard`]) for general use, and
//! * a raw API ([`McsLock::lock_raw`] / [`McsLock::try_lock_raw`] /
//!   [`McsLock::unlock_raw`]) used by the tree implementations, which need to
//!   acquire up to four node locks with interleaved lifetimes during
//!   rebalancing (the paper's `fixTagged` / `fixUnderfull`).

use core::ptr;
use core::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use crate::backoff::Backoff;

/// Per-acquisition queue node for an [`McsLock`].
///
/// A queue node may be reused for any number of acquisitions, but it must not
/// be moved (or dropped) while it is enqueued, i.e. between a successful
/// `lock`/`try_lock` and the matching `unlock`.  The safe guard API enforces
/// this with a mutable borrow; the raw API documents it as a safety contract.
#[derive(Debug)]
#[repr(align(64))]
pub struct McsQueueNode {
    /// `true` while the owner of this node is waiting for its predecessor.
    locked: AtomicBool,
    /// Pointer to the successor's queue node, if any.
    next: AtomicPtr<McsQueueNode>,
}

impl Default for McsQueueNode {
    fn default() -> Self {
        Self::new()
    }
}

impl McsQueueNode {
    /// Creates a queue node ready for use with [`McsLock`].
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }
}

/// An MCS queue lock.
///
/// The lock word is a single pointer to the tail of the waiter queue; an
/// unlocked lock has a null tail.
///
/// # Examples
///
/// ```
/// use absync::{McsLock, McsQueueNode};
///
/// let lock = McsLock::new();
/// let mut qnode = McsQueueNode::new();
/// {
///     let _guard = lock.lock_guard(&mut qnode);
///     // critical section
/// }
/// assert!(!lock.is_locked());
/// ```
#[derive(Debug)]
pub struct McsLock {
    tail: AtomicPtr<McsQueueNode>,
}

impl Default for McsLock {
    fn default() -> Self {
        Self::new()
    }
}

// The lock hands out no references to its queue nodes; it is safe to share.
unsafe impl Send for McsLock {}
unsafe impl Sync for McsLock {}

impl McsLock {
    /// Creates a new, unlocked MCS lock.
    pub const fn new() -> Self {
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Returns `true` if some thread currently holds (or is queued for) the
    /// lock.  Only a heuristic: the answer may be stale by the time the
    /// caller observes it.
    pub fn is_locked(&self) -> bool {
        !self.tail.load(Ordering::Acquire).is_null()
    }

    /// Acquires the lock, enqueueing `qnode` and spinning locally until the
    /// predecessor hands the lock over.
    ///
    /// # Safety contract (not `unsafe`, but required for correctness)
    ///
    /// `qnode` must remain at a stable address and must not be reused until
    /// the matching [`unlock_raw`](Self::unlock_raw) returns.  Violations can
    /// lead to hangs or writes through dangling pointers; the tree code keeps
    /// queue nodes on the stack of the function that performs the paired
    /// lock/unlock, and the safe guard API enforces the contract with a
    /// borrow.
    pub fn lock_raw(&self, qnode: &mut McsQueueNode) {
        qnode.next.store(ptr::null_mut(), Ordering::Relaxed);
        qnode.locked.store(true, Ordering::Relaxed);
        let qptr: *mut McsQueueNode = qnode;
        let pred = self.tail.swap(qptr, Ordering::AcqRel);
        if !pred.is_null() {
            // SAFETY: `pred` was enqueued by another thread that, per the
            // safety contract above, keeps it alive until it unlocks; it
            // cannot unlock before observing us as its successor.
            unsafe {
                (*pred).next.store(qptr, Ordering::Release);
            }
            let mut backoff = Backoff::new();
            while qnode.locked.load(Ordering::Acquire) {
                backoff.wait();
            }
        }
    }

    /// Attempts to acquire the lock without waiting.  Returns `true` on
    /// success.  On failure the queue node was not enqueued and may be reused
    /// immediately.
    pub fn try_lock_raw(&self, qnode: &mut McsQueueNode) -> bool {
        qnode.next.store(ptr::null_mut(), Ordering::Relaxed);
        qnode.locked.store(false, Ordering::Relaxed);
        let qptr: *mut McsQueueNode = qnode;
        self.tail
            .compare_exchange(ptr::null_mut(), qptr, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Releases the lock previously acquired with the same `qnode`.
    ///
    /// # Safety
    ///
    /// `qnode` must be the queue node passed to the matching successful
    /// [`lock_raw`](Self::lock_raw) or [`try_lock_raw`](Self::try_lock_raw)
    /// call on this lock by the current thread, and the lock must still be
    /// held by that acquisition.
    pub unsafe fn unlock_raw(&self, qnode: &mut McsQueueNode) {
        let qptr: *mut McsQueueNode = qnode;
        let mut next = qnode.next.load(Ordering::Acquire);
        if next.is_null() {
            // No known successor: try to swing the tail back to null.
            if self
                .tail
                .compare_exchange(qptr, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            // A successor is in the middle of enqueueing itself; wait for it
            // to publish its node in our `next` field.
            let mut backoff = Backoff::new();
            loop {
                next = qnode.next.load(Ordering::Acquire);
                if !next.is_null() {
                    break;
                }
                backoff.wait();
            }
        }
        // SAFETY: the successor's queue node stays alive until it unlocks,
        // which it cannot do before we clear its `locked` flag here.
        unsafe {
            (*next).locked.store(false, Ordering::Release);
        }
    }

    /// Acquires the lock and returns a guard that releases it on drop.
    pub fn lock_guard<'a>(&'a self, qnode: &'a mut McsQueueNode) -> McsGuard<'a> {
        self.lock_raw(qnode);
        McsGuard { lock: self, qnode }
    }

    /// Attempts to acquire the lock; returns a releasing guard on success.
    pub fn try_lock_guard<'a>(&'a self, qnode: &'a mut McsQueueNode) -> Option<McsGuard<'a>> {
        if self.try_lock_raw(qnode) {
            Some(McsGuard { lock: self, qnode })
        } else {
            None
        }
    }

    /// Runs `f` while holding the lock, managing the queue node internally.
    pub fn with_lock<R>(&self, f: impl FnOnce() -> R) -> R {
        let mut qnode = McsQueueNode::new();
        let _guard = self.lock_guard(&mut qnode);
        f()
    }
}

/// RAII guard returned by [`McsLock::lock_guard`]; releases the lock on drop.
#[derive(Debug)]
pub struct McsGuard<'a> {
    lock: &'a McsLock,
    qnode: &'a mut McsQueueNode,
}

impl Drop for McsGuard<'_> {
    fn drop(&mut self) {
        // SAFETY: the guard was constructed from a successful acquisition
        // with exactly this queue node, and the borrow it holds prevented the
        // node from being moved or reused in the meantime.
        unsafe { self.lock.unlock_raw(self.qnode) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let lock = McsLock::new();
        assert!(!lock.is_locked());
        let mut q = McsQueueNode::new();
        {
            let _g = lock.lock_guard(&mut q);
            assert!(lock.is_locked());
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = McsLock::new();
        let mut q1 = McsQueueNode::new();
        let mut q2 = McsQueueNode::new();
        let g = lock.lock_guard(&mut q1);
        assert!(lock.try_lock_guard(&mut q2).is_none());
        drop(g);
        assert!(lock.try_lock_guard(&mut q2).is_some());
    }

    #[test]
    fn queue_node_is_reusable_after_unlock() {
        let lock = McsLock::new();
        let mut q = McsQueueNode::new();
        for _ in 0..100 {
            let _g = lock.lock_guard(&mut q);
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn with_lock_returns_value() {
        let lock = McsLock::new();
        let v = lock.with_lock(|| 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn mutual_exclusion_counter() {
        const THREADS: usize = 8;
        const ITERS: u64 = 20_000;
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut q = McsQueueNode::new();
                for _ in 0..ITERS {
                    let _g = lock.lock_guard(&mut q);
                    // Non-atomic-style read-modify-write under the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        assert!(!lock.is_locked());
    }

    #[test]
    fn fairness_queue_hand_off() {
        // Two threads alternately acquire; neither should starve (the test
        // simply checks both make progress to completion).
        let lock = Arc::new(McsLock::new());
        let done = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let mut q = McsQueueNode::new();
                for _ in 0..50_000 {
                    let _g = lock.lock_guard(&mut q);
                }
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }
}
