//! Sequence-version (even/odd) counters for optimistic reads.
//!
//! Every leaf in the paper's trees carries a version counter `ver`.  A writer
//! that holds the leaf's lock increments the version to an odd value before
//! modifying the leaf and increments it again (back to even) when done; the
//! second increment is the linearization point of simple inserts and
//! successful deletes (§3.3.4).  Readers use the classic double-collect
//! protocol (`searchLeaf`, Fig. 2): read the version, read the leaf contents,
//! re-read the version, and retry if the version was odd or changed.
//!
//! [`SeqVersion`] packages that protocol.  The tree code embeds the raw
//! `AtomicU64` directly in its node type for layout control, but uses the
//! same operations; this type is also used by the baselines and is tested
//! independently here.

use core::sync::atomic::{AtomicU64, Ordering};

/// A sequence version: even while stable, odd while being modified.
#[derive(Debug, Default)]
pub struct SeqVersion {
    ver: AtomicU64,
}

impl SeqVersion {
    /// Creates a new version counter starting at zero (stable).
    pub const fn new() -> Self {
        Self {
            ver: AtomicU64::new(0),
        }
    }

    /// Creates a version counter starting at `v`.
    pub const fn with_value(v: u64) -> Self {
        Self {
            ver: AtomicU64::new(v),
        }
    }

    /// Reads the current version value (acquire).
    #[inline]
    pub fn read(&self) -> u64 {
        self.ver.load(Ordering::Acquire)
    }

    /// Returns `true` if `v` denotes a stable (not-being-modified) state.
    #[inline]
    pub fn is_stable(v: u64) -> bool {
        v.is_multiple_of(2)
    }

    /// Begins a write: bumps the version to an odd value.  Must only be
    /// called while holding the lock that serializes writers.
    ///
    /// Returns the new (odd) version value, which the Elim-ABtree stores in
    /// the published [`ElimRecord`](https://doi.org/10.1145/3503221.3508441)
    /// (`rec.ver` is "always an odd value", §4.1).
    #[inline]
    pub fn begin_write(&self) -> u64 {
        let v = self.ver.load(Ordering::Relaxed);
        debug_assert!(Self::is_stable(v), "begin_write on an in-progress version");
        self.ver.store(v + 1, Ordering::Release);
        v + 1
    }

    /// Ends a write: bumps the version back to an even value.  This is the
    /// linearization point of simple inserts and successful deletes.
    #[inline]
    pub fn end_write(&self) -> u64 {
        let v = self.ver.load(Ordering::Relaxed);
        debug_assert!(!Self::is_stable(v), "end_write without begin_write");
        self.ver.store(v + 1, Ordering::Release);
        v + 1
    }

    /// Performs a validated optimistic read: repeatedly calls `read_body`
    /// inside the double-collect window until a consistent snapshot is
    /// obtained, then returns it along with the (even) version at which it
    /// was taken.
    pub fn optimistic_read<R>(&self, mut read_body: impl FnMut() -> R) -> (R, u64) {
        loop {
            let v1 = self.read();
            if !Self::is_stable(v1) {
                core::hint::spin_loop();
                continue;
            }
            let out = read_body();
            let v2 = self.read();
            if v1 == v2 {
                return (out, v1);
            }
        }
    }

    /// Performs a single (non-retrying) optimistic read attempt.  Returns
    /// `Some((value, version))` if the snapshot was consistent, `None`
    /// otherwise.  The Elim-ABtree's update path uses a single attempt: an
    /// inconsistent read is itself evidence of contention and triggers the
    /// elimination path (§4.1).
    pub fn try_optimistic_read<R>(&self, read_body: impl FnOnce() -> R) -> Option<(R, u64)> {
        let v1 = self.read();
        if !Self::is_stable(v1) {
            return None;
        }
        let out = read_body();
        let v2 = self.read();
        if v1 == v2 {
            Some((out, v1))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;
    use std::sync::Arc;

    #[test]
    fn stability_predicate() {
        assert!(SeqVersion::is_stable(0));
        assert!(!SeqVersion::is_stable(1));
        assert!(SeqVersion::is_stable(2));
        assert!(!SeqVersion::is_stable(u64::MAX));
    }

    #[test]
    fn write_protocol_round_trip() {
        let v = SeqVersion::new();
        assert_eq!(v.read(), 0);
        let odd = v.begin_write();
        assert_eq!(odd, 1);
        assert!(!SeqVersion::is_stable(v.read()));
        let even = v.end_write();
        assert_eq!(even, 2);
        assert!(SeqVersion::is_stable(v.read()));
    }

    #[test]
    fn try_optimistic_read_detects_in_progress_write() {
        let v = SeqVersion::new();
        v.begin_write();
        assert!(v.try_optimistic_read(|| 1).is_none());
        v.end_write();
        assert_eq!(v.try_optimistic_read(|| 1), Some((1, 2)));
    }

    #[test]
    fn optimistic_read_sees_consistent_pairs() {
        // A writer repeatedly updates two values "atomically" under the
        // version protocol; readers must never observe a torn pair.
        let ver = Arc::new(SeqVersion::new());
        let a = Arc::new(StdAtomicU64::new(0));
        let b = Arc::new(StdAtomicU64::new(0));
        let stop = Arc::new(StdAtomicU64::new(0));

        let writer = {
            let (ver, a, b, stop) = (
                Arc::clone(&ver),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            std::thread::spawn(move || {
                for i in 1..50_000u64 {
                    ver.begin_write();
                    a.store(i, Ordering::Relaxed);
                    b.store(i.wrapping_mul(3), Ordering::Relaxed);
                    ver.end_write();
                }
                stop.store(1, Ordering::Release);
            })
        };

        let mut readers = Vec::new();
        for _ in 0..3 {
            let (ver, a, b, stop) = (
                Arc::clone(&ver),
                Arc::clone(&a),
                Arc::clone(&b),
                Arc::clone(&stop),
            );
            readers.push(std::thread::spawn(move || {
                // Check the stop flag only after at least one read, so a
                // writer that finishes before this thread is scheduled
                // cannot make `checked` end up zero.
                let mut checked = 0u64;
                loop {
                    let ((x, y), _v) = ver.optimistic_read(|| {
                        (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed))
                    });
                    assert_eq!(y, x.wrapping_mul(3), "torn read observed");
                    checked += 1;
                    if stop.load(Ordering::Acquire) != 0 {
                        break;
                    }
                }
                checked
            }));
        }

        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }
}
