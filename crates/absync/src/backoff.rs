//! Bounded exponential backoff for contended retry loops.
//!
//! Both trees in the paper retry optimistic reads and lock acquisitions when
//! they observe concurrent modifications.  Uncontrolled spinning on the same
//! cache line generates coherence traffic that slows down the very writer we
//! are waiting for, so retry loops back off exponentially (spin-wait first,
//! then yield to the OS scheduler once the wait becomes long).

use core::sync::atomic::{compiler_fence, Ordering};

/// Initial number of `spin_loop` hints issued by [`Backoff::spin`].
const INITIAL_SPINS: u32 = 4;
/// Spin counts double until they reach this bound, after which
/// [`Backoff::is_long`] reports `true` and callers may prefer to yield.
const MAX_SPINS: u32 = 1 << 10;

/// Exponential backoff helper.
///
/// # Examples
///
/// ```
/// use absync::Backoff;
/// use std::sync::atomic::{AtomicBool, Ordering};
///
/// let flag = AtomicBool::new(true);
/// let mut backoff = Backoff::new();
/// while !flag.load(Ordering::Acquire) {
///     backoff.wait();
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    spins: u32,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff with the minimum spin count.
    pub const fn new() -> Self {
        Self {
            spins: INITIAL_SPINS,
        }
    }

    /// Resets the backoff to its initial (shortest) wait.
    pub fn reset(&mut self) {
        self.spins = INITIAL_SPINS;
    }

    /// Spins for the current wait length and doubles the next wait, up to a
    /// bound.  Use this in loops that wait for another *running* thread (for
    /// example, waiting for a leaf's version to become even).
    pub fn spin(&mut self) {
        for _ in 0..self.spins {
            core::hint::spin_loop();
        }
        // Prevent the compiler from collapsing the loop entirely.
        compiler_fence(Ordering::SeqCst);
        if self.spins < MAX_SPINS {
            self.spins = self.spins.saturating_mul(2);
        }
    }

    /// Spins, and yields to the scheduler once the backoff has saturated.
    /// Use this in loops that may wait for a descheduled thread.
    pub fn wait(&mut self) {
        if self.is_long() {
            std::thread::yield_now();
        } else {
            self.spin();
        }
    }

    /// Returns `true` once the backoff has reached its maximum spin count,
    /// which is a hint that the caller should consider yielding or taking a
    /// slower fallback path.
    pub fn is_long(&self) -> bool {
        self.spins >= MAX_SPINS
    }

    /// Current spin count (exposed for tests and diagnostics).
    pub fn spins(&self) -> u32 {
        self.spins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_saturates() {
        let mut b = Backoff::new();
        let first = b.spins();
        b.spin();
        assert!(b.spins() > first);
        for _ in 0..32 {
            b.spin();
        }
        assert!(b.is_long());
        assert_eq!(b.spins(), MAX_SPINS);
    }

    #[test]
    fn backoff_resets() {
        let mut b = Backoff::new();
        for _ in 0..16 {
            b.spin();
        }
        b.reset();
        assert_eq!(b.spins(), INITIAL_SPINS);
        assert!(!b.is_long());
    }

    #[test]
    fn wait_does_not_panic_when_long() {
        let mut b = Backoff::new();
        for _ in 0..64 {
            b.wait();
        }
        assert!(b.is_long());
    }
}
