//! The [`RawNodeLock`] abstraction over per-node locks.
//!
//! The trees in this repository lock at the granularity of a single tree
//! node.  The paper's final design uses MCS locks, but §7 reports that the
//! choice of lock materially affects scalability, so the tree types are
//! generic over the lock implementation.  A `RawNodeLock` is a lock whose
//! acquisition may need a small amount of caller-provided stack context (the
//! MCS queue node); lock implementations that need no context use `()` as
//! their token.

use crate::mcs::{McsLock, McsQueueNode};
use crate::tatas::TatasLock;

/// A per-node lock usable by the tree implementations.
///
/// The token is a caller-owned piece of stack context threaded through
/// `lock`/`try_lock`/`unlock`.  For the MCS lock it is the queue node the
/// acquiring thread spins on; for context-free locks it is `()`.
pub trait RawNodeLock: Default + Send + Sync + 'static {
    /// Stack context required for one acquisition of this lock.
    type Token: Default;

    /// Acquires the lock, blocking (spinning) until it is available.
    fn lock(&self, token: &mut Self::Token);

    /// Attempts to acquire the lock without waiting; returns `true` on
    /// success.  On failure the token may be reused immediately.
    fn try_lock(&self, token: &mut Self::Token) -> bool;

    /// Releases the lock.
    ///
    /// # Safety
    ///
    /// `token` must be the token passed to the matching successful
    /// [`lock`](Self::lock) or [`try_lock`](Self::try_lock) call on this lock
    /// by the current thread, the token must not have been moved since, and
    /// the lock must still be held by that acquisition.
    unsafe fn unlock(&self, token: &mut Self::Token);

    /// Heuristic: is the lock currently held?
    fn is_locked(&self) -> bool;

    /// Human-readable name of the lock algorithm (used in benchmark output).
    fn algorithm_name() -> &'static str;
}

impl RawNodeLock for McsLock {
    type Token = McsQueueNode;

    #[inline]
    fn lock(&self, token: &mut Self::Token) {
        self.lock_raw(token);
    }

    #[inline]
    fn try_lock(&self, token: &mut Self::Token) -> bool {
        self.try_lock_raw(token)
    }

    #[inline]
    unsafe fn unlock(&self, token: &mut Self::Token) {
        // SAFETY: forwarded contract.
        unsafe { self.unlock_raw(token) }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        McsLock::is_locked(self)
    }

    fn algorithm_name() -> &'static str {
        "mcs"
    }
}

impl RawNodeLock for TatasLock {
    type Token = ();

    #[inline]
    fn lock(&self, _token: &mut Self::Token) {
        TatasLock::lock(self);
    }

    #[inline]
    fn try_lock(&self, _token: &mut Self::Token) -> bool {
        TatasLock::try_lock(self)
    }

    #[inline]
    unsafe fn unlock(&self, _token: &mut Self::Token) {
        // SAFETY: forwarded contract.
        unsafe { TatasLock::unlock(self) }
    }

    #[inline]
    fn is_locked(&self) -> bool {
        TatasLock::is_locked(self)
    }

    fn algorithm_name() -> &'static str {
        "tatas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn exercise<L: RawNodeLock>() {
        let lock = Arc::new(L::default());
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut token = L::Token::default();
                for _ in 0..10_000 {
                    lock.lock(&mut token);
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    unsafe { lock.unlock(&mut token) };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 40_000);
        assert!(!lock.is_locked());
    }

    #[test]
    fn generic_mutual_exclusion_mcs() {
        exercise::<McsLock>();
    }

    #[test]
    fn generic_mutual_exclusion_tatas() {
        exercise::<TatasLock>();
    }

    #[test]
    fn try_lock_generic() {
        fn run<L: RawNodeLock>() {
            let lock = L::default();
            let mut t1 = L::Token::default();
            let mut t2 = L::Token::default();
            assert!(lock.try_lock(&mut t1));
            assert!(!lock.try_lock(&mut t2));
            unsafe { lock.unlock(&mut t1) };
            assert!(lock.try_lock(&mut t2));
            unsafe { lock.unlock(&mut t2) };
        }
        run::<McsLock>();
        run::<TatasLock>();
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(McsLock::algorithm_name(), "mcs");
        assert_eq!(TatasLock::algorithm_name(), "tatas");
    }
}
