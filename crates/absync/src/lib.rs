//! Synchronization primitives for the Elim-ABtree reproduction.
//!
//! The paper ("Elimination (a,b)-trees with fast, durable updates", PPoPP'22,
//! §3.1) protects every tree node with an MCS queue lock and uses a per-leaf
//! *version* counter (even = stable, odd = being modified) so that searches
//! can read leaves optimistically without acquiring any lock.  This crate
//! provides those two building blocks plus a simple test-and-test-and-set
//! spinlock (used by the lock-type ablation benchmark, cf. the paper's §7
//! remark that MCS locks "significantly increased the scalability of the
//! OCC-ABtree") and an exponential-backoff helper.
//!
//! # Modules
//!
//! * [`mcs`] — MCS queue lock with stack-allocated queue nodes.
//! * [`tatas`] — test-and-test-and-set spinlock with exponential backoff.
//! * [`seqver`] — helpers for the even/odd sequence-version protocol used by
//!   optimistic leaf reads (the paper's `searchLeaf` double-collect).
//! * [`backoff`] — bounded exponential backoff for retry loops.
//! * [`raw`] — the [`raw::RawNodeLock`] abstraction that lets the trees be
//!   generic over the per-node lock implementation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backoff;
pub mod mcs;
pub mod raw;
pub mod seqver;
pub mod tatas;

pub use backoff::Backoff;
pub use mcs::{McsLock, McsQueueNode};
pub use raw::RawNodeLock;
pub use seqver::SeqVersion;
pub use tatas::TatasLock;

/// A cache line is assumed to be 64 bytes on the x86-64 machines the paper
/// evaluates on (and on which this reproduction runs).
pub const CACHE_LINE_BYTES: usize = 64;

/// Pads and aligns a value to a cache line to avoid false sharing.
///
/// This is a tiny local equivalent of `crossbeam_utils::CachePadded`; it is
/// defined here so that the lock primitives have no external dependencies.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned container.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper and returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> core::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> core::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_aligned() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= CACHE_LINE_BYTES);
        assert!(core::mem::size_of::<CachePadded<u8>>() >= CACHE_LINE_BYTES);
    }

    #[test]
    fn cache_padded_deref() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }
}
