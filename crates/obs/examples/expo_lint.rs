//! Lint a text exposition from stdin with the crate's own parser: exit 0
//! and print a one-line summary if every row parses, exit 1 with the
//! parse error otherwise.  CI pipes `netserve_server --stats-dump` through
//! this, so a scrape that drifts from the format the `expo` parser (and
//! any Prometheus-compatible collector) accepts fails the build.
//!
//! Usage: `some-scrape-producer | cargo run -p obs --example expo_lint`

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut text = String::new();
    if let Err(e) = std::io::stdin().read_to_string(&mut text) {
        eprintln!("expo_lint: reading stdin: {e}");
        return ExitCode::FAILURE;
    }
    match obs::expo::parse(&text) {
        Ok(samples) => {
            let names: std::collections::BTreeSet<&str> =
                samples.iter().map(|s| s.name.as_str()).collect();
            println!(
                "expo_lint: ok — {} rows across {} metric names",
                samples.len(),
                names.len()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("expo_lint: {e}");
            ExitCode::FAILURE
        }
    }
}
