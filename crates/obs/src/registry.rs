//! The pull-based metric registry.
//!
//! Subsystems keep recording into their own relaxed atomics exactly as
//! before; what they additionally do is *register a source* — a closure
//! that, when a scrape happens, reads those atomics and appends
//! [`Sample`]s.  The registry owns nothing hot: it is a mutex-protected
//! list of sources that is only walked at snapshot time, so a scrape
//! costs the scraper, never the serving threads.
//!
//! Sources are identified by the [`SourceId`] returned at registration,
//! so a subsystem with a shorter lifetime than the registry (e.g. a
//! network front end over a long-lived service) can
//! [`unregister`](Registry::unregister) on shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::hist::{Histogram, HistogramSnapshot};

/// The value of one metric sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically non-decreasing count (ops served, bytes, errors).
    Counter(u64),
    /// A point-in-time level that can move both ways (open connections,
    /// unreclaimed garbage, epoch age).
    Gauge(u64),
    /// A full distribution snapshot (latencies, batch sizes).  Boxed so
    /// the common counter/gauge samples stay one word wide; the
    /// allocation happens on the scrape path only, never while recording.
    Histogram(Box<HistogramSnapshot>),
}

/// One named, labeled metric reading produced by a source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Metric family name (static by design: the metric namespace is a
    /// fixed, documented table, not a dynamic string space).
    pub name: &'static str,
    /// Label key/value pairs (`[("shard", "3"), ("op", "get")]`).
    pub labels: Vec<(&'static str, String)>,
    /// The reading.
    pub value: MetricValue,
}

impl Sample {
    /// A counter sample with no labels (add some with [`with`](Self::with)).
    pub fn counter(name: &'static str, value: u64) -> Self {
        Self {
            name,
            labels: Vec::new(),
            value: MetricValue::Counter(value),
        }
    }

    /// A gauge sample with no labels.
    pub fn gauge(name: &'static str, value: u64) -> Self {
        Self {
            name,
            labels: Vec::new(),
            value: MetricValue::Gauge(value),
        }
    }

    /// A histogram sample with no labels, snapshotting `hist` now.
    pub fn histogram(name: &'static str, hist: &Histogram) -> Self {
        Self {
            name,
            labels: Vec::new(),
            value: MetricValue::Histogram(Box::new(hist.snapshot())),
        }
    }

    /// Appends one label (builder-style).
    pub fn with(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        self.labels.push((key, value.to_string()));
        self
    }
}

/// Handle to a registered source, for [`Registry::unregister`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceId(u64);

type Source = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// The pull-based registry (see the module docs).
#[derive(Default)]
pub struct Registry {
    sources: Mutex<Vec<(u64, Source)>>,
    next_id: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `source`, which will be called on every
    /// [`snapshot`](Self::snapshot) to append its current samples.
    /// Sources run in registration order, so exposition output is stable.
    pub fn register(
        &self,
        source: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static,
    ) -> SourceId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sources
            .lock()
            .expect("metric source list poisoned")
            .push((id, Box::new(source)));
        SourceId(id)
    }

    /// Removes a previously registered source (a no-op if already gone).
    pub fn unregister(&self, id: SourceId) {
        self.sources
            .lock()
            .expect("metric source list poisoned")
            .retain(|(sid, _)| *sid != id.0);
    }

    /// Number of registered sources.
    pub fn source_count(&self) -> usize {
        self.sources.lock().expect("metric source list poisoned").len()
    }

    /// Pulls every source once, returning all current samples.
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let sources = self.sources.lock().expect("metric source list poisoned");
        for (_, source) in sources.iter() {
            source(&mut out);
        }
        out
    }

    /// Pulls every source and renders the Prometheus-style text
    /// exposition ([`crate::expo::render`]) — the payload of a wire
    /// stats scrape.
    pub fn render(&self) -> String {
        crate::expo::render(&self.snapshot())
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("sources", &self.source_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn sources_pull_live_values() {
        let registry = Registry::new();
        let counter = Arc::new(AtomicU64::new(0));
        let source_counter = Arc::clone(&counter);
        registry.register(move |out| {
            out.push(Sample::counter(
                "test_ops_total",
                source_counter.load(Ordering::Relaxed),
            ));
        });
        counter.store(7, Ordering::Relaxed);
        let samples = registry.snapshot();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].value, MetricValue::Counter(7));
        counter.store(9, Ordering::Relaxed);
        assert_eq!(
            registry.snapshot()[0].value,
            MetricValue::Counter(9),
            "snapshots pull, they do not cache"
        );
    }

    #[test]
    fn unregister_removes_exactly_one_source() {
        let registry = Registry::new();
        let a = registry.register(|out| out.push(Sample::gauge("a", 1)));
        let _b = registry.register(|out| out.push(Sample::gauge("b", 2)));
        assert_eq!(registry.source_count(), 2);
        registry.unregister(a);
        assert_eq!(registry.source_count(), 1);
        let samples = registry.snapshot();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].name, "b");
        registry.unregister(a); // idempotent
        assert_eq!(registry.source_count(), 1);
    }

    #[test]
    fn labels_build_in_order() {
        let s = Sample::counter("x", 1).with("shard", 3).with("op", "get");
        assert_eq!(
            s.labels,
            vec![("shard", "3".to_string()), ("op", "get".to_string())]
        );
        assert!(format!("{:?}", Registry::new()).contains("sources"));
    }
}
