//! `obs`: the unified telemetry spine of the reproduction's service stack.
//!
//! Every layer of the stack (tree → EBR collector → shard owners → TCP
//! reactors → durable shards) records telemetry; before this crate each
//! layer invented its own counters with no way to scrape them from a
//! running server.  `obs` is the one std-only home for all of it:
//!
//! * **[`Histogram`]** — the fixed-bucket power-of-two histogram
//!   (previously `kvserve::stats::Histogram`, moved here and re-exported
//!   from kvserve): wait-free relaxed-atomic recording, `None`-aware
//!   quantiles, quiescent merge/reset.
//! * **[`Registry`]** — a pull-based metric registry.  Subsystems register
//!   *sources* (closures that append [`Sample`]s); a scrape walks the
//!   sources and renders a Prometheus-style text exposition
//!   ([`expo::render`]).  Recording stays lock-free in each subsystem's
//!   own relaxed atomics — the registry only pulls at snapshot time, so
//!   it adds nothing to any hot path.
//! * **[`StageTrace`]** — per-request stage tracing: each serving thread
//!   records `(stage, end, duration)` events into its own fixed-capacity
//!   [seqlock-readout ring](trace::StageRing) plus shared per-stage
//!   latency histograms, so queueing vs apply vs fence time is separable
//!   (`recv → decode → enqueue → dequeue → apply → fence → ack → write`).
//! * **[`Stamp`]** — the hot-path timestamp.  On x86-64 it is a calibrated
//!   `rdtsc` reading (~an order of magnitude cheaper than
//!   `Instant::now`), elsewhere a monotonic-clock read; either way it is
//!   a plain `u64` of nanoseconds since a process-local epoch.
//!
//! # The `compile-out` feature
//!
//! Telemetry claims about overhead are only honest if the "no telemetry"
//! baseline actually contains none.  With the `compile-out` feature
//! enabled, [`ENABLED`] is `false`, [`Stamp`] is a ZST whose `now()` does
//! not read any clock, [`Histogram::record`] returns immediately, and
//! stage recording is a no-op — dependent crates gate their counter
//! updates on [`ENABLED`] (a `const`, so the branch folds away).
//! `bench_obs` measures the same workload under both builds and records
//! the difference as `BENCH_obs.json`.

#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod registry;
pub mod time;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use registry::{MetricValue, Registry, Sample, SourceId};
pub use time::Stamp;
pub use trace::{Stage, StageEvent, StageRecorder, StageTrace, STAGE_COUNT};

/// Whether telemetry recording is compiled in.  `false` only when the
/// `compile-out` feature is enabled (the measured-overhead baseline).
/// This is a `const`, so `if obs::ENABLED { ... }` costs nothing either
/// way.
pub const ENABLED: bool = cfg!(not(feature = "compile-out"));
