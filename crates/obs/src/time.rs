//! Hot-path timestamps: [`Stamp`], a nanosecond reading cheap enough to
//! take several times per request.
//!
//! `Instant::now` is a vDSO `clock_gettime` (~20-25ns); a stage-traced
//! point request takes five or six timestamps, which alone would eat most
//! of a <3% telemetry budget on a microsecond-scale operation.  On x86-64
//! a [`Stamp`] therefore reads the invariant TSC directly (`rdtsc`,
//! ~6-10ns) and converts ticks to nanoseconds with a ratio calibrated
//! once per process against the monotonic clock — the standard
//! benchmark-harness technique (SetBench and friends time operations the
//! same way).  On other architectures it falls back to `Instant`.
//!
//! Either way a stamp is a plain `u64` of nanoseconds since a
//! process-local epoch, so durations are single subtractions and two
//! stamps from different threads are comparable (the TSC is
//! socket-invariant on every CPU this targets; a skewed reading would
//! skew latency *values*, never corrupt memory or counters).
//!
//! With the `compile-out` feature, [`Stamp`] is a ZST: `now()` reads no
//! clock and every duration is 0 — the honest "no telemetry" baseline.

#[cfg(not(feature = "compile-out"))]
use std::sync::OnceLock;
#[cfg(not(feature = "compile-out"))]
use std::time::Instant;

/// Sentinel nanosecond value marking an untraced stamp (see
/// [`Stamp::NONE`]).  Out of band: a process would need ~584 years of
/// uptime to reach it.
#[cfg(not(feature = "compile-out"))]
const UNTRACED: u64 = u64::MAX;

/// A cheap monotonic timestamp (nanoseconds since a process-local epoch).
///
/// Obtain one with [`Stamp::now`]; measure with
/// [`elapsed_ns`](Stamp::elapsed_ns) or [`since`](Stamp::since).  The
/// sentinel [`Stamp::NONE`] marks a request that is *not* being stage
/// traced (sampled tracing carries it through queues for free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamp {
    #[cfg(not(feature = "compile-out"))]
    ns: u64,
}

impl Stamp {
    /// The untraced sentinel: [`is_traced`](Stamp::is_traced) is `false`,
    /// and durations measured against it are meaningless (callers must
    /// check first).
    pub const NONE: Stamp = Stamp {
        #[cfg(not(feature = "compile-out"))]
        ns: UNTRACED,
    };

    /// The current time.  Free (no clock read) when telemetry is compiled
    /// out.
    #[inline]
    pub fn now() -> Stamp {
        Stamp {
            #[cfg(not(feature = "compile-out"))]
            ns: now_ns(),
        }
    }

    /// Whether this stamp carries a real time (i.e. is not
    /// [`Stamp::NONE`]).  Always `false` when telemetry is compiled out.
    #[inline]
    pub fn is_traced(self) -> bool {
        #[cfg(not(feature = "compile-out"))]
        {
            self.ns != UNTRACED
        }
        #[cfg(feature = "compile-out")]
        {
            false
        }
    }

    /// Nanoseconds since the process-local epoch (0 when compiled out).
    #[inline]
    pub fn ns_since_epoch(self) -> u64 {
        #[cfg(not(feature = "compile-out"))]
        {
            self.ns
        }
        #[cfg(feature = "compile-out")]
        {
            0
        }
    }

    /// Nanoseconds from `earlier` to `self`, saturating at 0.
    #[inline]
    pub fn since(self, earlier: Stamp) -> u64 {
        #[cfg(not(feature = "compile-out"))]
        {
            self.ns.saturating_sub(earlier.ns)
        }
        #[cfg(feature = "compile-out")]
        {
            let _ = earlier;
            0
        }
    }

    /// Nanoseconds from `self` to now (reads the clock once).
    #[inline]
    pub fn elapsed_ns(self) -> u64 {
        Stamp::now().since(self)
    }
}

/// Nanoseconds since the process-local epoch — the raw reading behind
/// [`Stamp::now`].
#[cfg(all(target_arch = "x86_64", not(feature = "compile-out")))]
#[inline]
fn now_ns() -> u64 {
    // (base_ticks, nanoseconds per tick), calibrated once.
    static CALIBRATION: OnceLock<(u64, f64)> = OnceLock::new();
    let &(base, ns_per_tick) = CALIBRATION.get_or_init(|| {
        // Measure the TSC rate against the monotonic clock over a ~2ms
        // spin: a 3GHz TSC accumulates ~6M ticks, so clock-read overhead
        // (~tens of ns on each edge) perturbs the ratio by well under
        // 0.01%.  A one-time ~2ms cost on first use, during setup in
        // every real caller.
        let t0 = rdtsc();
        let i0 = Instant::now();
        let mut elapsed = i0.elapsed();
        while elapsed < std::time::Duration::from_millis(2) {
            std::hint::spin_loop();
            elapsed = i0.elapsed();
        }
        let ticks = rdtsc().wrapping_sub(t0).max(1);
        // Clamped as a backstop against a broken/virtualized TSC: worst
        // case, latency *values* are scaled, never negative or wrapped.
        let ns_per_tick = (elapsed.as_nanos() as f64 / ticks as f64).clamp(0.001, 100.0);
        (t0, ns_per_tick)
    });
    // The min keeps a garbage TSC reading from colliding with the
    // UNTRACED sentinel (float-to-int casts saturate at u64::MAX).
    ((rdtsc().wrapping_sub(base) as f64 * ns_per_tick) as u64).min(UNTRACED - 1)
}

#[cfg(all(target_arch = "x86_64", not(feature = "compile-out")))]
#[inline]
fn rdtsc() -> u64 {
    // SAFETY: RDTSC is unprivileged and baseline on x86-64; it reads the
    // timestamp counter and touches no memory.
    unsafe { std::arch::x86_64::_rdtsc() }
}

#[cfg(all(not(target_arch = "x86_64"), not(feature = "compile-out")))]
#[inline]
fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128 - 1) as u64
}

#[cfg(all(test, not(feature = "compile-out")))]
mod tests {
    use super::*;

    #[test]
    fn stamps_advance_and_roughly_track_the_wall_clock() {
        let start = Stamp::now();
        let wall = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let measured = start.elapsed_ns();
        let actual = wall.elapsed().as_nanos() as u64;
        // The calibrated ratio must put a 20ms sleep within 2x of the
        // monotonic clock's reading (in practice it is within ~0.1%; the
        // slack absorbs scheduler noise and virtualized-TSC weirdness).
        assert!(
            measured > actual / 2 && measured < actual * 2,
            "measured {measured}ns vs monotonic {actual}ns"
        );
    }

    #[test]
    fn since_saturates_and_orders() {
        let a = Stamp::now();
        let b = Stamp::now();
        assert_eq!(a.since(b), 0, "earlier.since(later) saturates to 0");
        assert!(b.since(a) < 1_000_000_000, "back-to-back stamps are close");
    }

    #[test]
    fn the_none_sentinel_is_untraced() {
        assert!(!Stamp::NONE.is_traced());
        assert!(Stamp::now().is_traced());
    }

    /// Manual probe for the per-read cost of [`Stamp::now`] on this
    /// machine (virtualized TSCs vary wildly):
    /// `cargo test -p obs --release -- --ignored --nocapture stamp_cost`
    #[test]
    #[ignore = "timing probe, run manually in release mode"]
    fn stamp_cost_probe() {
        const READS: u64 = 10_000_000;
        let _ = Stamp::now(); // calibrate outside the measured region
        let wall = Instant::now();
        let mut acc = 0u64;
        for _ in 0..READS {
            acc = acc.wrapping_add(std::hint::black_box(Stamp::now()).ns_since_epoch());
        }
        let per_read = wall.elapsed().as_nanos() as f64 / READS as f64;
        println!("Stamp::now(): {per_read:.1} ns/read (acc {acc})");
    }
}
