//! The fixed-bucket power-of-two histogram.
//!
//! Everything here is lock-free (plain relaxed atomics) and allocation-free
//! on the record path, so services can update histograms inline without
//! perturbing the workload they measure.  The build environment is offline,
//! so this is a purpose-built fixed-bucket power-of-two histogram (the
//! shape HdrHistogram-style recorders degrade to at low resolution) rather
//! than an external crate: 64 buckets, bucket *i* holding values whose
//! highest set bit is *i*, i.e. `[2^i, 2^(i+1))`.  Quantiles are resolved
//! to the bucket upper bound, giving ~2x-resolution p50/p99 — ample for
//! distinguishing "100ns point get" from "10µs cross-shard scan".

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (one per possible highest set bit of a
/// `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket power-of-two histogram over `u64` samples.
///
/// `record` is wait-free (one relaxed fetch-add); quantile queries walk the
/// 64 buckets.  Used for latencies (nanoseconds) and batch sizes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index holding `value`: the position of its highest set bit
    /// (0 for values 0 and 1).
    #[inline]
    fn bucket_of(value: u64) -> usize {
        63 - (value | 1).leading_zeros() as usize
    }

    /// The *exclusive-ish* upper bound of bucket `i` (the largest value the
    /// bucket holds): `2^(i+1) - 1`, saturating to `u64::MAX` for the top
    /// bucket.
    #[inline]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }

    /// Records one sample.  A no-op when telemetry is compiled out.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::ENABLED {
            return;
        }
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A point-in-time copy of the bucket counts, for exposition and
    /// snapshot frames.  Racy-but-monotone under concurrent `record`s, same
    /// contract as [`count`](Self::count).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or `None` for an empty histogram.  Resolution is
    /// the bucket width, i.e. within 2x of the true quantile.
    ///
    /// An empty histogram has no quantiles: returning any in-band number
    /// (this function used to return 0, a value inside bucket 0) lets "no
    /// traffic" masquerade as "sub-nanosecond latency" in reports.  Samples
    /// that land in the top bucket resolve to `Some(u64::MAX)`, a *saturated*
    /// reading meaning "at least 2^63" — distinguishable from the empty case.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // The rank of the requested quantile, 1-based, clamped into range
        // (also forgiving of q outside [0, 1] and NaN, which clamp to the
        // extremes).
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(if i >= 63 { u64::MAX } else { (1 << (i + 1)) - 1 });
            }
        }
        // Unreachable when counts are stable; concurrent `record`s between
        // the `count` above and the walk can only increase `seen`.
        Some(u64::MAX)
    }

    /// Median, or `None` when no samples were recorded (see
    /// [`quantile`](Self::quantile) for resolution and saturation).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 99th percentile, or `None` when no samples were recorded (see
    /// [`quantile`](Self::quantile) for resolution and saturation).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Zeroes every bucket.  Quiescent only: concurrent `record`s may be
    /// lost or survive, so call it between phases (e.g. after prefill),
    /// never under traffic.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }

    /// Folds `other`'s samples into `self`, bucket by bucket (saturating).
    ///
    /// This is how per-shard-worker histograms are aggregated without any
    /// locking on the hot path: each shard owner records into its own
    /// histogram with relaxed adds, and a reporting thread merges the
    /// per-shard instances into a scratch histogram when asked.  The merge
    /// itself is a racy-but-monotone snapshot, same contract as
    /// [`count`](Self::count) under concurrent `record`s.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            let merged = (*mine.get_mut()).saturating_add(theirs.load(Ordering::Relaxed));
            *mine.get_mut() = merged;
        }
    }

    /// Arithmetic mean of the recorded samples, approximated by bucket
    /// midpoints; 0 for an empty histogram.
    pub fn approx_mean(&self) -> f64 {
        let mut total = 0u64;
        let mut weighted = 0f64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                let midpoint = if i == 0 { 1.0 } else { 1.5 * (1u64 << i) as f64 };
                weighted += n as f64 * midpoint;
                total += n;
            }
        }
        if total == 0 {
            0.0
        } else {
            weighted / total as f64
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets, detached from the
/// atomics — what snapshot frames and the exposition writer consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket *i* holds `[2^i, 2^(i+1))`).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Total number of samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

// The record path is compiled out under the `compile-out` feature, so
// these tests only hold in the default (telemetry-on) build.
#[cfg(all(test, not(feature = "compile-out")))]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        // 0 and 1 share bucket 0; 2 and 3 share bucket 1.
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 2);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 2);
        assert_eq!(h.buckets[63].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6, upper bound 127
        }
        h.record(1 << 20); // one outlier
        assert_eq!(h.p50(), Some(127));
        assert_eq!(h.p99(), Some(127));
        assert_eq!(h.quantile(1.0), Some((1 << 21) - 1));
        // True mean ~10.6k; the bucket-midpoint approximation may be off by
        // up to the 2x bucket width.
        let mean = h.approx_mean();
        assert!(mean > 90.0 && mean < 22_000.0, "mean = {mean}");
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), None, "q = {q}");
        }
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        // A single bucket-0 sample is `Some` — the empty sentinel must not
        // be confusable with a real (tiny) quantile.
        h.record(0);
        assert_eq!(h.p50(), Some(1));
        assert_ne!(h.p50(), None);
        // ... and reset returns the histogram to the no-quantiles state.
        h.reset();
        assert_eq!(h.p99(), None);
    }

    #[test]
    fn quantile_of_max_value_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.p50(), Some(u64::MAX), "saturated, not None");
        // Out-of-range and NaN quantiles clamp instead of panicking.
        assert_eq!(h.quantile(-3.0), Some(u64::MAX));
        assert_eq!(h.quantile(42.0), Some(u64::MAX));
        assert_eq!(h.quantile(f64::NAN), Some(u64::MAX));
    }

    #[test]
    fn merge_folds_buckets_and_preserves_quantiles() {
        let fast = Histogram::new();
        for _ in 0..90 {
            fast.record(100); // bucket 6, upper bound 127
        }
        let slow = Histogram::new();
        for _ in 0..10 {
            slow.record(1 << 20); // bucket 20
        }
        let mut merged = Histogram::new();
        merged.merge(&fast);
        merged.merge(&slow);
        assert_eq!(merged.count(), 100);
        // The merged distribution is exactly the union: p50 from the fast
        // source, p99 from the slow tail neither source had alone.
        assert_eq!(merged.p50(), Some(127));
        assert_eq!(merged.p99(), Some((1 << 21) - 1));
        assert_eq!(fast.p99(), Some(127), "sources are untouched");
        assert_eq!(slow.count(), 10);
    }

    #[test]
    fn merge_with_empty_respects_the_option_api() {
        // Merging empty histograms must not manufacture samples: the
        // no-quantiles `None` state from PR 5 has to survive.
        let mut merged = Histogram::new();
        merged.merge(&Histogram::new());
        assert_eq!(merged.count(), 0);
        assert_eq!(merged.p50(), None);
        assert_eq!(merged.p99(), None);
        // Empty + non-empty behaves like a copy.
        let source = Histogram::new();
        source.record(0);
        source.record(u64::MAX);
        merged.merge(&source);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.p50(), Some(1));
        assert_eq!(merged.quantile(1.0), Some(u64::MAX), "saturated top bucket");
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut merged = Histogram::new();
        merged.buckets[0].store(u64::MAX - 1, Ordering::Relaxed);
        let source = Histogram::new();
        source.record(0);
        source.record(1);
        merged.merge(&source);
        assert_eq!(merged.buckets[0].load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn snapshot_detaches_from_the_atomics() {
        let h = Histogram::new();
        h.record(100);
        h.record(100);
        let snap = h.snapshot();
        h.record(100);
        assert_eq!(snap.count(), 2, "a snapshot is a copy, not a view");
        assert_eq!(h.count(), 3);
        assert_eq!(snap.buckets[6], 2);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(Histogram::bucket_upper_bound(0), 1);
        assert_eq!(Histogram::bucket_upper_bound(6), 127);
        assert_eq!(Histogram::bucket_upper_bound(62), u64::MAX / 2);
        assert_eq!(Histogram::bucket_upper_bound(63), u64::MAX);
    }
}
