//! Per-request stage tracing: where does a request's time go?
//!
//! A request traverses the stack as a pipeline — received and decoded by a
//! reactor, enqueued onto a shard lane, dequeued by the shard owner,
//! applied to the tree, fenced to the durable log, acknowledged back
//! through the lane, and written to the socket.  Aggregate latency
//! histograms cannot say *which* of those stages ate a regression; this
//! module can, at a cost small enough to leave on.
//!
//! Two sinks, both fed by [`StageRecorder::record`]:
//!
//! * **Per-stage latency histograms** on the shared [`StageTrace`] — one
//!   [`Histogram`] per [`Stage`], recorded with a relaxed fetch-add.
//!   These are what the registry scrapes (`stage_latency_ns{stage=...}`).
//! * **A per-thread ring of recent events** ([`StageRing`]) — the last
//!   [`RING_CAPACITY`] `(stage, end, duration)` events each serving
//!   thread produced, readable by any thread without stopping the writer
//!   via a per-cell seqlock.  This is the flight recorder: a scrape of
//!   aggregate histograms tells you p99 moved, the rings tell you what
//!   the slow requests were doing just now.
//!
//! The writer path never blocks and never allocates: a ring write is two
//! relaxed stores between two sequence-number stores, and a histogram
//! update is one fetch-add.  Readers retry or skip cells being written.
//!
//! Tracing the full stage pipeline costs several [`Stamp`]s per request,
//! so hot paths use a *sampled* recorder
//! ([`StageTrace::sampled_recorder`]): 1-in-N requests carry a real start
//! stamp through the queues, the rest carry [`Stamp::NONE`] and skip
//! every downstream record at the cost of one predictable branch.

use std::cell::Cell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::Histogram;
use crate::registry::Sample;
use crate::time::Stamp;

/// Number of pipeline stages (the arms of [`Stage`]).
pub const STAGE_COUNT: usize = 8;

/// Events kept per serving thread in its [`StageRing`].
pub const RING_CAPACITY: usize = 256;

/// One stage of the request pipeline.  The discriminants are wire- and
/// ring-stable (`u8`), ordered as a request traverses the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Reactor: bytes read off the socket into the connection buffer.
    Recv = 0,
    /// Reactor: a complete frame decoded into a request.
    Decode = 1,
    /// Router: request pushed onto a shard lane (including owner wake).
    Enqueue = 2,
    /// Shard owner: time the job spent waiting in the lane.
    Dequeue = 3,
    /// Shard owner: the tree operation itself.
    Apply = 4,
    /// Durable shard: persistence fence covering the operation.
    Fence = 5,
    /// Router: reply wait, from apply completion to reply collection.
    Ack = 6,
    /// Reactor: response encoded and flushed toward the socket.
    Write = 7,
}

impl Stage {
    /// All stages, in pipeline order (index == discriminant).
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Recv,
        Stage::Decode,
        Stage::Enqueue,
        Stage::Dequeue,
        Stage::Apply,
        Stage::Fence,
        Stage::Ack,
        Stage::Write,
    ];

    /// The stage's metric-label name (lowercase, stable).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Recv => "recv",
            Stage::Decode => "decode",
            Stage::Enqueue => "enqueue",
            Stage::Dequeue => "dequeue",
            Stage::Apply => "apply",
            Stage::Fence => "fence",
            Stage::Ack => "ack",
            Stage::Write => "write",
        }
    }
}

/// One recorded stage event, as read back out of a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageEvent {
    /// Which stage completed.
    pub stage: Stage,
    /// When it completed (nanoseconds since the process-local epoch).
    pub end_ns: u64,
    /// How long it took, in nanoseconds.
    pub dur_ns: u64,
}

/// Durations are packed next to the stage tag in one word; anything
/// longer than ~2.3 years clamps.
const MAX_PACKED_DUR: u64 = (1 << 56) - 1;

/// A cell is `(seq, end_ns, meta)` where `meta = dur_ns << 8 | stage`.
/// `seq == 0` means never written; odd means a write is in progress.
struct RingCell {
    seq: AtomicU64,
    end_ns: AtomicU64,
    meta: AtomicU64,
}

/// A fixed-capacity ring of the most recent stage events from *one*
/// writer thread, readable concurrently by any number of threads.
///
/// Each cell is an independent seqlock: the writer bumps the cell's
/// sequence to odd, stores the payload, and bumps it to even; a reader
/// that observes an odd or changed sequence discards the cell.  There is
/// exactly one writer per ring (the [`StageRecorder`] is `!Sync`), so
/// writes never contend — the fences exist purely so readers can detect
/// torn cells.
pub struct StageRing {
    cells: Box<[RingCell]>,
    /// Next cell to write.  Only the owning recorder advances it; relaxed
    /// is fine because cell consistency comes from the per-cell seqlock.
    next: AtomicU64,
}

impl StageRing {
    fn new() -> Self {
        Self {
            cells: (0..RING_CAPACITY)
                .map(|_| RingCell {
                    seq: AtomicU64::new(0),
                    end_ns: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Writer side (single thread): publish one event, overwriting the
    /// oldest.
    fn push(&self, stage: Stage, end_ns: u64, dur_ns: u64) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) as usize % RING_CAPACITY;
        let cell = &self.cells[idx];
        let seq = cell.seq.load(Ordering::Relaxed);
        // Odd sequence = write in progress.  The Release fence orders the
        // odd-store before the payload stores for any reader that acquires
        // the final even sequence.
        cell.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        cell.end_ns.store(end_ns, Ordering::Relaxed);
        cell.meta
            .store((dur_ns.min(MAX_PACKED_DUR) << 8) | stage as u64, Ordering::Relaxed);
        cell.seq.store(seq + 2, Ordering::Release);
    }

    /// Reader side: every event currently consistent in the ring, oldest
    /// first is *not* guaranteed (cells are returned in slot order); sort
    /// by `end_ns` if order matters.  Cells mid-write after a few retries
    /// are skipped rather than blocking the writer.
    pub fn read(&self) -> Vec<StageEvent> {
        let mut out = Vec::with_capacity(RING_CAPACITY);
        'cells: for cell in self.cells.iter() {
            for _ in 0..8 {
                let s1 = cell.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    continue 'cells; // never written
                }
                if s1 % 2 == 1 {
                    std::hint::spin_loop();
                    continue; // write in progress, retry
                }
                let end_ns = cell.end_ns.load(Ordering::Relaxed);
                let meta = cell.meta.load(Ordering::Relaxed);
                // The Acquire fence orders the payload loads before the
                // re-check; if seq is unchanged, the payload is the one
                // this sequence number published.
                fence(Ordering::Acquire);
                let s2 = cell.seq.load(Ordering::Relaxed);
                if s1 == s2 {
                    let stage = Stage::ALL[(meta & 0xFF) as usize % STAGE_COUNT];
                    out.push(StageEvent {
                        stage,
                        end_ns,
                        dur_ns: meta >> 8,
                    });
                    continue 'cells;
                }
                // Torn read: the writer lapped us; retry.
            }
            // Still inconsistent after bounded retries (writer is lapping
            // this exact cell continuously): skip it, don't stall.
        }
        out
    }
}

/// The shared stage-tracing sink: per-stage latency histograms plus the
/// per-thread event rings (see the module docs).
pub struct StageTrace {
    hists: [Histogram; STAGE_COUNT],
    rings: Mutex<Vec<Arc<StageRing>>>,
}

impl Default for StageTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl StageTrace {
    /// An empty trace sink.
    pub fn new() -> Self {
        Self {
            hists: std::array::from_fn(|_| Histogram::new()),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// A recorder that records *every* traced request.  For frame-level
    /// stages (recv/decode/write) where one event covers a whole batch.
    pub fn recorder(self: &Arc<Self>) -> StageRecorder {
        self.sampled_recorder(0)
    }

    /// A recorder that samples: only 1 in `2^sample_shift` calls to
    /// [`StageRecorder::sample_start`] return a real stamp; the rest
    /// return [`Stamp::NONE`], which every downstream
    /// [`record`](StageRecorder::record) skips for the cost of a branch.
    /// `sample_shift == 0` means trace everything.
    pub fn sampled_recorder(self: &Arc<Self>, sample_shift: u32) -> StageRecorder {
        let ring = Arc::new(StageRing::new());
        if crate::ENABLED {
            self.rings
                .lock()
                .expect("stage ring list poisoned")
                .push(Arc::clone(&ring));
        }
        StageRecorder {
            trace: Arc::clone(self),
            ring,
            sample_mask: (1u32 << sample_shift.min(31)) - 1,
            tick: Cell::new(0),
        }
    }

    /// The latency histogram for one stage.
    pub fn histogram(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    /// Recent events across all recorders' rings, sorted oldest-first by
    /// completion time.  A diagnostic snapshot: events recorded while
    /// this runs may or may not appear.
    pub fn recent_events(&self) -> Vec<StageEvent> {
        let rings: Vec<Arc<StageRing>> = self
            .rings
            .lock()
            .expect("stage ring list poisoned")
            .clone();
        let mut events: Vec<StageEvent> = rings.iter().flat_map(|r| r.read()).collect();
        events.sort_by_key(|e| e.end_ns);
        events
    }

    /// Registry source: appends `stage_latency_ns{stage=...}` histogram
    /// samples, in pipeline order.
    pub fn collect(&self, out: &mut Vec<Sample>) {
        for stage in Stage::ALL {
            out.push(
                Sample::histogram("stage_latency_ns", self.histogram(stage))
                    .with("stage", stage.name()),
            );
        }
    }
}

impl std::fmt::Debug for StageTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageTrace")
            .field("rings", &self.rings.lock().map(|r| r.len()).unwrap_or(0))
            .finish()
    }
}

/// A per-thread handle for recording stage events (deliberately `!Sync`:
/// each serving thread gets its own, so its ring has a single writer).
pub struct StageRecorder {
    trace: Arc<StageTrace>,
    ring: Arc<StageRing>,
    sample_mask: u32,
    tick: Cell<u32>,
}

impl StageRecorder {
    /// Start-of-pipeline sampling decision: returns a real [`Stamp::now`]
    /// for the 1-in-N requests this recorder traces, [`Stamp::NONE`] for
    /// the rest.  Carry the result through the pipeline and pass it to
    /// [`record`](Self::record) at each stage boundary.
    #[inline]
    pub fn sample_start(&self) -> Stamp {
        if !crate::ENABLED {
            return Stamp::NONE;
        }
        let tick = self.tick.get().wrapping_add(1);
        self.tick.set(tick);
        if tick & self.sample_mask == 0 {
            Stamp::now()
        } else {
            Stamp::NONE
        }
    }

    /// Records that `stage` ran from `started` to now, returning the
    /// end stamp so consecutive stages chain with one clock read each.
    /// A branch-only no-op when `started` is [`Stamp::NONE`] (untraced
    /// request) or telemetry is compiled out — in both cases the returned
    /// stamp is `NONE` too, so the skip propagates down the pipeline.
    #[inline]
    pub fn record(&self, stage: Stage, started: Stamp) -> Stamp {
        if !started.is_traced() {
            return Stamp::NONE;
        }
        let now = Stamp::now();
        self.record_at(stage, started, now);
        now
    }

    /// Like [`record`](Self::record) with an already-taken end stamp, for
    /// call sites that need the same clock reading for something else
    /// (e.g. the ack stage and the end-to-end latency histogram).
    #[inline]
    pub fn record_at(&self, stage: Stage, started: Stamp, now: Stamp) {
        if !crate::ENABLED || !started.is_traced() {
            return;
        }
        let dur_ns = now.since(started);
        self.trace.hists[stage as usize].record(dur_ns);
        self.ring.push(stage, now.ns_since_epoch(), dur_ns);
    }
}

impl std::fmt::Debug for StageRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageRecorder")
            .field("sample_mask", &self.sample_mask)
            .finish()
    }
}

#[cfg(all(test, not(feature = "compile-out")))]
mod tests {
    use super::*;
    use crate::expo;

    #[test]
    fn recorded_stages_land_in_histograms_and_rings() {
        let trace = Arc::new(StageTrace::new());
        let rec = trace.recorder();
        let start = rec.sample_start();
        assert!(start.is_traced(), "unsampled recorder traces everything");
        let t1 = rec.record(Stage::Enqueue, start);
        let t2 = rec.record(Stage::Apply, t1);
        rec.record(Stage::Ack, t2);
        assert_eq!(trace.histogram(Stage::Enqueue).count(), 1);
        assert_eq!(trace.histogram(Stage::Apply).count(), 1);
        assert_eq!(trace.histogram(Stage::Ack).count(), 1);
        assert_eq!(trace.histogram(Stage::Fence).count(), 0);

        let events = trace.recent_events();
        assert_eq!(events.len(), 3);
        // Sorted by completion time, so pipeline order is recovered.
        assert_eq!(events[0].stage, Stage::Enqueue);
        assert_eq!(events[1].stage, Stage::Apply);
        assert_eq!(events[2].stage, Stage::Ack);
        assert!(events[0].end_ns <= events[1].end_ns);
    }

    #[test]
    fn untraced_stamps_record_nothing() {
        let trace = Arc::new(StageTrace::new());
        let rec = trace.recorder();
        let next = rec.record(Stage::Apply, Stamp::NONE);
        assert!(!next.is_traced(), "NONE propagates through the pipeline");
        rec.record_at(Stage::Ack, Stamp::NONE, Stamp::now());
        assert_eq!(trace.histogram(Stage::Apply).count(), 0);
        assert_eq!(trace.histogram(Stage::Ack).count(), 0);
        assert!(trace.recent_events().is_empty());
    }

    #[test]
    fn sampled_recorder_traces_one_in_n() {
        let trace = Arc::new(StageTrace::new());
        let rec = trace.sampled_recorder(3); // 1 in 8
        let traced = (0..64).filter(|_| rec.sample_start().is_traced()).count();
        assert_eq!(traced, 8);
    }

    #[test]
    fn ring_overwrites_oldest_and_reads_stay_consistent() {
        let trace = Arc::new(StageTrace::new());
        let rec = trace.recorder();
        for i in 0..(RING_CAPACITY + 10) {
            rec.ring.push(Stage::Apply, i as u64, i as u64);
        }
        let events = rec.ring.read();
        assert_eq!(events.len(), RING_CAPACITY, "ring is full, never larger");
        // The oldest RING_CAPACITY+10 events were overwritten; everything
        // left is from the most recent RING_CAPACITY pushes.
        assert!(events.iter().all(|e| e.end_ns >= 10));
        assert!(events.iter().all(|e| e.stage == Stage::Apply));
    }

    #[test]
    fn durations_clamp_into_the_packed_meta_word() {
        let trace = Arc::new(StageTrace::new());
        let rec = trace.recorder();
        rec.ring.push(Stage::Write, 42, u64::MAX);
        let events = rec.ring.read();
        assert_eq!(events[0].dur_ns, MAX_PACKED_DUR);
        assert_eq!(events[0].stage, Stage::Write);
        assert_eq!(events[0].end_ns, 42);
    }

    #[test]
    fn concurrent_readers_never_see_torn_cells() {
        // One writer hammers the ring with self-consistent events
        // (end_ns == dur_ns); readers must only ever observe pairs that
        // match.  A torn read would pair one write's end_ns with
        // another's meta.
        let trace = Arc::new(StageTrace::new());
        let rec = trace.recorder();
        let ring = Arc::clone(&rec.ring);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut seen = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        for e in ring.read() {
                            assert_eq!(
                                e.end_ns, e.dur_ns,
                                "torn seqlock read: end and meta from different writes"
                            );
                            seen += 1;
                        }
                    }
                    seen
                })
            })
            .collect();
        for i in 1..200_000u64 {
            let v = i % MAX_PACKED_DUR;
            rec.ring.push(Stage::ALL[(i % 8) as usize], v, v);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "readers observed events");
        }
    }

    #[test]
    fn collect_emits_one_labeled_histogram_per_stage() {
        let trace = Arc::new(StageTrace::new());
        let rec = trace.recorder();
        let start = rec.sample_start();
        rec.record(Stage::Fence, start);
        let mut out = Vec::new();
        trace.collect(&mut out);
        assert_eq!(out.len(), STAGE_COUNT);
        let text = expo::render(&out);
        let parsed = expo::parse(&text).unwrap();
        assert_eq!(
            expo::value(&parsed, "stage_latency_ns_count", &[("stage", "fence")]),
            Some(1)
        );
        assert_eq!(
            expo::value(&parsed, "stage_latency_ns_count", &[("stage", "apply")]),
            Some(0)
        );
    }
}
