//! Prometheus-style text exposition: the human- and tool-readable form of
//! a registry snapshot, and a strict parser for it (used by the scrape
//! tests, the CI selftest, and any operator piping `--stats-dump` into
//! standard tooling).
//!
//! The dialect is the text exposition format's core subset:
//!
//! ```text
//! # TYPE kv_ops_total counter
//! kv_ops_total{shard="0",op="get"} 128
//! # TYPE kv_point_latency_ns histogram
//! kv_point_latency_ns_bucket{le="127"} 90
//! kv_point_latency_ns_bucket{le="+Inf"} 100
//! kv_point_latency_ns_count 100
//! ```
//!
//! Histograms render cumulatively with `le` bounds at the power-of-two
//! bucket upper bounds (only non-empty buckets are emitted, so a 64-bucket
//! histogram with 3 occupied buckets costs 5 lines, not 65).  The top
//! bucket (values ≥ 2^63) folds into `+Inf`.  All values are unsigned
//! integers — every metric in this stack is a count, a level, or a bucket.

use crate::hist::{Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::{MetricValue, Sample};

/// Renders samples as text exposition (see the module docs).  Type
/// comments are emitted once per metric family, at its first appearance;
/// sample order is preserved.
pub fn render(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for sample in samples {
        if !seen.contains(&sample.name) {
            seen.push(sample.name);
            let kind = match sample.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            out.push_str("# TYPE ");
            out.push_str(sample.name);
            out.push(' ');
            out.push_str(kind);
            out.push('\n');
        }
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                write_line(&mut out, sample.name, &sample.labels, None, *v);
            }
            MetricValue::Histogram(snapshot) => {
                render_histogram(&mut out, sample.name, &sample.labels, snapshot);
            }
        }
    }
    out
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    snapshot: &HistogramSnapshot,
) {
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for (i, &count) in snapshot.buckets.iter().enumerate() {
        // The top bucket has no finite upper bound; it only appears in
        // the +Inf line below.
        if count > 0 && i < HISTOGRAM_BUCKETS - 1 {
            cumulative += count;
            let le = Histogram::bucket_upper_bound(i).to_string();
            write_line(out, &bucket_name, labels, Some(("le", &le)), cumulative);
        }
    }
    let total = snapshot.count();
    write_line(out, &bucket_name, labels, Some(("le", "+Inf")), total);
    write_line(out, &format!("{name}_count"), labels, None, total);
}

fn write_line(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    extra: Option<(&str, &str)>,
    value: u64,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (key, val) in labels
            .iter()
            .map(|(k, v)| (*k, v.as_str()))
            .chain(extra)
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(key);
            out.push_str("=\"");
            for c in val.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    other => out.push(other),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// One parsed exposition line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSample {
    /// Metric name as it appears on the line (histogram lines keep their
    /// `_bucket`/`_count` suffixes).
    pub name: String,
    /// Label pairs in line order (including `le` on bucket lines).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: u64,
}

impl ParsedSample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Whether every `(key, value)` pair in `want` appears in this
    /// sample's labels.
    pub fn has_labels(&self, want: &[(&str, &str)]) -> bool {
        want.iter().all(|(k, v)| self.label(k) == Some(*v))
    }
}

/// Parses text exposition produced by [`render`] (comments and blank
/// lines are skipped; any malformed line is an error naming it).
pub fn parse(text: &str) -> Result<Vec<ParsedSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line).map_err(|e| format!("line {}: {e}: {line}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_line(line: &str) -> Result<ParsedSample, String> {
    let (name_and_labels, value) = line
        .rsplit_once(' ')
        .ok_or_else(|| "missing value".to_string())?;
    let value: u64 = value
        .parse()
        .map_err(|_| format!("bad value {value:?}"))?;
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name.to_string(), parse_labels(body)?)
        }
    };
    if name.is_empty() || name.contains(char::is_whitespace) {
        return Err(format!("bad metric name {name:?}"));
    }
    Ok(ParsedSample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label key".to_string());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} missing opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => continue,
            Some(c) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
}

/// The value of the unique sample named `name` whose labels include all
/// of `labels`, or `None` if no sample matches.
pub fn value(samples: &[ParsedSample], name: &str, labels: &[(&str, &str)]) -> Option<u64> {
    samples
        .iter()
        .find(|s| s.name == name && s.has_labels(labels))
        .map(|s| s.value)
}

/// The sum of every sample named `name` whose labels include all of
/// `labels` (0 if none match) — e.g. total gets across shards.
pub fn sum(samples: &[ParsedSample], name: &str, labels: &[(&str, &str)]) -> u64 {
    samples
        .iter()
        .filter(|s| s.name == name && s.has_labels(labels))
        .map(|s| s.value)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Sample;

    #[test]
    fn render_parse_round_trip() {
        let hist = Histogram::new();
        for _ in 0..90 {
            hist.record(100); // bucket 6
        }
        for _ in 0..10 {
            hist.record(1 << 20); // bucket 20
        }
        let samples = vec![
            Sample::counter("kv_ops_total", 42).with("shard", 0).with("op", "get"),
            Sample::counter("kv_ops_total", 7).with("shard", 1).with("op", "put"),
            Sample::gauge("net_open_connections", 3),
            Sample::histogram("kv_point_latency_ns", &hist).with("shard", 0),
        ];
        let text = render(&samples);
        assert!(text.contains("# TYPE kv_ops_total counter"));
        assert_eq!(
            text.matches("# TYPE kv_ops_total").count(),
            1,
            "one TYPE line per family"
        );
        assert!(text.contains("kv_ops_total{shard=\"0\",op=\"get\"} 42"));
        assert!(text.contains("net_open_connections 3"));

        let parsed = parse(&text).unwrap();
        assert_eq!(
            value(&parsed, "kv_ops_total", &[("shard", "0"), ("op", "get")]),
            Some(42)
        );
        assert_eq!(sum(&parsed, "kv_ops_total", &[]), 49, "sums across shards");
        assert_eq!(value(&parsed, "net_open_connections", &[]), Some(3));
        // Histogram lines: cumulative buckets, +Inf == _count == total.
        if crate::ENABLED {
            assert_eq!(
                value(
                    &parsed,
                    "kv_point_latency_ns_bucket",
                    &[("shard", "0"), ("le", "127")]
                ),
                Some(90)
            );
            assert_eq!(
                value(
                    &parsed,
                    "kv_point_latency_ns_bucket",
                    &[("shard", "0"), ("le", "+Inf")]
                ),
                Some(100)
            );
            assert_eq!(
                value(&parsed, "kv_point_latency_ns_count", &[("shard", "0")]),
                Some(100)
            );
        }
    }

    #[test]
    fn empty_histograms_render_compactly() {
        let hist = Histogram::new();
        let text = render(&[Sample::histogram("quiet_ns", &hist)]);
        let parsed = parse(&text).unwrap();
        assert_eq!(value(&parsed, "quiet_ns_count", &[]), Some(0));
        assert_eq!(value(&parsed, "quiet_ns_bucket", &[("le", "+Inf")]), Some(0));
        // No finite-bound bucket lines for an empty histogram.
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn label_values_escape_and_unescape() {
        let s = Sample::counter("weird_total", 1).with("name", "a\"b\\c\nd");
        let text = render(&[s]);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed[0].label("name"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse("no_value_here").is_err());
        assert!(parse("name{unterminated=\"x\" 3").is_err());
        assert!(parse("name{=\"x\"} 3").is_err());
        assert!(parse("name{a=\"x\"b=\"y\"} 3").is_err(), "missing comma");
        assert!(parse("name notanumber").is_err());
        // Comments and blanks are fine.
        assert_eq!(parse("# HELP x y\n\n# TYPE x counter\n").unwrap(), vec![]);
    }

    #[test]
    fn top_bucket_folds_into_inf() {
        let hist = Histogram::new();
        hist.record(u64::MAX);
        hist.record(1);
        let text = render(&[Sample::histogram("sat_ns", &hist)]);
        let parsed = parse(&text).unwrap();
        if crate::ENABLED {
            assert_eq!(value(&parsed, "sat_ns_bucket", &[("le", "1")]), Some(1));
            assert_eq!(value(&parsed, "sat_ns_bucket", &[("le", "+Inf")]), Some(2));
            // No line claims a finite bound covers the 2^63.. bucket.
            assert!(!text.contains(&u64::MAX.to_string()));
        }
    }
}
