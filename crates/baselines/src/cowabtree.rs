//! Copy-on-update (a,b)-tree: the LF-ABtree stand-in.
//!
//! Brown's LF-ABtree (paper §2, "B-tree variants") is built from the same
//! relaxed (a,b)-tree as the OCC-ABtree, but its updates take a
//! read-copy-update approach: "inserting or deleting a key involves replacing
//! a tree node with a new copy".  The paper's analysis of its behaviour
//! (§6.1) rests entirely on that property — every update allocates and copies
//! a fat node, which is expensive on uniform update-heavy workloads but
//! performs well under skew where lock-based competitors convoy.
//!
//! This stand-in reproduces exactly that cost profile without the LLX/SCX
//! machinery: leaves are immutable fat nodes referenced from a routing layer;
//! an update builds a fresh copy of the leaf with the key added/removed and
//! installs it with a single compare-and-swap on the leaf pointer (retrying
//! on contention, as the LF-ABtree does when an SCX fails).  Leaves that grow
//! past the maximum size are split, and empty leaves are garbage collected,
//! under a writer lock on the routing layer.  Replaced leaves are reclaimed
//! through epoch-based reclamation.  See `DESIGN.md` §4 for the substitution
//! rationale.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicPtr, Ordering};

use abebr::{Collector, Guard};
use abtree::{ConcurrentMap, MapHandle};
use parking_lot::RwLock;

use crate::{OpCx, SessionHandle, SessionOps};

/// Maximum number of keys per leaf (matches the paper's b = 11).
const LEAF_CAP: usize = 11;

/// An immutable fat leaf.
struct CowLeaf {
    /// Sorted key/value pairs.
    entries: Vec<(u64, u64)>,
}

impl CowLeaf {
    fn find(&self, key: u64) -> Option<u64> {
        self.entries
            .binary_search_by_key(&key, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }
}

/// The copy-on-update (a,b)-tree.
pub struct CowABTree {
    /// Routing layer: each leaf's lower bound maps to a stable cell holding
    /// the current version of that leaf.
    inner: RwLock<BTreeMap<u64, Box<AtomicPtr<CowLeaf>>>>,
    collector: Collector,
}

// SAFETY: leaves are immutable once published and reclaimed through EBR; the
// routing layer is protected by the RwLock.
unsafe impl Send for CowABTree {}
unsafe impl Sync for CowABTree {}

impl Default for CowABTree {
    fn default() -> Self {
        Self::new()
    }
}

enum UpdateOutcome {
    Done(Option<u64>),
    NeedsSplit,
    Retry,
}

impl CowABTree {
    /// Creates an empty tree with one empty leaf covering the key space.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty tree reclaiming through an existing [`Collector`]
    /// (which selects the SMR backend — epochs or hazard pointers).
    pub fn with_collector(collector: Collector) -> Self {
        let mut map = BTreeMap::new();
        let leaf = Box::into_raw(Box::new(CowLeaf {
            entries: Vec::new(),
        }));
        map.insert(0u64, Box::new(AtomicPtr::new(leaf)));
        Self {
            inner: RwLock::new(map),
            collector,
        }
    }

    /// Attempts one copy-on-update of the leaf responsible for `key`.
    /// `guard` is the calling session's pin.
    fn try_update(
        &self,
        key: u64,
        guard: &Guard,
        mutate: impl Fn(&CowLeaf) -> Option<(Vec<(u64, u64)>, Option<u64>)>,
    ) -> UpdateOutcome {
        let inner = self.inner.read();
        let (_, cell) = inner
            .range(..=key)
            .next_back()
            .expect("a leaf always covers every key");
        let current = cell.load(Ordering::Acquire);
        // SAFETY: the leaf is protected by the pinned epoch.
        let leaf = unsafe { &*current };
        match mutate(leaf) {
            None => UpdateOutcome::Done(leaf.find(key)),
            Some((new_entries, result)) => {
                if new_entries.len() > LEAF_CAP {
                    return UpdateOutcome::NeedsSplit;
                }
                let new_leaf = Box::into_raw(Box::new(CowLeaf {
                    entries: new_entries,
                }));
                match cell.compare_exchange(
                    current,
                    new_leaf,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => {
                        // SAFETY: the old version was just unlinked.
                        unsafe { guard.defer_drop(current) };
                        UpdateOutcome::Done(result)
                    }
                    Err(_) => {
                        // SAFETY: never published; exclusively owned.
                        drop(unsafe { Box::from_raw(new_leaf) });
                        UpdateOutcome::Retry
                    }
                }
            }
        }
    }

    /// Splits the leaf responsible for `key` under the routing write lock.
    /// `guard` is the calling session's pin.
    fn split_leaf(&self, key: u64, guard: &Guard) {
        let mut inner = self.inner.write();
        let (&lower, cell) = inner
            .range(..=key)
            .next_back()
            .expect("a leaf always covers every key");
        let current = cell.load(Ordering::Acquire);
        // SAFETY: protected by the pinned epoch (and the write lock excludes
        // concurrent splits).
        let leaf = unsafe { &*current };
        if leaf.entries.len() < LEAF_CAP {
            return; // someone already split or shrank it
        }
        let mid = leaf.entries.len() / 2;
        let split_key = leaf.entries[mid].0;
        let low = Box::into_raw(Box::new(CowLeaf {
            entries: leaf.entries[..mid].to_vec(),
        }));
        let high = Box::into_raw(Box::new(CowLeaf {
            entries: leaf.entries[mid..].to_vec(),
        }));
        cell.store(low, Ordering::Release);
        inner.insert(split_key, Box::new(AtomicPtr::new(high)));
        let _ = lower;
        // SAFETY: the old version was just unlinked.
        unsafe { guard.defer_drop(current) };
    }

    /// Collects every pair (quiescent only).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for cell in inner.values() {
            // SAFETY: quiescent access.
            let leaf = unsafe { &*cell.load(Ordering::Acquire) };
            out.extend(leaf.entries.iter().copied());
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Sum of the stored keys (quiescent only).
    pub fn key_sum(&self) -> u128 {
        self.collect().iter().map(|&(k, _)| k as u128).sum()
    }
}

impl SessionOps for CowABTree {
    fn collector(&self) -> Option<&Collector> {
        Some(&self.collector)
    }

    fn op_get(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        // Bind the session's pin explicitly: it keeps the leaf snapshot
        // alive, and this fails loudly if `collector()` stops arming it.
        let _guard = cx.guard();
        let inner = self.inner.read();
        let (_, cell) = inner.range(..=key).next_back()?;
        // SAFETY: protected by the pinned epoch.
        let leaf = unsafe { &*cell.load(Ordering::Acquire) };
        leaf.find(key)
    }

    fn op_insert(&self, key: u64, value: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        loop {
            let outcome = self.try_update(key, cx.guard(), |leaf| {
                match leaf.entries.binary_search_by_key(&key, |e| e.0) {
                    Ok(_) => None, // already present: no copy needed
                    Err(pos) => {
                        let mut entries = leaf.entries.clone();
                        entries.insert(pos, (key, value));
                        Some((entries, None))
                    }
                }
            });
            match outcome {
                UpdateOutcome::Done(r) => return r,
                UpdateOutcome::NeedsSplit => self.split_leaf(key, cx.guard()),
                UpdateOutcome::Retry => continue,
            }
        }
    }

    /// Native range scan: walks the routing layer under the read lock from
    /// the leaf covering `lo` through the last leaf whose lower bound is
    /// <= `hi`.  Each fat leaf is an immutable snapshot, so the scan is
    /// atomic per leaf (and leaves arrive in key order, so the output needs
    /// no sort); concurrent copy-on-update installs make the cross-leaf
    /// composition per-element linearizable rather than a global snapshot.
    fn op_range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>, cx: &mut OpCx<'_>) {
        out.clear();
        if lo > hi {
            return;
        }
        let _guard = cx.guard();
        let inner = self.inner.read();
        let start = inner
            .range(..=lo)
            .next_back()
            .map(|(&bound, _)| bound)
            .unwrap_or(0);
        for cell in inner.range(start..=hi).map(|(_, cell)| cell) {
            // SAFETY: the leaf is protected by the pinned epoch.
            let leaf = unsafe { &*cell.load(Ordering::Acquire) };
            for &(k, v) in &leaf.entries {
                if k >= lo && k <= hi {
                    out.push((k, v));
                }
            }
        }
    }

    fn op_delete(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        loop {
            let outcome = self.try_update(key, cx.guard(), |leaf| {
                match leaf.entries.binary_search_by_key(&key, |e| e.0) {
                    Err(_) => None, // absent: no copy needed, find() reports None
                    Ok(pos) => {
                        let mut entries = leaf.entries.clone();
                        let (_, v) = entries.remove(pos);
                        Some((entries, Some(v)))
                    }
                }
            });
            match outcome {
                UpdateOutcome::Done(r) => return r,
                UpdateOutcome::NeedsSplit => self.split_leaf(key, cx.guard()),
                UpdateOutcome::Retry => continue,
            }
        }
    }
}

impl ConcurrentMap for CowABTree {
    fn handle(&self) -> Box<dyn MapHandle + '_> {
        Box::new(SessionHandle::new(self))
    }

    fn try_handle(&self) -> Result<Box<dyn MapHandle + '_>, abebr::RegisterError> {
        Ok(Box::new(SessionHandle::try_new(self)?))
    }

    fn name(&self) -> &'static str {
        "lf-abtree(cow)"
    }

    fn ebr_stats(&self) -> Option<abebr::CollectorStats> {
        SessionOps::collector(self).map(Collector::stats)
    }
}

impl Drop for CowABTree {
    fn drop(&mut self) {
        let inner = self.inner.get_mut();
        for cell in inner.values() {
            let ptr = cell.load(Ordering::Relaxed);
            if !ptr.is_null() {
                // SAFETY: exclusive access during drop.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl abtree::KeySum for CowABTree {
    fn key_sum(&self) -> u128 {
        CowABTree::key_sum(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sequential_oracle() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = CowABTree::new();
        let mut h = t.handle();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..2_000u64);
            if rng.gen_bool(0.5) {
                let expected = oracle.get(&k).copied();
                if expected.is_none() {
                    oracle.insert(k, k + 3);
                }
                assert_eq!(h.insert(k, k + 3), expected);
            } else {
                assert_eq!(h.delete(k), oracle.remove(&k));
            }
        }
        let got = t.collect();
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn deletion_of_absent_key_does_not_allocate_garbage() {
        let t = CowABTree::new();
        let mut h = t.handle();
        h.insert(1, 1);
        assert_eq!(h.delete(2), None);
        assert_eq!(h.get(1), Some(1));
    }

    #[test]
    fn native_range_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = CowABTree::new();
        let mut h = t.handle();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..5_000 {
            let k = rng.gen_range(0..2_000u64);
            if rng.gen_bool(0.6) {
                if h.insert(k, k + 7).is_none() {
                    oracle.insert(k, k + 7);
                }
            } else {
                h.delete(k);
                oracle.remove(&k);
            }
        }
        let mut out = Vec::new();
        // Window boundaries landing inside and between leaves.
        for (lo, hi) in [(0, 1_999), (250, 260), (1_990, 5_000), (7, 7), (9, 3)] {
            h.range(lo, hi, &mut out);
            let expected: Vec<(u64, u64)> = if lo > hi {
                Vec::new()
            } else {
                oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
            };
            assert_eq!(out, expected, "range({lo}, {hi})");
        }
        assert_eq!(h.scan_len(0, 2_000), oracle.len());
    }

    #[test]
    fn concurrent_key_sum_validation() {
        let t = Arc::new(CowABTree::new());
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut h = t.handle();
                let mut rng = StdRng::seed_from_u64(tid);
                let mut net: i128 = 0;
                for _ in 0..15_000 {
                    let k = rng.gen_range(0..1_000u64);
                    if rng.gen_bool(0.5) {
                        if h.insert(k, k).is_none() {
                            net += k as i128;
                        }
                    } else if h.delete(k).is_some() {
                        net -= k as i128;
                    }
                }
                net
            }));
        }
        let mut net = 0i128;
        for h in handles {
            net += h.join().unwrap();
        }
        assert_eq!(t.key_sum() as i128, net);
    }
}
