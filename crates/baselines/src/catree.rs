//! Contention-adapting search tree (CATree) baseline.
//!
//! Sagonas & Winblad's CATree (paper §2, "Distribution/contention aware data
//! structures") is, per the paper's own figures, the fastest competitor on
//! uniform update-heavy workloads, which makes it the key baseline for the
//! "up to 2x faster" OCC-ABtree claim.  It is an external binary tree whose
//! leaves ("base nodes") each hold a lock-protected *sequential* dictionary —
//! an AVL tree here, as in the paper's evaluation.  Every operation locks the
//! base node it lands in; the lock acquisition doubles as a contention probe:
//! contended acquisitions increase a statistic, uncontended ones decay it,
//! and a base node whose statistic crosses the high threshold is split in two
//! under a new routing node.
//!
//! Simplification relative to the original: base nodes are split on high
//! contention but never *joined* back on low contention.  The paper's
//! workloads have stationary contention, so the join path is not exercised
//! by the experiments reproduced here; see `DESIGN.md` §4.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use abebr::{Collector, Guard};
use abtree::{ConcurrentMap, MapHandle};
use parking_lot::Mutex;

use crate::avl::Avl;
use crate::{OpCx, SessionHandle, SessionOps};

/// Contention statistic added on a contended lock acquisition.
const STAT_CONTENDED: i32 = 250;
/// Contention statistic subtracted on an uncontended acquisition.
const STAT_UNCONTENDED: i32 = 1;
/// Splitting threshold.
const STAT_SPLIT: i32 = 1000;

/// Mutable state of a base node, protected by its lock.
struct BaseData {
    tree: Avl,
    stat: i32,
}

/// A leaf of the routing tree: a lock-protected sequential AVL tree.
struct BaseNode {
    data: Mutex<BaseData>,
    /// Cleared when this base node has been replaced (by a split).
    valid: AtomicBool,
}

/// A node of the contention-adapting tree.
enum CaNode {
    /// Routing node: immutable key, mutable children.
    Route {
        /// Routing key: keys `< key` go left, keys `>= key` go right.
        key: u64,
        /// Left child.
        left: AtomicPtr<CaNode>,
        /// Right child.
        right: AtomicPtr<CaNode>,
    },
    /// Base node.
    Base(BaseNode),
}

/// The contention-adapting search tree.
pub struct CaTree {
    root: AtomicPtr<CaNode>,
    collector: Collector,
}

// SAFETY: shared state is behind atomics and locks; node lifetime is managed
// by epoch-based reclamation.
unsafe impl Send for CaTree {}
unsafe impl Sync for CaTree {}

impl Default for CaTree {
    fn default() -> Self {
        Self::new()
    }
}

fn new_base(tree: Avl, stat: i32) -> *mut CaNode {
    Box::into_raw(Box::new(CaNode::Base(BaseNode {
        data: Mutex::new(BaseData { tree, stat }),
        valid: AtomicBool::new(true),
    })))
}

impl CaTree {
    /// Creates an empty tree consisting of a single empty base node.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty tree reclaiming through an existing [`Collector`]
    /// (which selects the SMR backend — epochs or hazard pointers).
    pub fn with_collector(collector: Collector) -> Self {
        Self {
            root: AtomicPtr::new(new_base(Avl::new(), 0)),
            collector,
        }
    }

    /// Applies `f` to the base node responsible for `key` while holding its
    /// lock, handling contention adaptation and splitting.  `guard` is the
    /// calling session's pin, which keeps unlinked base nodes alive.
    fn with_base<R>(&self, key: u64, guard: &Guard, f: impl FnOnce(&mut Avl) -> R) -> R {
        loop {
            // Descend the routing tree (no locks).
            let mut parent: *mut CaNode = ptr::null_mut();
            let mut went_left = false;
            let mut cur = self.root.load(Ordering::Acquire);
            // SAFETY: nodes reachable while pinned stay allocated.
            while let CaNode::Route {
                key: rkey,
                left,
                right,
            } = unsafe { &*cur }
            {
                parent = cur;
                if key < *rkey {
                    went_left = true;
                    cur = left.load(Ordering::Acquire);
                } else {
                    went_left = false;
                    cur = right.load(Ordering::Acquire);
                }
            }
            // SAFETY: as above.
            let base = match unsafe { &*cur } {
                CaNode::Base(b) => b,
                CaNode::Route { .. } => unreachable!("descent ends at a base node"),
            };

            // Lock the base node, detecting contention exactly like the
            // original: "how often a lock is already acquired when a thread
            // attempts to acquire it".
            let (mut data, contended) = match base.data.try_lock() {
                Some(g) => (g, false),
                None => (base.data.lock(), true),
            };
            if !base.valid.load(Ordering::Acquire) {
                drop(data);
                continue;
            }

            let result = f(&mut data.tree);

            // Contention adaptation.
            data.stat += if contended {
                STAT_CONTENDED
            } else {
                -STAT_UNCONTENDED
            };
            if data.stat > STAT_SPLIT {
                if let Some((low, split_key, high)) = data.tree.split_in_half() {
                    let new_left = new_base(low, 0);
                    let new_right = new_base(high, 0);
                    let route = Box::into_raw(Box::new(CaNode::Route {
                        key: split_key,
                        left: AtomicPtr::new(new_left),
                        right: AtomicPtr::new(new_right),
                    }));
                    // Publish the new subtree in place of this base node.
                    if parent.is_null() {
                        self.root.store(route, Ordering::Release);
                    } else {
                        // SAFETY: route nodes are never reclaimed (no joins).
                        match unsafe { &*parent } {
                            CaNode::Route { left, right, .. } => {
                                if went_left {
                                    left.store(route, Ordering::Release);
                                } else {
                                    right.store(route, Ordering::Release);
                                }
                            }
                            CaNode::Base(_) => unreachable!("parent is a route node"),
                        }
                    }
                    base.valid.store(false, Ordering::Release);
                    drop(data);
                    // SAFETY: the old base node was just unlinked.
                    unsafe { guard.defer_drop(cur) };
                    return result;
                }
                data.stat = 0;
            } else if data.stat < -STAT_SPLIT {
                // Joins are not implemented; clamp the statistic.
                data.stat = -STAT_SPLIT;
            }
            return result;
        }
    }

    /// Collects every key/value pair (quiescent only).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.load(Ordering::Acquire)];
        while let Some(ptr) = stack.pop() {
            if ptr.is_null() {
                continue;
            }
            // SAFETY: quiescent access.
            match unsafe { &*ptr } {
                CaNode::Route { left, right, .. } => {
                    stack.push(left.load(Ordering::Acquire));
                    stack.push(right.load(Ordering::Acquire));
                }
                CaNode::Base(b) => out.extend(b.data.lock().tree.entries()),
            }
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Sum of the keys stored (quiescent only); used by the harness's
    /// validation step.
    pub fn key_sum(&self) -> u128 {
        self.collect().iter().map(|&(k, _)| k as u128).sum()
    }

    /// Number of base nodes currently in the tree (quiescent only) — a proxy
    /// for how far contention adaptation has split the structure.
    pub fn base_node_count(&self) -> usize {
        let mut count = 0;
        let mut stack = vec![self.root.load(Ordering::Acquire)];
        while let Some(ptr) = stack.pop() {
            if ptr.is_null() {
                continue;
            }
            // SAFETY: quiescent access.
            match unsafe { &*ptr } {
                CaNode::Route { left, right, .. } => {
                    stack.push(left.load(Ordering::Acquire));
                    stack.push(right.load(Ordering::Acquire));
                }
                CaNode::Base(_) => count += 1,
            }
        }
        count
    }
}

impl SessionOps for CaTree {
    fn collector(&self) -> Option<&Collector> {
        Some(&self.collector)
    }

    fn op_insert(&self, key: u64, value: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        self.with_base(key, cx.guard(), |avl| avl.insert(key, value))
    }

    fn op_delete(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        self.with_base(key, cx.guard(), |avl| avl.remove(key))
    }

    fn op_get(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        // The CATree locks base nodes even for searches (paper §6.1: "All of
        // the CATree's operations (even searches) require locking a leaf").
        self.with_base(key, cx.guard(), |avl| avl.get(key))
    }
}

impl ConcurrentMap for CaTree {
    fn handle(&self) -> Box<dyn MapHandle + '_> {
        Box::new(SessionHandle::new(self))
    }

    fn try_handle(&self) -> Result<Box<dyn MapHandle + '_>, abebr::RegisterError> {
        Ok(Box::new(SessionHandle::try_new(self)?))
    }

    fn name(&self) -> &'static str {
        "catree"
    }

    fn ebr_stats(&self) -> Option<abebr::CollectorStats> {
        SessionOps::collector(self).map(Collector::stats)
    }
}

impl Drop for CaTree {
    fn drop(&mut self) {
        let mut stack = vec![self.root.load(Ordering::Relaxed)];
        while let Some(ptr) = stack.pop() {
            if ptr.is_null() {
                continue;
            }
            // SAFETY: exclusive access during drop; every reachable node is
            // freed exactly once (invalidated nodes are unreachable and are
            // owned by the collector's garbage bags).
            let node = unsafe { Box::from_raw(ptr) };
            if let CaNode::Route { left, right, .. } = &*node {
                stack.push(left.load(Ordering::Relaxed));
                stack.push(right.load(Ordering::Relaxed));
            }
        }
    }
}

impl abtree::KeySum for CaTree {
    fn key_sum(&self) -> u128 {
        CaTree::key_sum(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sequential_oracle_comparison() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = CaTree::new();
        let mut h = t.handle();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..3_000u64);
            if rng.gen_bool(0.5) {
                let expected = oracle.get(&k).copied();
                if expected.is_none() {
                    oracle.insert(k, k);
                }
                assert_eq!(h.insert(k, k), expected);
            } else {
                assert_eq!(h.delete(k), oracle.remove(&k));
            }
        }
        let keys: Vec<u64> = t.collect().iter().map(|&(k, _)| k).collect();
        let expected: Vec<u64> = oracle.keys().copied().collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn contention_causes_splits() {
        // Contention adaptation counts `try_lock` failures, which require
        // true parallelism: on a single hardware thread the lock is almost
        // always free when sampled (a preemption adds one contended event
        // per scheduling quantum while thousands of uncontended operations
        // each subtract one), so a CA tree correctly never splits there.
        // Detected parallelism only — AB_FORCE_PARALLEL deliberately does
        // not apply: without true parallelism the tree correctly never
        // splits, so forcing the test on would make it fail for the right
        // behavior.
        if abtree::par::detected_parallelism() < 2 {
            eprintln!("skipping contention_causes_splits: needs >1 hardware thread");
            return;
        }
        let t = Arc::new(CaTree::new());
        let mut h = t.handle();
        for k in 0..20_000u64 {
            h.insert(k, k);
        }
        assert_eq!(t.base_node_count(), 1, "no contention yet, single base");
        let mut handles = Vec::new();
        for tid in 0..8u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut h = t.handle();
                let mut rng = StdRng::seed_from_u64(tid);
                for _ in 0..30_000 {
                    let k = rng.gen_range(0..20_000u64);
                    if rng.gen_bool(0.5) {
                        h.insert(k, k);
                    } else {
                        h.delete(k);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            t.base_node_count() > 1,
            "contended workload should split base nodes"
        );
    }

    #[test]
    fn concurrent_key_sum_validation() {
        let t = Arc::new(CaTree::new());
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut h = t.handle();
                let mut rng = StdRng::seed_from_u64(100 + tid);
                let mut net: i128 = 0;
                for _ in 0..20_000 {
                    let k = rng.gen_range(0..5_000u64);
                    if rng.gen_bool(0.5) {
                        if h.insert(k, k).is_none() {
                            net += k as i128;
                        }
                    } else if h.delete(k).is_some() {
                        net -= k as i128;
                    }
                }
                net
            }));
        }
        let mut net = 0i128;
        for h in handles {
            net += h.join().unwrap();
        }
        assert_eq!(t.key_sum() as i128, net);
    }
}
