//! Simplified FPTree-style persistent B-tree baseline (Figure 17).
//!
//! The FPTree (Oukid et al., SIGMOD'16) keeps its inner nodes in DRAM and
//! only its leaves in persistent memory; each leaf stores a one-byte
//! *fingerprint* per key which is scanned before the keys themselves, a
//! validity bitmap, and unsorted key/value slots.  The original synchronizes
//! inner nodes with hardware transactional memory, which is unavailable
//! here; this reproduction protects the (volatile) inner structure with a
//! reader-writer lock and each leaf with a mutex, which reproduces the
//! scaling limitation the paper observes for the persistent comparison trees
//! (negative scaling under contention) while keeping the flush behaviour:
//! only leaf modifications are flushed, via the `abpmem` primitives.
//!
//! Recovery (rebuilding the volatile inner structure from the persistent
//! leaves) is out of scope for this baseline — Figure 17 measures steady-state
//! throughput only; see `DESIGN.md` §4.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use abtree::{ConcurrentMap, MapHandle};

use crate::{OpCx, SessionHandle, SessionOps};
use parking_lot::{Mutex, RwLock};

/// Number of key slots per leaf (the original uses larger leaves than the
/// (a,b)-trees; 32 keeps splits reasonably rare).
const LEAF_CAP: usize = 32;

/// One persistent leaf.
struct FpLeaf {
    data: Mutex<FpLeafData>,
}

struct FpLeafData {
    /// Validity bitmap: bit `i` set means slot `i` holds a live pair.
    bitmap: u32,
    /// One-byte hashes of the keys, scanned before the keys themselves.
    fingerprints: [u8; LEAF_CAP],
    keys: [u64; LEAF_CAP],
    vals: [u64; LEAF_CAP],
}

impl FpLeafData {
    fn new() -> Self {
        Self {
            bitmap: 0,
            fingerprints: [0; LEAF_CAP],
            keys: [0; LEAF_CAP],
            vals: [0; LEAF_CAP],
        }
    }

    fn len(&self) -> usize {
        self.bitmap.count_ones() as usize
    }

    /// Scans fingerprints first (the FPTree's key optimization), confirming
    /// on the full key only when the fingerprint matches.
    fn find(&self, key: u64, fp: u8) -> Option<usize> {
        (0..LEAF_CAP)
            .find(|&i| self.bitmap & (1 << i) != 0 && self.fingerprints[i] == fp && self.keys[i] == key)
    }

    fn free_slot(&self) -> Option<usize> {
        (0..LEAF_CAP).find(|&i| self.bitmap & (1 << i) == 0)
    }

    fn entries(&self) -> Vec<(u64, u64)> {
        (0..LEAF_CAP)
            .filter(|&i| self.bitmap & (1 << i) != 0)
            .map(|i| (self.keys[i], self.vals[i]))
            .collect()
    }
}

/// Computes the one-byte fingerprint of a key.
fn fingerprint(key: u64) -> u8 {
    // Simple multiplicative hash, top byte.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8
}

/// Simplified FPTree: persistent fingerprinted leaves indexed by a volatile
/// ordered map under a reader-writer lock.
pub struct FpTree {
    /// Maps each leaf's lower bound to the leaf.  Leaf `i` owns keys in
    /// `[lower_i, lower_{i+1})`.
    inner: RwLock<BTreeMap<u64, Box<FpLeaf>>>,
    /// Count of leaf splits (diagnostics).
    splits: std::sync::atomic::AtomicU64,
}

impl Default for FpTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FpTree {
    /// Creates an empty tree with a single leaf covering the whole key space.
    pub fn new() -> Self {
        let mut map = BTreeMap::new();
        map.insert(
            0u64,
            Box::new(FpLeaf {
                data: Mutex::new(FpLeafData::new()),
            }),
        );
        Self {
            inner: RwLock::new(map),
            splits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of leaf splits performed so far.
    pub fn split_count(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }

    /// Collects every pair (quiescent only).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let inner = self.inner.read();
        let mut out = Vec::new();
        for leaf in inner.values() {
            out.extend(leaf.data.lock().entries());
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Sum of the stored keys (quiescent only).
    pub fn key_sum(&self) -> u128 {
        self.collect().iter().map(|&(k, _)| k as u128).sum()
    }

    /// Splits the (full) leaf responsible for `key`.  Takes the inner write
    /// lock, so it serializes with every other operation.
    fn split_leaf(&self, key: u64) {
        let mut inner = self.inner.write();
        let (&lower, leaf) = inner
            .range(..=key)
            .next_back()
            .expect("a leaf always covers every key");
        let mut entries = {
            let data = leaf.data.lock();
            if data.len() < LEAF_CAP {
                // Someone else already split (or removed keys); nothing to do.
                return;
            }
            data.entries()
        };
        entries.sort_unstable_by_key(|e| e.0);
        let mid = entries.len() / 2;
        let split_key = entries[mid].0;

        let build = |slice: &[(u64, u64)]| {
            let mut data = FpLeafData::new();
            for (i, &(k, v)) in slice.iter().enumerate() {
                data.bitmap |= 1 << i;
                data.fingerprints[i] = fingerprint(k);
                data.keys[i] = k;
                data.vals[i] = v;
            }
            // Persist the freshly built leaf before publishing it.
            abpmem::flush(
                &data as *const FpLeafData as *const u8,
                std::mem::size_of::<FpLeafData>(),
            );
            Box::new(FpLeaf {
                data: Mutex::new(data),
            })
        };
        let low = build(&entries[..mid]);
        let high = build(&entries[mid..]);
        abpmem::sfence();

        inner.remove(&lower);
        inner.insert(lower, low);
        inner.insert(split_key, high);
        self.splits.fetch_add(1, Ordering::Relaxed);
    }
}

impl SessionOps for FpTree {
    fn op_get(&self, key: u64, _cx: &mut OpCx<'_>) -> Option<u64> {
        let inner = self.inner.read();
        let (_, leaf) = inner.range(..=key).next_back()?;
        let data = leaf.data.lock();
        data.find(key, fingerprint(key)).map(|i| data.vals[i])
    }

    fn op_insert(&self, key: u64, value: u64, _cx: &mut OpCx<'_>) -> Option<u64> {
        loop {
            {
                let inner = self.inner.read();
                let (_, leaf) = inner
                    .range(..=key)
                    .next_back()
                    .expect("a leaf always covers every key");
                let mut data = leaf.data.lock();
                let fp = fingerprint(key);
                if let Some(i) = data.find(key, fp) {
                    return Some(data.vals[i]);
                }
                if let Some(slot) = data.free_slot() {
                    data.vals[slot] = value;
                    data.keys[slot] = key;
                    data.fingerprints[slot] = fp;
                    // Flush the new pair, then atomically validate it by
                    // flipping (and flushing) the bitmap bit — the FPTree's
                    // commit protocol.
                    abpmem::persist(&data.keys[slot] as *const u64 as *const u8, 16);
                    data.bitmap |= 1 << slot;
                    abpmem::persist(&data.bitmap as *const u32 as *const u8, 4);
                    return None;
                }
            }
            // Leaf full: split under the write lock and retry.
            self.split_leaf(key);
        }
    }

    fn op_delete(&self, key: u64, _cx: &mut OpCx<'_>) -> Option<u64> {
        let inner = self.inner.read();
        let (_, leaf) = inner.range(..=key).next_back()?;
        let mut data = leaf.data.lock();
        match data.find(key, fingerprint(key)) {
            None => None,
            Some(i) => {
                let value = data.vals[i];
                // Deletes only invalidate (and flush) the bitmap bit.
                data.bitmap &= !(1 << i);
                abpmem::persist(&data.bitmap as *const u32 as *const u8, 4);
                Some(value)
            }
        }
    }

}

impl ConcurrentMap for FpTree {
    fn handle(&self) -> Box<dyn MapHandle + '_> {
        Box::new(SessionHandle::new(self))
    }

    fn name(&self) -> &'static str {
        "fptree"
    }
}

impl abtree::KeySum for FpTree {
    fn key_sum(&self) -> u128 {
        FpTree::key_sum(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sequential_oracle() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = FpTree::new();
        let mut h = t.handle();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..2_000u64);
            if rng.gen_bool(0.5) {
                let expected = oracle.get(&k).copied();
                if expected.is_none() {
                    oracle.insert(k, k + 9);
                }
                assert_eq!(h.insert(k, k + 9), expected);
            } else {
                assert_eq!(h.delete(k), oracle.remove(&k));
            }
        }
        let got = t.collect();
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, expected);
        assert!(t.split_count() > 0, "the workload should split leaves");
    }

    #[test]
    fn fingerprints_do_not_cause_false_negatives() {
        let t = FpTree::new();
        let mut h = t.handle();
        // Keys engineered to stress fingerprint collisions within one leaf.
        for k in 0..1_000u64 {
            h.insert(k * 256, k);
        }
        for k in 0..1_000u64 {
            assert_eq!(h.get(k * 256), Some(k));
        }
    }

    #[test]
    fn concurrent_key_sum_validation() {
        let t = Arc::new(FpTree::new());
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut h = t.handle();
                let mut rng = StdRng::seed_from_u64(tid);
                let mut net: i128 = 0;
                for _ in 0..15_000 {
                    let k = rng.gen_range(0..2_000u64);
                    if rng.gen_bool(0.5) {
                        if h.insert(k, k).is_none() {
                            net += k as i128;
                        }
                    } else if h.delete(k).is_some() {
                        net -= k as i128;
                    }
                }
                net
            }));
        }
        let mut net = 0i128;
        for h in handles {
            net += h.join().unwrap();
        }
        assert_eq!(t.key_sum() as i128, net);
    }
}
