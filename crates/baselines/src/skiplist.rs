//! Lock-based "lazy" concurrent skiplist (Herlihy–Lev–Luchangco–Shavit).
//!
//! Stands in for the list-shaped baselines of the paper's evaluation (the
//! SplayList is a skiplist that additionally adapts node heights to the
//! access distribution; see `DESIGN.md` §4 for the substitution note).
//! Searches are wait-free; inserts and removes lock the predecessor towers,
//! validate, and link/unlink.  Removed nodes are retired through epoch-based
//! reclamation (unlike the original SplayList implementation, which never
//! frees memory — a point the paper remarks on in §6.2).

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use abebr::Collector;
use abtree::{ConcurrentMap, HandleRng, MapHandle};
use parking_lot::Mutex;

use crate::{OpCx, SessionHandle, SessionOps};

/// Maximum tower height.
const MAX_LEVEL: usize = 20;

struct SkipNode {
    key: u64,
    value: u64,
    next: [AtomicPtr<SkipNode>; MAX_LEVEL],
    /// Height of this node's tower (levels `0..top_level` are linked).
    top_level: usize,
    lock: Mutex<()>,
    marked: AtomicBool,
    fully_linked: AtomicBool,
}

impl SkipNode {
    fn new(key: u64, value: u64, top_level: usize) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value,
            next: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            top_level,
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(false),
        }))
    }
}

/// A lock-based lazy skiplist.
pub struct LazySkipList {
    /// Head sentinel (conceptually key = -∞), full height.
    head: *mut SkipNode,
    /// Tail sentinel (key = `u64::MAX`, reserved — user keys are smaller).
    tail: *mut SkipNode,
    collector: Collector,
}

// SAFETY: shared state behind atomics/locks; reclamation via EBR.
unsafe impl Send for LazySkipList {}
unsafe impl Sync for LazySkipList {}

impl Default for LazySkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl LazySkipList {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty skiplist reclaiming through an existing
    /// [`Collector`] (which selects the SMR backend — epochs or hazard
    /// pointers).
    pub fn with_collector(collector: Collector) -> Self {
        let tail = SkipNode::new(u64::MAX, 0, MAX_LEVEL);
        let head = SkipNode::new(0, 0, MAX_LEVEL);
        // SAFETY: freshly allocated, exclusively owned here.
        unsafe {
            (*tail).fully_linked.store(true, Ordering::Release);
            for level in 0..MAX_LEVEL {
                (*head).next[level].store(tail, Ordering::Release);
            }
            (*head).fully_linked.store(true, Ordering::Release);
        }
        Self {
            head,
            tail,
            collector,
        }
    }

    fn random_level(rng: &mut HandleRng) -> usize {
        // Geometric distribution with p = 1/2, capped at MAX_LEVEL.
        let mut level = 1;
        while level < MAX_LEVEL && rng.coin() {
            level += 1;
        }
        level
    }

    /// Collects every key/value pair by walking level 0 (quiescent only).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        // SAFETY: quiescent access; head/tail are never reclaimed.
        let mut cur = unsafe { &*self.head }.next[0].load(Ordering::Acquire);
        while cur != self.tail {
            // SAFETY: quiescent access.
            let node = unsafe { &*cur };
            if !node.marked.load(Ordering::Acquire) {
                out.push((node.key, node.value));
            }
            cur = node.next[0].load(Ordering::Acquire);
        }
        out
    }

    /// Sum of the stored keys (quiescent only), for harness validation.
    pub fn key_sum(&self) -> u128 {
        self.collect().iter().map(|&(k, _)| k as u128).sum()
    }

    /// Finds the predecessors and successors of `key` at every level.
    /// Returns the level at which a node with `key` was found, or `None`.
    fn find(
        &self,
        key: u64,
        preds: &mut [*mut SkipNode; MAX_LEVEL],
        succs: &mut [*mut SkipNode; MAX_LEVEL],
    ) -> Option<usize> {
        let mut found = None;
        let mut pred = self.head;
        for level in (0..MAX_LEVEL).rev() {
            // SAFETY: nodes reachable while the caller is pinned; head/tail
            // are never reclaimed.
            let mut curr = unsafe { &*pred }.next[level].load(Ordering::Acquire);
            loop {
                // SAFETY: as above.
                let curr_ref = unsafe { &*curr };
                if curr != self.tail && curr_ref.key < key {
                    pred = curr;
                    curr = curr_ref.next[level].load(Ordering::Acquire);
                } else {
                    break;
                }
            }
            // SAFETY: as above.
            if found.is_none() && curr != self.tail && unsafe { &*curr }.key == key {
                found = Some(level);
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        found
    }
}

impl SessionOps for LazySkipList {
    fn collector(&self) -> Option<&Collector> {
        Some(&self.collector)
    }

    fn op_get(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        // Bind the session's pin explicitly: it keeps traversed towers
        // alive, and this fails loudly if `collector()` stops arming it.
        let _guard = cx.guard();
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        match self.find(key, &mut preds, &mut succs) {
            Some(level) => {
                // SAFETY: protected by the pinned epoch.
                let node = unsafe { &*succs[level] };
                if node.fully_linked.load(Ordering::Acquire) && !node.marked.load(Ordering::Acquire)
                {
                    Some(node.value)
                } else {
                    None
                }
            }
            None => None,
        }
    }

    fn op_insert(&self, key: u64, value: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        debug_assert_ne!(key, u64::MAX);
        let _guard = cx.guard();
        // Tower heights come from the session's own RNG: no thread-local
        // lookup per insert.
        let top_level = Self::random_level(cx.rng());
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        loop {
            if let Some(level) = self.find(key, &mut preds, &mut succs) {
                // SAFETY: protected by the pinned epoch.
                let node = unsafe { &*succs[level] };
                if !node.marked.load(Ordering::Acquire) {
                    // Wait for a concurrent inserter to finish linking, then
                    // report the key as already present.
                    while !node.fully_linked.load(Ordering::Acquire) {
                        core::hint::spin_loop();
                    }
                    return Some(node.value);
                }
                // The node is being removed; retry.
                core::hint::spin_loop();
                continue;
            }

            // Lock the predecessors bottom-up, skipping duplicates.
            let mut guards = Vec::with_capacity(top_level);
            let mut valid = true;
            let mut last_locked: *mut SkipNode = ptr::null_mut();
            for (level, (&pred, &succ)) in preds.iter().zip(&succs).enumerate().take(top_level) {
                if pred != last_locked {
                    // SAFETY: protected by the pinned epoch.
                    guards.push(unsafe { &*pred }.lock.lock());
                    last_locked = pred;
                }
                // SAFETY: as above.
                let pred_ref = unsafe { &*pred };
                let succ_ref = unsafe { &*succ };
                if pred_ref.marked.load(Ordering::Acquire)
                    || succ_ref.marked.load(Ordering::Acquire)
                    || pred_ref.next[level].load(Ordering::Acquire) != succ
                {
                    valid = false;
                    break;
                }
            }
            if !valid {
                drop(guards);
                continue;
            }

            let node = SkipNode::new(key, value, top_level);
            // SAFETY: freshly allocated node; preds are locked and validated.
            unsafe {
                for (level, &succ) in succs.iter().enumerate().take(top_level) {
                    (*node).next[level].store(succ, Ordering::Release);
                }
                for (level, &pred) in preds.iter().enumerate().take(top_level) {
                    (*pred).next[level].store(node, Ordering::Release);
                }
                (*node).fully_linked.store(true, Ordering::Release);
            }
            return None;
        }
    }

    /// Native range scan: positions on the first node with key >= `lo` and
    /// walks the level-0 list until the key passes `hi`, skipping nodes that
    /// are marked or not yet fully linked.  Each element is individually
    /// linearizable (the list-order walk of the lazy-list literature); the
    /// result is not an atomic snapshot of the whole window.
    fn op_range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>, cx: &mut OpCx<'_>) {
        out.clear();
        if lo > hi {
            return;
        }
        let _guard = cx.guard();
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        self.find(lo, &mut preds, &mut succs);
        let mut cur = succs[0];
        while cur != self.tail {
            // SAFETY: protected by the pinned epoch; unlinked nodes keep
            // valid next pointers until reclaimed.
            let node = unsafe { &*cur };
            if node.key > hi {
                break;
            }
            if node.fully_linked.load(Ordering::Acquire) && !node.marked.load(Ordering::Acquire) {
                out.push((node.key, node.value));
            }
            cur = node.next[0].load(Ordering::Acquire);
        }
    }

    fn op_delete(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        let guard = cx.guard();
        let mut preds = [ptr::null_mut(); MAX_LEVEL];
        let mut succs = [ptr::null_mut(); MAX_LEVEL];
        let mut victim: *mut SkipNode = ptr::null_mut();
        let mut is_marked = false;
        let mut top_level = 0;
        loop {
            let found = self.find(key, &mut preds, &mut succs);
            if !is_marked {
                match found {
                    None => return None,
                    Some(level) => {
                        victim = succs[level];
                        // SAFETY: protected by the pinned epoch.
                        let v = unsafe { &*victim };
                        if !(v.fully_linked.load(Ordering::Acquire)
                            && v.top_level - 1 == level
                            && !v.marked.load(Ordering::Acquire))
                        {
                            return None;
                        }
                        top_level = v.top_level;
                    }
                }
            }
            // SAFETY: victim is protected by the pinned epoch.
            let v = unsafe { &*victim };
            let victim_guard = if !is_marked {
                let g = v.lock.lock();
                if v.marked.load(Ordering::Acquire) {
                    return None;
                }
                v.marked.store(true, Ordering::Release);
                is_marked = true;
                Some(g)
            } else {
                Some(v.lock.lock())
            };

            // Lock predecessors and validate.
            let mut guards = Vec::with_capacity(top_level);
            let mut valid = true;
            let mut last_locked: *mut SkipNode = ptr::null_mut();
            for (level, &pred) in preds.iter().enumerate().take(top_level) {
                if pred != last_locked {
                    // SAFETY: protected by the pinned epoch.
                    guards.push(unsafe { &*pred }.lock.lock());
                    last_locked = pred;
                }
                // SAFETY: as above.
                let pred_ref = unsafe { &*pred };
                if pred_ref.marked.load(Ordering::Acquire)
                    || pred_ref.next[level].load(Ordering::Acquire) != victim
                {
                    valid = false;
                    break;
                }
            }
            if !valid {
                drop(guards);
                drop(victim_guard);
                continue;
            }
            // Unlink top-down.
            // SAFETY: preds are locked and validated; victim is marked.
            unsafe {
                for level in (0..top_level).rev() {
                    (*preds[level]).next[level]
                        .store((*victim).next[level].load(Ordering::Acquire), Ordering::Release);
                }
            }
            let value = v.value;
            drop(guards);
            drop(victim_guard);
            // SAFETY: the victim has been unlinked from every level.
            unsafe { guard.defer_drop(victim) };
            return Some(value);
        }
    }

}

impl ConcurrentMap for LazySkipList {
    fn handle(&self) -> Box<dyn MapHandle + '_> {
        Box::new(SessionHandle::new(self))
    }

    fn try_handle(&self) -> Result<Box<dyn MapHandle + '_>, abebr::RegisterError> {
        Ok(Box::new(SessionHandle::try_new(self)?))
    }

    fn name(&self) -> &'static str {
        "skiplist-lazy"
    }

    fn ebr_stats(&self) -> Option<abebr::CollectorStats> {
        SessionOps::collector(self).map(Collector::stats)
    }
}

impl Drop for LazySkipList {
    fn drop(&mut self) {
        // Walk level 0 and free every node, including both sentinels.
        let mut cur = self.head;
        loop {
            let at_tail = cur == self.tail;
            // SAFETY: exclusive access during drop; each node freed once.
            let node = unsafe { Box::from_raw(cur) };
            if at_tail {
                break;
            }
            cur = node.next[0].load(Ordering::Relaxed);
        }
    }
}

impl abtree::KeySum for LazySkipList {
    fn key_sum(&self) -> u128 {
        LazySkipList::key_sum(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sequential_oracle() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = LazySkipList::new();
        let mut h = t.handle();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..2_000u64);
            match rng.gen_range(0..3) {
                0 => {
                    let expected = oracle.get(&k).copied();
                    if expected.is_none() {
                        oracle.insert(k, k + 1);
                    }
                    assert_eq!(h.insert(k, k + 1), expected);
                }
                1 => assert_eq!(h.delete(k), oracle.remove(&k)),
                _ => assert_eq!(h.get(k), oracle.get(&k).copied()),
            }
        }
    }

    #[test]
    fn concurrent_key_sum_validation() {
        let t = Arc::new(LazySkipList::new());
        let mut h = t.handle();
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut h = t.handle();
                let mut rng = StdRng::seed_from_u64(tid);
                let mut net: i128 = 0;
                for _ in 0..15_000 {
                    let k = rng.gen_range(0..1_000u64);
                    if rng.gen_bool(0.5) {
                        if h.insert(k, k).is_none() {
                            net += k as i128;
                        }
                    } else if h.delete(k).is_some() {
                        net -= k as i128;
                    }
                }
                net
            }));
        }
        let mut net = 0i128;
        for h in handles {
            net += h.join().unwrap();
        }
        // Sum the remaining keys through the map interface.
        let mut sum = 0i128;
        for k in 0..1_000u64 {
            if h.contains(k) {
                sum += k as i128;
            }
        }
        assert_eq!(sum, net);
    }

    #[test]
    fn native_range_matches_collect() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = LazySkipList::new();
        let mut h = t.handle();
        for _ in 0..3_000 {
            let k = rng.gen_range(0..1_000u64);
            if rng.gen_bool(0.7) {
                h.insert(k, k * 2);
            } else {
                h.delete(k);
            }
        }
        let all = t.collect();
        let mut out = Vec::new();
        h.range(100, 899, &mut out);
        let expected: Vec<(u64, u64)> = all
            .iter()
            .copied()
            .filter(|&(k, _)| (100..=899).contains(&k))
            .collect();
        assert_eq!(out, expected);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        h.range(5, 2, &mut out);
        assert!(out.is_empty(), "lo > hi must be empty");
        assert_eq!(h.scan_len(100, 100), expected.iter().filter(|&&(k, _)| k < 200).count());
    }

    #[test]
    fn towers_spread_across_levels() {
        let mut rng = HandleRng::from_seed(7);
        let mut max_seen = 0;
        for _ in 0..10_000 {
            max_seen = max_seen.max(LazySkipList::random_level(&mut rng));
        }
        assert!(max_seen > 5, "tower heights should vary, max={max_seen}");
        assert!(max_seen <= MAX_LEVEL);
    }
}
