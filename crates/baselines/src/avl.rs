//! Sequential AVL tree, used as the per-base-node dictionary inside the
//! contention-adapting search tree (the CATree authors — and the paper's
//! evaluation — use AVL trees for the sequential component).

/// A node of the sequential AVL tree.
#[derive(Debug)]
struct AvlNode {
    key: u64,
    value: u64,
    height: i32,
    left: Option<Box<AvlNode>>,
    right: Option<Box<AvlNode>>,
}

impl AvlNode {
    fn new(key: u64, value: u64) -> Box<Self> {
        Box::new(Self {
            key,
            value,
            height: 1,
            left: None,
            right: None,
        })
    }
}

/// A sequential AVL-balanced ordered map from `u64` to `u64`.
#[derive(Debug, Default)]
pub struct Avl {
    root: Option<Box<AvlNode>>,
    len: usize,
}

fn height(n: &Option<Box<AvlNode>>) -> i32 {
    n.as_ref().map_or(0, |n| n.height)
}

fn update_height(n: &mut Box<AvlNode>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
}

fn balance_factor(n: &AvlNode) -> i32 {
    height(&n.left) - height(&n.right)
}

fn rotate_right(mut n: Box<AvlNode>) -> Box<AvlNode> {
    let mut l = n.left.take().expect("rotate_right requires a left child");
    n.left = l.right.take();
    update_height(&mut n);
    l.right = Some(n);
    update_height(&mut l);
    l
}

fn rotate_left(mut n: Box<AvlNode>) -> Box<AvlNode> {
    let mut r = n.right.take().expect("rotate_left requires a right child");
    n.right = r.left.take();
    update_height(&mut n);
    r.left = Some(n);
    update_height(&mut r);
    r
}

fn rebalance(mut n: Box<AvlNode>) -> Box<AvlNode> {
    update_height(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        if balance_factor(n.left.as_ref().unwrap()) < 0 {
            n.left = Some(rotate_left(n.left.take().unwrap()));
        }
        rotate_right(n)
    } else if bf < -1 {
        if balance_factor(n.right.as_ref().unwrap()) > 0 {
            n.right = Some(rotate_right(n.right.take().unwrap()));
        }
        rotate_left(n)
    } else {
        n
    }
}

fn insert_node(node: Option<Box<AvlNode>>, key: u64, value: u64) -> (Box<AvlNode>, Option<u64>) {
    match node {
        None => (AvlNode::new(key, value), None),
        Some(mut n) => {
            if key < n.key {
                let (child, existing) = insert_node(n.left.take(), key, value);
                n.left = Some(child);
                if existing.is_some() {
                    return (n, existing);
                }
                (rebalance(n), None)
            } else if key > n.key {
                let (child, existing) = insert_node(n.right.take(), key, value);
                n.right = Some(child);
                if existing.is_some() {
                    return (n, existing);
                }
                (rebalance(n), None)
            } else {
                let existing = n.value;
                (n, Some(existing))
            }
        }
    }
}

fn pop_min(mut n: Box<AvlNode>) -> (Option<Box<AvlNode>>, Box<AvlNode>) {
    match n.left.take() {
        None => {
            let right = n.right.take();
            (right, n)
        }
        Some(left) => {
            let (new_left, min) = pop_min(left);
            n.left = new_left;
            (Some(rebalance(n)), min)
        }
    }
}

fn delete_node(node: Option<Box<AvlNode>>, key: u64) -> (Option<Box<AvlNode>>, Option<u64>) {
    match node {
        None => (None, None),
        Some(mut n) => {
            if key < n.key {
                let (child, removed) = delete_node(n.left.take(), key);
                n.left = child;
                if removed.is_none() {
                    return (Some(n), None);
                }
                (Some(rebalance(n)), removed)
            } else if key > n.key {
                let (child, removed) = delete_node(n.right.take(), key);
                n.right = child;
                if removed.is_none() {
                    return (Some(n), None);
                }
                (Some(rebalance(n)), removed)
            } else {
                let removed = Some(n.value);
                let replacement = match (n.left.take(), n.right.take()) {
                    (None, None) => None,
                    (Some(l), None) => Some(l),
                    (None, Some(r)) => Some(r),
                    (Some(l), Some(r)) => {
                        let (new_right, mut succ) = pop_min(r);
                        succ.left = Some(l);
                        succ.right = new_right;
                        Some(rebalance(succ))
                    }
                };
                (replacement, removed)
            }
        }
    }
}

impl Avl {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `key -> value` if absent; returns the existing value otherwise.
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        let (root, existing) = insert_node(self.root.take(), key, value);
        self.root = Some(root);
        if existing.is_none() {
            self.len += 1;
        }
        existing
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let (root, removed) = delete_node(self.root.take(), key);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Returns the value associated with `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            if key < n.key {
                cur = n.left.as_deref();
            } else if key > n.key {
                cur = n.right.as_deref();
            } else {
                return Some(n.value);
            }
        }
        None
    }

    /// Returns all key/value pairs in ascending key order.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk(n: &Option<Box<AvlNode>>, out: &mut Vec<(u64, u64)>) {
            if let Some(n) = n {
                walk(&n.left, out);
                out.push((n.key, n.value));
                walk(&n.right, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Builds an AVL tree from entries sorted by key (perfectly balanced).
    pub fn from_sorted(entries: &[(u64, u64)]) -> Self {
        fn build(entries: &[(u64, u64)]) -> Option<Box<AvlNode>> {
            if entries.is_empty() {
                return None;
            }
            let mid = entries.len() / 2;
            let (k, v) = entries[mid];
            let mut n = AvlNode::new(k, v);
            n.left = build(&entries[..mid]);
            n.right = build(&entries[mid + 1..]);
            update_height(&mut n);
            Some(n)
        }
        Self {
            root: build(entries),
            len: entries.len(),
        }
    }

    /// Splits the tree into two halves around its median key; returns
    /// `(low_half, split_key, high_half)` where every key in the high half is
    /// `>= split_key`.  Used by the CATree when a base node becomes
    /// contended.  Returns `None` if the tree has fewer than 2 keys.
    pub fn split_in_half(&self) -> Option<(Avl, u64, Avl)> {
        if self.len < 2 {
            return None;
        }
        let entries = self.entries();
        let mid = entries.len() / 2;
        let split_key = entries[mid].0;
        Some((
            Avl::from_sorted(&entries[..mid]),
            split_key,
            Avl::from_sorted(&entries[mid..]),
        ))
    }

    /// Merges two trees whose key ranges do not overlap (all keys in `other`
    /// are larger).  Used by the CATree's low-contention join.
    pub fn join(low: &Avl, high: &Avl) -> Avl {
        let mut entries = low.entries();
        entries.extend(high.entries());
        Avl::from_sorted(&entries)
    }

    fn check_node(n: &Option<Box<AvlNode>>, lo: Option<u64>, hi: Option<u64>) -> Result<i32, String> {
        match n {
            None => Ok(0),
            Some(n) => {
                if let Some(lo) = lo {
                    if n.key <= lo {
                        return Err(format!("key {} violates lower bound {lo}", n.key));
                    }
                }
                if let Some(hi) = hi {
                    if n.key >= hi {
                        return Err(format!("key {} violates upper bound {hi}", n.key));
                    }
                }
                let lh = Self::check_node(&n.left, lo, Some(n.key))?;
                let rh = Self::check_node(&n.right, Some(n.key), hi)?;
                if (lh - rh).abs() > 1 {
                    return Err(format!("imbalance at key {}: {lh} vs {rh}", n.key));
                }
                let h = 1 + lh.max(rh);
                if h != n.height {
                    return Err(format!("stale height at key {}", n.key));
                }
                Ok(h)
            }
        }
    }

    /// Verifies the BST ordering, AVL balance and height bookkeeping.
    pub fn check_invariants(&self) -> Result<(), String> {
        Self::check_node(&self.root, None, None).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn insert_get_remove() {
        let mut t = Avl::new();
        assert_eq!(t.insert(5, 50), None);
        assert_eq!(t.insert(5, 51), Some(50));
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.remove(5), Some(50));
        assert_eq!(t.remove(5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn stays_balanced_under_sequential_inserts() {
        let mut t = Avl::new();
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(t.get(k), Some(k));
        }
    }

    #[test]
    fn random_workload_matches_btreemap() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Avl::new();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..30_000 {
            let k = rng.gen_range(0..2_000u64);
            if rng.gen_bool(0.55) {
                let expected = oracle.entry(k).or_insert(k);
                let got = t.insert(k, k);
                assert_eq!(got.is_none(), *expected == k && t.get(k) == Some(k) && got.is_none());
            } else {
                assert_eq!(t.remove(k), oracle.remove(&k));
            }
        }
        t.check_invariants().unwrap();
        let entries: Vec<u64> = t.entries().iter().map(|&(k, _)| k).collect();
        let expected: Vec<u64> = oracle.keys().copied().collect();
        assert_eq!(entries, expected);
    }

    #[test]
    fn split_and_join_round_trip() {
        let mut t = Avl::new();
        for k in 0..101u64 {
            t.insert(k, k * 3);
        }
        let (low, split, high) = t.split_in_half().unwrap();
        assert!(low.len() >= 2 && high.len() >= 2);
        assert!(low.entries().iter().all(|&(k, _)| k < split));
        assert!(high.entries().iter().all(|&(k, _)| k >= split));
        low.check_invariants().unwrap();
        high.check_invariants().unwrap();
        let joined = Avl::join(&low, &high);
        joined.check_invariants().unwrap();
        assert_eq!(joined.entries(), t.entries());
    }

    #[test]
    fn split_of_tiny_tree_is_none() {
        let mut t = Avl::new();
        assert!(t.split_in_half().is_none());
        t.insert(1, 1);
        assert!(t.split_in_half().is_none());
    }
}
