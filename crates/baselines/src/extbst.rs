//! Lock-based external (leaf-oriented) binary search tree.
//!
//! This is the "distribution-naïve BST" baseline category of the paper's
//! evaluation (DGT15, and the lock-based relatives of Ellen et al. / NM14):
//! an *external* BST stores all key/value pairs in leaves; internal nodes
//! carry only routing keys.  Searches are lock-free; an insert locks the
//! leaf's parent and replaces the leaf with a three-node subtree; a delete
//! locks the grandparent and parent and splices the leaf (and its parent)
//! out.  Unlinked nodes are retired through epoch-based reclamation.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use abebr::Collector;
use abtree::{ConcurrentMap, MapHandle};
use absync::TatasLock;

use crate::{OpCx, SessionHandle, SessionOps};

/// Sentinel routing key larger than every user key (`u64::MAX` is reserved).
const INF: u64 = u64::MAX;

struct BstNode {
    key: u64,
    value: u64,
    is_leaf: bool,
    left: AtomicPtr<BstNode>,
    right: AtomicPtr<BstNode>,
    lock: TatasLock,
    marked: AtomicBool,
}

impl BstNode {
    fn leaf(key: u64, value: u64) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value,
            is_leaf: true,
            left: AtomicPtr::new(ptr::null_mut()),
            right: AtomicPtr::new(ptr::null_mut()),
            lock: TatasLock::new(),
            marked: AtomicBool::new(false),
        }))
    }

    fn internal(key: u64, left: *mut Self, right: *mut Self) -> *mut Self {
        Box::into_raw(Box::new(Self {
            key,
            value: 0,
            is_leaf: false,
            left: AtomicPtr::new(left),
            right: AtomicPtr::new(right),
            lock: TatasLock::new(),
            marked: AtomicBool::new(false),
        }))
    }

    fn child(&self, go_left: bool) -> *mut Self {
        if go_left {
            self.left.load(Ordering::Acquire)
        } else {
            self.right.load(Ordering::Acquire)
        }
    }

    fn set_child(&self, go_left: bool, new: *mut Self) {
        if go_left {
            self.left.store(new, Ordering::Release);
        } else {
            self.right.store(new, Ordering::Release);
        }
    }
}

/// A lock-based external binary search tree.
pub struct LockExtBst {
    /// Sentinel root: an internal node with key `INF` whose left subtree
    /// holds all user keys and whose right child is a sentinel leaf.
    root: *mut BstNode,
    collector: Collector,
}

// SAFETY: shared state behind atomics/locks; reclamation via EBR.
unsafe impl Send for LockExtBst {}
unsafe impl Sync for LockExtBst {}

impl Default for LockExtBst {
    fn default() -> Self {
        Self::new()
    }
}

struct SearchResult {
    gp: *mut BstNode,
    gp_left: bool,
    p: *mut BstNode,
    p_left: bool,
    leaf: *mut BstNode,
}

impl LockExtBst {
    /// Creates an empty tree (two sentinel leaves under a sentinel root).
    pub fn new() -> Self {
        Self::with_collector(Collector::new())
    }

    /// Creates an empty tree reclaiming through an existing [`Collector`]
    /// (which selects the SMR backend — epochs or hazard pointers).
    pub fn with_collector(collector: Collector) -> Self {
        let left_sentinel = BstNode::leaf(INF, 0);
        let right_sentinel = BstNode::leaf(INF, 0);
        let root = BstNode::internal(INF, left_sentinel, right_sentinel);
        Self { root, collector }
    }

    /// Routing: go left iff `key < node.key`.
    fn search(&self, key: u64) -> SearchResult {
        let mut gp = ptr::null_mut();
        let mut gp_left = false;
        let mut p = self.root;
        let mut p_left = true;
        // SAFETY: root is never reclaimed.
        let mut cur = unsafe { &*p }.child(true);
        loop {
            // SAFETY: nodes reachable while the caller is pinned.
            let node = unsafe { &*cur };
            if node.is_leaf {
                return SearchResult {
                    gp,
                    gp_left,
                    p,
                    p_left,
                    leaf: cur,
                };
            }
            gp = p;
            gp_left = p_left;
            p = cur;
            p_left = key < node.key;
            cur = node.child(p_left);
        }
    }

    /// Collects every pair (quiescent only).
    pub fn collect(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            // SAFETY: quiescent access.
            let node = unsafe { &*p };
            if node.is_leaf {
                if node.key != INF {
                    out.push((node.key, node.value));
                }
            } else {
                stack.push(node.left.load(Ordering::Relaxed));
                stack.push(node.right.load(Ordering::Relaxed));
            }
        }
        out.sort_unstable_by_key(|e| e.0);
        out
    }

    /// Sum of stored keys (quiescent only).
    pub fn key_sum(&self) -> u128 {
        self.collect().iter().map(|&(k, _)| k as u128).sum()
    }
}

impl SessionOps for LockExtBst {
    fn collector(&self) -> Option<&Collector> {
        Some(&self.collector)
    }

    fn op_get(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        // Bind the session's pin explicitly: the lock-free search relies on
        // it, and this fails loudly if `collector()` ever stops arming it.
        let _guard = cx.guard();
        let res = self.search(key);
        // SAFETY: protected by the pinned epoch.
        let leaf = unsafe { &*res.leaf };
        if leaf.key == key {
            Some(leaf.value)
        } else {
            None
        }
    }

    fn op_insert(&self, key: u64, value: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        debug_assert_ne!(key, INF);
        let guard = cx.guard();
        loop {
            let res = self.search(key);
            // SAFETY: protected by the pinned epoch.
            let leaf = unsafe { &*res.leaf };
            if leaf.key == key {
                return Some(leaf.value);
            }
            // SAFETY: as above.
            let parent = unsafe { &*res.p };
            let _pg = parent.lock.lock_guard();
            if parent.marked.load(Ordering::Acquire) || parent.child(res.p_left) != res.leaf {
                continue;
            }
            // Replace the leaf with an internal node holding both leaves.
            let new_leaf = BstNode::leaf(key, value);
            let (routing, left, right) = if key < leaf.key {
                (leaf.key, new_leaf, res.leaf)
            } else {
                (key, res.leaf, new_leaf)
            };
            let new_internal = BstNode::internal(routing, left, right);
            parent.set_child(res.p_left, new_internal);
            drop(_pg);
            let _ = guard;
            return None;
        }
    }

    fn op_delete(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64> {
        let guard = cx.guard();
        loop {
            let res = self.search(key);
            // SAFETY: protected by the pinned epoch.
            let leaf = unsafe { &*res.leaf };
            if leaf.key != key {
                return None;
            }
            if res.gp.is_null() {
                // The leaf's parent is the sentinel root: cannot happen for
                // user keys because the root's left subtree always contains
                // at least the left sentinel leaf.
                return None;
            }
            // Lock top-down (grandparent then parent): all writers order
            // their acquisitions by depth, so no deadlock.
            // SAFETY: as above.
            let gparent = unsafe { &*res.gp };
            let parent = unsafe { &*res.p };
            let _gg = gparent.lock.lock_guard();
            if gparent.marked.load(Ordering::Acquire) || gparent.child(res.gp_left) != res.p {
                continue;
            }
            let _pg = parent.lock.lock_guard();
            if parent.marked.load(Ordering::Acquire) || parent.child(res.p_left) != res.leaf {
                continue;
            }
            let value = leaf.value;
            // Splice out the parent and the leaf: the grandparent adopts the
            // leaf's sibling.
            let sibling = parent.child(!res.p_left);
            parent.marked.store(true, Ordering::Release);
            // SAFETY: the leaf is still reachable (checked above).
            unsafe { &*res.leaf }.marked.store(true, Ordering::Release);
            gparent.set_child(res.gp_left, sibling);
            drop(_pg);
            drop(_gg);
            // SAFETY: parent and leaf were just unlinked.
            unsafe {
                guard.defer_drop(res.p);
                guard.defer_drop(res.leaf);
            }
            return Some(value);
        }
    }

}

impl ConcurrentMap for LockExtBst {
    fn handle(&self) -> Box<dyn MapHandle + '_> {
        Box::new(SessionHandle::new(self))
    }

    fn try_handle(&self) -> Result<Box<dyn MapHandle + '_>, abebr::RegisterError> {
        Ok(Box::new(SessionHandle::try_new(self)?))
    }

    fn name(&self) -> &'static str {
        "ext-bst-lock"
    }

    fn ebr_stats(&self) -> Option<abebr::CollectorStats> {
        SessionOps::collector(self).map(Collector::stats)
    }
}

impl Drop for LockExtBst {
    fn drop(&mut self) {
        let mut stack = vec![self.root];
        while let Some(p) = stack.pop() {
            if p.is_null() {
                continue;
            }
            // SAFETY: exclusive access during drop.
            let node = unsafe { Box::from_raw(p) };
            if !node.is_leaf {
                stack.push(node.left.load(Ordering::Relaxed));
                stack.push(node.right.load(Ordering::Relaxed));
            }
        }
    }
}

impl abtree::KeySum for LockExtBst {
    fn key_sum(&self) -> u128 {
        LockExtBst::key_sum(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::sync::Arc;

    #[test]
    fn sequential_oracle() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = LockExtBst::new();
        let mut h = t.handle();
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..2_000u64);
            if rng.gen_bool(0.5) {
                let expected = oracle.get(&k).copied();
                if expected.is_none() {
                    oracle.insert(k, k + 1);
                }
                assert_eq!(h.insert(k, k + 1), expected);
            } else {
                assert_eq!(h.delete(k), oracle.remove(&k));
            }
        }
        let got: Vec<(u64, u64)> = t.collect();
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn concurrent_key_sum_validation() {
        let t = Arc::new(LockExtBst::new());
        let mut handles = Vec::new();
        for tid in 0..6u64 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut h = t.handle();
                let mut rng = StdRng::seed_from_u64(tid);
                let mut net: i128 = 0;
                for _ in 0..20_000 {
                    let k = rng.gen_range(0..1_000u64);
                    if rng.gen_bool(0.5) {
                        if h.insert(k, k).is_none() {
                            net += k as i128;
                        }
                    } else if h.delete(k).is_some() {
                        net -= k as i128;
                    }
                }
                net
            }));
        }
        let mut net = 0i128;
        for h in handles {
            net += h.join().unwrap();
        }
        assert_eq!(t.key_sum() as i128, net);
    }

    #[test]
    fn delete_down_to_empty_and_reuse() {
        let t = LockExtBst::new();
        let mut h = t.handle();
        for k in 0..1_000u64 {
            h.insert(k, k);
        }
        for k in 0..1_000u64 {
            assert_eq!(h.delete(k), Some(k));
        }
        assert!(t.collect().is_empty());
        for k in 0..100u64 {
            assert_eq!(h.insert(k, k * 2), None);
            assert_eq!(h.get(k), Some(k * 2));
        }
    }
}
