//! Baseline concurrent dictionaries used in the paper's evaluation (§2, §6).
//!
//! The paper compares the OCC-ABtree / Elim-ABtree against a large set of
//! state-of-the-art structures.  This crate reproduces one representative of
//! each *category* that the paper's figures rely on (see `DESIGN.md` §4 for
//! the full substitution table):
//!
//! * [`catree::CaTree`] — the contention-adapting search tree (Sagonas &
//!   Winblad), the paper's fastest competitor on uniform update-heavy
//!   workloads: an external binary tree of lock-protected sequential AVL
//!   trees that splits hot base nodes.
//! * [`extbst::LockExtBst`] — a lock-based external (leaf-oriented) binary
//!   search tree in the style of DGT15 / the lock-based variants of Ellen et
//!   al.'s tree: the "distribution-naïve BST" category (BCCO10, NM14,
//!   DGT15).
//! * [`skiplist::LazySkipList`] — a lock-based lazy skiplist, standing in for
//!   the list-shaped baselines (SplayList).
//! * [`fptree::FpTree`] — a simplified FPTree-style persistent B-tree
//!   (fingerprinted persistent leaves, volatile inner structure protected by
//!   a reader-writer lock), the comparison point for the persistence
//!   experiments (Figure 17).
//! * [`cowabtree::CowABTree`] — a copy-on-update (a,b)-tree standing in for
//!   the LF-ABtree: every insert/delete replaces the affected leaf with a
//!   fresh copy, reproducing the allocation-per-update cost that dominates
//!   the LF-ABtree's behaviour in update-heavy workloads.
//!
//! All baselines implement [`abtree::ConcurrentMap`], so the benchmark
//! harness drives them exactly like the paper's trees: each worker thread
//! opens one [`abtree::MapHandle`] session for its whole run.  The shared
//! session plumbing lives in this module — a baseline implements the
//! internal `SessionOps` trait (its operations receive an `OpCx` with the
//! handle's pre-armed EBR guard and per-thread RNG) and gets its
//! [`abtree::MapHandle`] via the internal `SessionHandle`, which owns the
//! thread's epoch-reclamation registration, RNG and reusable scan buffer.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod avl;
pub mod catree;
pub mod cowabtree;
pub mod extbst;
pub mod fptree;
pub mod skiplist;

pub use catree::CaTree;
pub use cowabtree::CowABTree;
pub use extbst::LockExtBst;
pub use fptree::FpTree;
pub use skiplist::LazySkipList;

use abebr::{Collector, Guard, LocalHandle};
use abtree::{HandleRng, MapHandle};

/// Per-operation context a [`SessionHandle`] passes down to a structure's
/// [`SessionOps`] methods: the pre-armed EBR guard (present iff the
/// structure declared a [`Collector`]) and the session's RNG.
pub(crate) struct OpCx<'a> {
    guard: Option<&'a Guard>,
    rng: &'a mut HandleRng,
}

impl OpCx<'_> {
    /// The session's pin guard.  Only callable by structures whose
    /// [`SessionOps::collector`] returned `Some` (the handle pins before
    /// every operation in that case).
    fn guard(&self) -> &Guard {
        self.guard
            .expect("structure declared a collector, so the session pinned")
    }

    /// The session's per-thread RNG.
    fn rng(&mut self) -> &mut HandleRng {
        self.rng
    }
}

/// Internal session-facing operations of a baseline structure.
///
/// Methods mirror [`MapHandle`] but take the shared structure (`&self`) plus
/// the per-operation context; [`SessionHandle`] adapts this to the public
/// per-thread handle API.
pub(crate) trait SessionOps: Send + Sync {
    /// The structure's reclamation collector, if it retires memory through
    /// EBR.  When `Some`, every session registers once and pins around each
    /// operation; `cx.guard()` is then available.
    fn collector(&self) -> Option<&Collector> {
        None
    }

    /// Insert-if-absent (see [`MapHandle::insert`]).
    fn op_insert(&self, key: u64, value: u64, cx: &mut OpCx<'_>) -> Option<u64>;

    /// Remove (see [`MapHandle::delete`]).
    fn op_delete(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64>;

    /// Lookup (see [`MapHandle::get`]).
    fn op_get(&self, key: u64, cx: &mut OpCx<'_>) -> Option<u64>;

    /// Range collection (see [`MapHandle::range`]).  The default is the
    /// shared [`abtree::fallback_range`] point-lookup probe over
    /// [`SessionOps::op_get`]; structures with an ordered layout override
    /// it.
    fn op_range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>, cx: &mut OpCx<'_>) {
        abtree::fallback_range(|key| self.op_get(key, cx), lo, hi, out)
    }
}

/// The shared per-thread session state of every baseline: an owned EBR
/// registration (when the structure uses one), a per-thread RNG, and the
/// reusable scan buffer.  Constructed by each structure's
/// `ConcurrentMap::handle`.
pub(crate) struct SessionHandle<'m, M: SessionOps + ?Sized> {
    map: &'m M,
    /// One registration per session: per-op pins are local epoch bumps.
    ebr: Option<LocalHandle>,
    rng: HandleRng,
    scan_buf: Vec<(u64, u64)>,
}

impl<'m, M: SessionOps + ?Sized> SessionHandle<'m, M> {
    pub(crate) fn new(map: &'m M) -> Self {
        Self {
            map,
            ebr: map.collector().map(Collector::register),
            rng: HandleRng::new(),
            scan_buf: Vec::new(),
        }
    }

    /// Fallible construction: surfaces collector thread-slot exhaustion as
    /// an error instead of panicking (backs `ConcurrentMap::try_handle`).
    pub(crate) fn try_new(map: &'m M) -> Result<Self, abebr::RegisterError> {
        Ok(Self {
            map,
            ebr: map
                .collector()
                .map(Collector::try_register)
                .transpose()?,
            rng: HandleRng::new(),
            scan_buf: Vec::new(),
        })
    }

    /// Pins (when the structure uses EBR), builds the per-op context, and
    /// runs `f` under it — the one place the pin-before-op discipline lives.
    fn with_cx<R>(&mut self, f: impl FnOnce(&M, &mut OpCx<'_>) -> R) -> R {
        let guard = self.ebr.as_ref().map(LocalHandle::pin);
        let mut cx = OpCx {
            guard: guard.as_ref(),
            rng: &mut self.rng,
        };
        f(self.map, &mut cx)
    }
}

impl<M: SessionOps + ?Sized> MapHandle for SessionHandle<'_, M> {
    fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        self.with_cx(|map, cx| map.op_insert(key, value, cx))
    }

    fn delete(&mut self, key: u64) -> Option<u64> {
        self.with_cx(|map, cx| map.op_delete(key, cx))
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.with_cx(|map, cx| map.op_get(key, cx))
    }

    fn range(&mut self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        self.with_cx(|map, cx| map.op_range(lo, hi, out, cx))
    }

    fn take_scan_buf(&mut self) -> Vec<(u64, u64)> {
        std::mem::take(&mut self.scan_buf)
    }

    fn put_scan_buf(&mut self, buf: Vec<(u64, u64)>) {
        self.scan_buf = buf;
    }
}

#[cfg(test)]
mod tests {
    use abtree::ConcurrentMap;

    fn smoke<M: ConcurrentMap>(map: M) {
        let mut h = map.handle();
        assert_eq!(h.insert(5, 50), None);
        // `MapHandle::insert` is insert-if-absent (first-writer-wins,
        // the paper's `insertIfAbsent`): inserting a present key returns the
        // existing value and must leave the map completely unchanged.  The
        // rejected value 51 is never observable — not via get, not via a
        // repeated insert, not via delete.
        assert_eq!(h.insert(5, 51), Some(50));
        assert_eq!(h.get(5), Some(50));
        assert_eq!(h.insert(5, 52), Some(50));
        assert_eq!(h.delete(5), Some(50));
        assert_eq!(h.get(5), None);
        assert_eq!(h.delete(5), None);
        for k in 0..500u64 {
            assert_eq!(h.insert(k, k * 2), None);
        }
        for k in 0..500u64 {
            assert_eq!(h.get(k), Some(k * 2));
        }
        for k in 0..500u64 {
            assert_eq!(h.delete(k), Some(k * 2));
        }
        assert_eq!(h.get(123), None);
    }

    #[test]
    fn all_baselines_satisfy_map_semantics() {
        smoke(crate::CaTree::new());
        smoke(crate::LockExtBst::new());
        smoke(crate::LazySkipList::new());
        smoke(crate::FpTree::new());
        smoke(crate::CowABTree::new());
    }
}
