//! Baseline concurrent dictionaries used in the paper's evaluation (§2, §6).
//!
//! The paper compares the OCC-ABtree / Elim-ABtree against a large set of
//! state-of-the-art structures.  This crate reproduces one representative of
//! each *category* that the paper's figures rely on (see `DESIGN.md` §4 for
//! the full substitution table):
//!
//! * [`catree::CaTree`] — the contention-adapting search tree (Sagonas &
//!   Winblad), the paper's fastest competitor on uniform update-heavy
//!   workloads: an external binary tree of lock-protected sequential AVL
//!   trees that splits hot base nodes.
//! * [`extbst::LockExtBst`] — a lock-based external (leaf-oriented) binary
//!   search tree in the style of DGT15 / the lock-based variants of Ellen et
//!   al.'s tree: the "distribution-naïve BST" category (BCCO10, NM14,
//!   DGT15).
//! * [`skiplist::LazySkipList`] — a lock-based lazy skiplist, standing in for
//!   the list-shaped baselines (SplayList).
//! * [`fptree::FpTree`] — a simplified FPTree-style persistent B-tree
//!   (fingerprinted persistent leaves, volatile inner structure protected by
//!   a reader-writer lock), the comparison point for the persistence
//!   experiments (Figure 17).
//! * [`cowabtree::CowABTree`] — a copy-on-update (a,b)-tree standing in for
//!   the LF-ABtree: every insert/delete replaces the affected leaf with a
//!   fresh copy, reproducing the allocation-per-update cost that dominates
//!   the LF-ABtree's behaviour in update-heavy workloads.
//!
//! All baselines implement [`abtree::ConcurrentMap`], so the benchmark
//! harness drives them exactly like the paper's trees, including the key-sum
//! validation.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod avl;
pub mod catree;
pub mod cowabtree;
pub mod extbst;
pub mod fptree;
pub mod skiplist;

pub use catree::CaTree;
pub use cowabtree::CowABTree;
pub use extbst::LockExtBst;
pub use fptree::FpTree;
pub use skiplist::LazySkipList;

#[cfg(test)]
mod tests {
    use abtree::ConcurrentMap;

    fn smoke<M: ConcurrentMap>(map: M) {
        assert_eq!(map.insert(5, 50), None);
        // `ConcurrentMap::insert` is insert-if-absent (first-writer-wins,
        // the paper's `insertIfAbsent`): inserting a present key returns the
        // existing value and must leave the map completely unchanged.  The
        // rejected value 51 is never observable — not via get, not via a
        // repeated insert, not via delete.
        assert_eq!(map.insert(5, 51), Some(50));
        assert_eq!(map.get(5), Some(50));
        assert_eq!(map.insert(5, 52), Some(50));
        assert_eq!(map.delete(5), Some(50));
        assert_eq!(map.get(5), None);
        assert_eq!(map.delete(5), None);
        for k in 0..500u64 {
            assert_eq!(map.insert(k, k * 2), None);
        }
        for k in 0..500u64 {
            assert_eq!(map.get(k), Some(k * 2));
        }
        for k in 0..500u64 {
            assert_eq!(map.delete(k), Some(k * 2));
        }
        assert_eq!(map.get(123), None);
    }

    #[test]
    fn all_baselines_satisfy_map_semantics() {
        smoke(crate::CaTree::new());
        smoke(crate::LockExtBst::new());
        smoke(crate::LazySkipList::new());
        smoke(crate::FpTree::new());
        smoke(crate::CowABTree::new());
    }
}
