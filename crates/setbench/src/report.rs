//! Result records and table-style reporting.

use serde::{Deserialize, Serialize};

/// The result of one benchmark cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Experiment identifier (e.g. `"fig14"`, `"table1"`).
    pub experiment: String,
    /// Data structure name.
    pub structure: String,
    /// Worker thread count.
    pub threads: usize,
    /// Key range (or record count for YCSB).
    pub key_range: u64,
    /// Update percentage of the operation mix.
    pub update_percent: u32,
    /// Zipf parameter (0 = uniform).
    pub zipf: f64,
    /// Operations completed during the measured phase.
    pub total_ops: u64,
    /// Measured-phase length in seconds.
    pub duration_secs: f64,
    /// Throughput in operations per microsecond (the paper's y-axis unit).
    pub throughput_mops: f64,
    /// Whether the key-sum validation passed.
    pub validated: bool,
}

/// Prints the header of a figure-style table.
pub fn print_figure_header(experiment: &str, description: &str) {
    println!();
    println!("=== {experiment}: {description} ===");
    println!(
        "{:<16} {:>8} {:>10} {:>8} {:>8} {:>14} {:>10}",
        "structure", "threads", "keys", "upd%", "zipf", "ops/us", "valid"
    );
}

/// Prints one result row in the figure-style table and returns the row as a
/// JSON string (one line, suitable for machine parsing).
pub fn print_result_row(r: &BenchResult) -> String {
    println!(
        "{:<16} {:>8} {:>10} {:>8} {:>8} {:>14.3} {:>10}",
        r.structure,
        r.threads,
        r.key_range,
        r.update_percent,
        r.zipf,
        r.throughput_mops,
        if r.validated { "ok" } else { "FAIL" }
    );
    serde_json::to_string(r).expect("BenchResult serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_round_trips_through_json() {
        let r = BenchResult {
            experiment: "fig12".into(),
            structure: "elim-abtree".into(),
            threads: 8,
            key_range: 10_000,
            update_percent: 100,
            zipf: 1.0,
            total_ops: 123_456,
            duration_secs: 1.0,
            throughput_mops: 0.123456,
            validated: true,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: BenchResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.structure, "elim-abtree");
        assert_eq!(back.total_ops, 123_456);
        assert!(back.validated);
    }

    #[test]
    fn printing_does_not_panic() {
        print_figure_header("fig0", "smoke");
        let r = BenchResult {
            experiment: "fig0".into(),
            structure: "x".into(),
            threads: 1,
            key_range: 1,
            update_percent: 0,
            zipf: 0.0,
            total_ops: 0,
            duration_secs: 0.1,
            throughput_mops: 0.0,
            validated: true,
        };
        let json = print_result_row(&r);
        assert!(json.contains("\"structure\":\"x\""));
    }
}
