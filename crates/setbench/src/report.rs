//! Result records and table-style reporting.
//!
//! `BenchResult` serializes to one flat JSON object per row.  The
//! serialization is hand-rolled (the build environment has no crates.io
//! access for `serde`); the format is plain JSON, so downstream tooling can
//! parse the stderr stream with any JSON library.

/// The result of one benchmark cell.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Experiment identifier (e.g. `"fig14"`, `"table1"`).
    pub experiment: String,
    /// Data structure name.
    pub structure: String,
    /// Worker thread count.
    pub threads: usize,
    /// Key range (or record count for YCSB).
    pub key_range: u64,
    /// Update percentage of the operation mix.
    pub update_percent: u32,
    /// Zipf parameter (0 = uniform).
    pub zipf: f64,
    /// Operations completed during the measured phase.
    pub total_ops: u64,
    /// Range scans among `total_ops` (0 for the paper's point-op mixes).
    pub scan_ops: u64,
    /// Measured-phase length in seconds.
    pub duration_secs: f64,
    /// Throughput in operations per microsecond (the paper's y-axis unit).
    pub throughput_mops: f64,
    /// Whether the key-sum validation passed.
    pub validated: bool,
    /// SMR backend the structure's collector ran (`"ebr"` or `"hp"`;
    /// `"none"` for structures without a reclamation collector).
    pub smr: String,
    /// Retired-but-not-yet-freed objects at the end of the measured phase —
    /// the memory-footprint cost of the reclamation scheme.
    pub unreclaimed: u64,
    /// End-of-run reclamation lag: epochs (EBR) or retirements (HP) by
    /// which the oldest unreclaimed garbage trails the collector's clock.
    pub reclaim_lag: u64,
}

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchResult {
    /// Renders the result as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"{}\",\"structure\":\"{}\",\"threads\":{},",
                "\"key_range\":{},\"update_percent\":{},\"zipf\":{},",
                "\"total_ops\":{},\"scan_ops\":{},\"duration_secs\":{},",
                "\"throughput_mops\":{},\"validated\":{},",
                "\"smr\":\"{}\",\"unreclaimed\":{},\"reclaim_lag\":{}}}"
            ),
            escape(&self.experiment),
            escape(&self.structure),
            self.threads,
            self.key_range,
            self.update_percent,
            self.zipf,
            self.total_ops,
            self.scan_ops,
            self.duration_secs,
            self.throughput_mops,
            self.validated,
            escape(&self.smr),
            self.unreclaimed,
            self.reclaim_lag
        )
    }

    /// Parses a JSON object produced by [`BenchResult::to_json`].
    ///
    /// This is a purpose-built parser for the flat, known-field format above
    /// (sufficient for round-tripping result logs), not a general JSON
    /// parser.  Returns `None` on any missing, duplicate or unknown field,
    /// so truncated log lines are rejected rather than zero-filled.
    pub fn from_json(json: &str) -> Option<Self> {
        const FIELD_COUNT: usize = 14;
        let body = json.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut r = BenchResult {
            experiment: String::new(),
            structure: String::new(),
            threads: 0,
            key_range: 0,
            update_percent: 0,
            zipf: 0.0,
            total_ops: 0,
            scan_ops: 0,
            duration_secs: 0.0,
            throughput_mops: 0.0,
            validated: false,
            smr: String::new(),
            unreclaimed: 0,
            reclaim_lag: 0,
        };
        let mut seen = 0u32;
        for field in split_top_level(body) {
            let (key, value) = field.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value = value.trim();
            let bit = match key {
                "experiment" => {
                    r.experiment = unquote(value)?;
                    0
                }
                "structure" => {
                    r.structure = unquote(value)?;
                    1
                }
                "threads" => {
                    r.threads = value.parse().ok()?;
                    2
                }
                "key_range" => {
                    r.key_range = value.parse().ok()?;
                    3
                }
                "update_percent" => {
                    r.update_percent = value.parse().ok()?;
                    4
                }
                "zipf" => {
                    r.zipf = value.parse().ok()?;
                    5
                }
                "total_ops" => {
                    r.total_ops = value.parse().ok()?;
                    6
                }
                "scan_ops" => {
                    r.scan_ops = value.parse().ok()?;
                    7
                }
                "duration_secs" => {
                    r.duration_secs = value.parse().ok()?;
                    8
                }
                "throughput_mops" => {
                    r.throughput_mops = value.parse().ok()?;
                    9
                }
                "validated" => {
                    r.validated = value.parse().ok()?;
                    10
                }
                "smr" => {
                    r.smr = unquote(value)?;
                    11
                }
                "unreclaimed" => {
                    r.unreclaimed = value.parse().ok()?;
                    12
                }
                "reclaim_lag" => {
                    r.reclaim_lag = value.parse().ok()?;
                    13
                }
                _ => return None,
            };
            if seen & (1 << bit) != 0 {
                return None; // duplicate field
            }
            seen |= 1 << bit;
        }
        (seen == (1 << FIELD_COUNT) - 1).then_some(r)
    }
}

/// Splits `body` on commas that are not inside a quoted string.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_string => escaped = !escaped,
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                fields.push(&body[start..i]);
                start = i + 1;
            }
            _ => escaped = false,
        }
    }
    fields.push(&body[start..]);
    fields
}

/// Removes surrounding quotes and resolves the escapes produced by
/// [`escape`].
fn unquote(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'u' => {
                let code: String = (&mut chars).take(4).collect();
                out.push(char::from_u32(u32::from_str_radix(&code, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Prints the header of a figure-style table.
pub fn print_figure_header(experiment: &str, description: &str) {
    println!();
    println!("=== {experiment}: {description} ===");
    println!(
        "{:<16} {:>5} {:>8} {:>10} {:>8} {:>8} {:>14} {:>10} {:>11} {:>11} {:>10}",
        "structure",
        "smr",
        "threads",
        "keys",
        "upd%",
        "zipf",
        "ops/us",
        "scans",
        "unreclaimed",
        "rec-lag",
        "valid"
    );
}

/// Prints one result row in the figure-style table and returns the row as a
/// JSON string (one line, suitable for machine parsing).
pub fn print_result_row(r: &BenchResult) -> String {
    println!(
        "{:<16} {:>5} {:>8} {:>10} {:>8} {:>8} {:>14.3} {:>10} {:>11} {:>11} {:>10}",
        r.structure,
        r.smr,
        r.threads,
        r.key_range,
        r.update_percent,
        r.zipf,
        r.throughput_mops,
        r.scan_ops,
        r.unreclaimed,
        r.reclaim_lag,
        if r.validated { "ok" } else { "FAIL" }
    );
    r.to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_round_trips_through_json() {
        let r = BenchResult {
            experiment: "fig12".into(),
            structure: "elim-abtree".into(),
            threads: 8,
            key_range: 10_000,
            update_percent: 100,
            zipf: 1.0,
            total_ops: 123_456,
            scan_ops: 777,
            duration_secs: 1.0,
            throughput_mops: 0.123456,
            validated: true,
            smr: "ebr".into(),
            unreclaimed: 42,
            reclaim_lag: 3,
        };
        let json = r.to_json();
        let back = BenchResult::from_json(&json).unwrap();
        assert_eq!(back.structure, "elim-abtree");
        assert_eq!(back.total_ops, 123_456);
        assert!(back.validated);
        assert_eq!(back, r);
    }

    #[test]
    fn json_escaping_round_trips() {
        let r = BenchResult {
            experiment: "quote\"backslash\\tab\tnewline\n".into(),
            structure: "x".into(),
            threads: 1,
            key_range: 1,
            update_percent: 0,
            zipf: 0.5,
            total_ops: 1,
            scan_ops: 1,
            duration_secs: 0.25,
            throughput_mops: 4.0,
            validated: false,
            smr: "hp".into(),
            unreclaimed: 0,
            reclaim_lag: 0,
        };
        let back = BenchResult::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn truncated_and_malformed_rows_are_rejected() {
        let r = BenchResult {
            experiment: "fig12".into(),
            structure: "x".into(),
            threads: 1,
            key_range: 1,
            update_percent: 0,
            zipf: 0.0,
            total_ops: 1,
            scan_ops: 0,
            duration_secs: 1.0,
            throughput_mops: 1.0,
            validated: true,
            smr: "ebr".into(),
            unreclaimed: 0,
            reclaim_lag: 0,
        };
        let json = r.to_json();
        // Missing fields (truncated log line) must not zero-fill.
        assert!(BenchResult::from_json("{\"experiment\":\"fig14\",\"validated\":true}").is_none());
        // A duplicated field is rejected.
        let dup = format!("{}{}", &json[..json.len() - 1], ",\"threads\":2}");
        assert!(BenchResult::from_json(&dup).is_none());
        // Unknown fields are rejected.
        let extra = format!("{}{}", &json[..json.len() - 1], ",\"bogus\":1}");
        assert!(BenchResult::from_json(&extra).is_none());
        // Non-JSON garbage is rejected.
        assert!(BenchResult::from_json("not json").is_none());
        assert!(BenchResult::from_json("").is_none());
    }

    #[test]
    fn printing_does_not_panic() {
        print_figure_header("fig0", "smoke");
        let r = BenchResult {
            experiment: "fig0".into(),
            structure: "x".into(),
            threads: 1,
            key_range: 1,
            update_percent: 0,
            zipf: 0.0,
            total_ops: 0,
            scan_ops: 0,
            duration_secs: 0.1,
            throughput_mops: 0.0,
            validated: true,
            smr: "none".into(),
            unreclaimed: 0,
            reclaim_lag: 0,
        };
        let json = print_result_row(&r);
        assert!(json.contains("\"structure\":\"x\""));
    }
}
