//! Registry of benchmarkable data structures.
//!
//! Every structure in this repository is driven through the [`Benchable`]
//! trait, which is implemented *blanket-wise* for anything that is both an
//! [`abtree::ConcurrentMap`] and an [`abtree::KeySum`] (the key-sum accessor
//! used by the harness's validation step, paper §6 "Validation").
//!
//! The registry itself is a single data-driven table: one
//! [`StructureDescriptor`] per structure, carrying its name, its
//! volatile/persistent category, whether its range scans are native or the
//! point-lookup fallback ([`ScanSupport`]), and a factory function.
//! Everything else —
//! [`structure_names`], [`make_structure`], the harness, the figure drivers
//! and the Criterion benches — iterates this table.  **Registering a new
//! structure therefore means adding exactly one descriptor line below**
//! (plus `impl abtree::KeySum` next to the structure itself if it does not
//! already have one).

use abebr::{Collector, SmrPolicy};
use abtree::{ConcurrentMap, ElimABTree, KeySum, OccABTree};
use baselines::{CaTree, CowABTree, FpTree, LazySkipList, LockExtBst};
use pabtree::{PElimABTree, POccABTree};

/// A concurrent map that can also report the sum of its keys for validation.
///
/// Implemented automatically for every `ConcurrentMap + KeySum` type; do not
/// implement it by hand.  The harness drives a `Benchable` session-style:
/// each worker thread opens one [`abtree::MapHandle`] via
/// `ConcurrentMap::handle` for its whole run, and `key_sum` is read
/// quiescently after the workers join.
pub trait Benchable: ConcurrentMap + KeySum {}

impl<T: ConcurrentMap + KeySum + ?Sized> Benchable for T {}

/// Whether a structure's contents survive a crash (drives which figures it
/// appears in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureCategory {
    /// DRAM-only structure, compared in Figures 12-16.
    Volatile,
    /// Durably linearizable structure on the persistent-memory model,
    /// compared in Figure 17 and Table 1.
    Persistent,
}

/// How a structure serves `ConcurrentMap::range`.
///
/// This drives two consumers: the scan figure's interpretation (fallback
/// scans pay one point lookup per key in the window) and the `conctest`
/// linearizability checker's model of a scan (only [`Snapshot`] scans are
/// checked as one atomic multi-key read; the other two levels promise only
/// per-element linearizability, so their scans are checked key by key).
///
/// [`Snapshot`]: ScanSupport::Snapshot
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanSupport {
    /// Native ordered traversal that additionally validates node versions,
    /// making the whole result one linearizable snapshot (the (a,b)-trees'
    /// double-collect-and-revalidate protocol).
    Snapshot,
    /// Native ordered traversal of its own layout, per-element linearizable
    /// but *not* an atomic snapshot of the window (e.g. the skiplist's
    /// list-order walk).
    Native,
    /// Uses the default `range`: one `get` per key in the window.
    Fallback,
}

impl ScanSupport {
    /// Whether `range` walks the structure's own layout instead of probing
    /// key by key (true for [`Snapshot`] and [`Native`]).
    ///
    /// [`Snapshot`]: ScanSupport::Snapshot
    /// [`Native`]: ScanSupport::Native
    pub fn is_native(self) -> bool {
        !matches!(self, ScanSupport::Fallback)
    }

    /// Whether a scan's result is guaranteed to be one atomic snapshot of
    /// the window — the property the `conctest` checker verifies jointly
    /// across keys.
    pub fn is_snapshot(self) -> bool {
        matches!(self, ScanSupport::Snapshot)
    }
}

/// One registered data structure: the single source of truth for its
/// benchmark name, category, scan support, and construction.
pub struct StructureDescriptor {
    /// Registry name, matching `ConcurrentMap::name()` of the built value.
    pub name: &'static str,
    /// Volatile or persistent.
    pub category: StructureCategory,
    /// Native or fallback range scans.
    pub scan: ScanSupport,
    /// Builds a fresh, empty instance reclaiming under the given SMR
    /// policy.  Structures without a reclamation collector (the FPtree)
    /// ignore the policy.
    pub factory: fn(SmrPolicy) -> Box<dyn Benchable>,
}

use ScanSupport::{Fallback, Native, Snapshot};
use StructureCategory::{Persistent, Volatile};

/// Factory helper: builds `T` on a collector running the requested SMR
/// backend.  Turbofishing the concrete type pins generic defaults (e.g. the
/// MCS lock), which a bare closure would leave unconstrained.
macro_rules! smr_factory {
    ($ty:ty) => {{
        fn build(policy: SmrPolicy) -> Box<dyn Benchable> {
            Box::new(<$ty>::with_collector(Collector::with_policy(policy)))
        }
        build
    }};
}

/// Factory helper for structures that do not reclaim through a collector:
/// builds the default instance whatever the requested policy.
fn boxed_no_smr<T: Benchable + Default + 'static>(_policy: SmrPolicy) -> Box<dyn Benchable> {
    Box::new(T::default())
}

/// The descriptor table.  Order is presentation order in the figures:
/// volatile structures first (Figures 12-16), then the persistent ones
/// (Figure 17, Table 1).
pub static STRUCTURES: &[StructureDescriptor] = &[
    StructureDescriptor {
        name: "elim-abtree",
        category: Volatile,
        scan: Snapshot,
        factory: smr_factory!(ElimABTree),
    },
    StructureDescriptor {
        name: "occ-abtree",
        category: Volatile,
        scan: Snapshot,
        factory: smr_factory!(OccABTree),
    },
    StructureDescriptor {
        name: "catree",
        category: Volatile,
        scan: Fallback,
        factory: smr_factory!(CaTree),
    },
    StructureDescriptor {
        name: "lf-abtree(cow)",
        category: Volatile,
        scan: Native,
        factory: smr_factory!(CowABTree),
    },
    StructureDescriptor {
        name: "ext-bst-lock",
        category: Volatile,
        scan: Fallback,
        factory: smr_factory!(LockExtBst),
    },
    StructureDescriptor {
        name: "skiplist-lazy",
        category: Volatile,
        scan: Native,
        factory: smr_factory!(LazySkipList),
    },
    StructureDescriptor {
        name: "p-elim-abtree",
        category: Persistent,
        scan: Snapshot,
        factory: smr_factory!(PElimABTree),
    },
    StructureDescriptor {
        name: "p-occ-abtree",
        category: Persistent,
        scan: Snapshot,
        factory: smr_factory!(POccABTree),
    },
    StructureDescriptor {
        name: "fptree",
        category: Persistent,
        scan: Fallback,
        factory: boxed_no_smr::<FpTree>,
    },
];

/// Every structure name known to the registry, in table order.
pub fn structure_names() -> Vec<&'static str> {
    STRUCTURES.iter().map(|d| d.name).collect()
}

/// Names of the structures in `category`, in table order.
pub fn names_in(category: StructureCategory) -> Vec<&'static str> {
    STRUCTURES
        .iter()
        .filter(|d| d.category == category)
        .map(|d| d.name)
        .collect()
}

/// Volatile structures compared in Figures 12-16.
pub fn volatile_structures() -> Vec<&'static str> {
    names_in(Volatile)
}

/// Persistent structures compared in Figure 17 and Table 1.
pub fn persistent_structures() -> Vec<&'static str> {
    names_in(Persistent)
}

/// Looks up the descriptor registered under `name`.
pub fn descriptor(name: &str) -> Option<&'static StructureDescriptor> {
    STRUCTURES.iter().find(|d| d.name == name)
}

/// How the structure registered under `name` serves range scans.
pub fn scan_support(name: &str) -> Option<ScanSupport> {
    descriptor(name).map(|d| d.scan)
}

/// Names of the structures with a native `range` implementation (snapshot
/// or per-element), in table order.
pub fn native_scan_structures() -> Vec<&'static str> {
    STRUCTURES
        .iter()
        .filter(|d| d.scan.is_native())
        .map(|d| d.name)
        .collect()
}

/// Names of the volatile structures eligible for the scan figure (fig18):
/// volatile *and* native-scan, in table order.  Structures whose scans fall
/// back to per-key point probes ([`ScanSupport::Fallback`]) are excluded —
/// a fallback "scan" measures the point-lookup loop, not a scan, and
/// reporting it alongside real scan numbers is the garbage-data cliff the
/// figure driver skips with a `scan-unsupported` note instead.
pub fn scan_benchmark_structures() -> Vec<&'static str> {
    STRUCTURES
        .iter()
        .filter(|d| d.category == StructureCategory::Volatile && d.scan.is_native())
        .map(|d| d.name)
        .collect()
}

/// Names of the structures whose scans are atomic snapshots, in table
/// order — the set the `conctest` checker holds to joint scan atomicity.
pub fn snapshot_scan_structures() -> Vec<&'static str> {
    STRUCTURES
        .iter()
        .filter(|d| d.scan.is_snapshot())
        .map(|d| d.name)
        .collect()
}

/// Instantiates a structure by name under the default SMR policy (EBR).
/// Panics on unknown names.
pub fn make_structure(name: &str) -> Box<dyn Benchable> {
    make_structure_smr(name, SmrPolicy::default())
}

/// Instantiates a structure by name with its reclamation collector running
/// the given SMR backend (`--smr={ebr,hp}` in the harness binaries).
/// Structures that do not reclaim through a collector ignore the policy.
/// Panics on unknown names.
pub fn make_structure_smr(name: &str, policy: SmrPolicy) -> Box<dyn Benchable> {
    match descriptor(name) {
        Some(d) => (d.factory)(policy),
        None => panic!("unknown data structure: {name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_builds_every_structure() {
        for name in structure_names() {
            let s = make_structure(name);
            let mut session = s.handle();
            assert_eq!(session.insert(1, 2), None);
            assert_eq!(session.get(1), Some(2));
            drop(session);
            assert_eq!(s.name(), name);
        }
    }

    /// Every registry structure must run under both SMR backends: build it
    /// per policy, do a small update/read/delete workload that forces
    /// retirements, and check the collector actually runs the requested
    /// backend (where the structure has one).
    #[test]
    fn registry_builds_every_structure_under_both_smr_policies() {
        for policy in SmrPolicy::ALL {
            for name in structure_names() {
                let s = make_structure_smr(name, policy);
                let mut session = s.handle();
                for k in 1..200u64 {
                    assert_eq!(session.insert(k, k * 3), None, "{name}/{policy}");
                }
                for k in 1..200u64 {
                    assert_eq!(session.get(k), Some(k * 3), "{name}/{policy}");
                }
                for k in 1..200u64 {
                    assert_eq!(session.delete(k), Some(k * 3), "{name}/{policy}");
                }
                drop(session);
                // The reclamation gauges must stay scrapeable per backend
                // (not every structure retires in this small workload —
                // e.g. the CA tree only retires on adaptation).
                if let Some(stats) = s.ebr_stats() {
                    assert!(stats.freed <= stats.retired, "{name}/{policy}");
                }
            }
        }
    }

    /// The round-trip property of the descriptor table: every name resolves
    /// back to its own descriptor, constructs a structure reporting that
    /// name, and names are unique.
    #[test]
    fn descriptor_table_round_trips() {
        let mut seen = HashSet::new();
        for d in STRUCTURES {
            assert!(seen.insert(d.name), "duplicate registry name: {}", d.name);
            let built = (d.factory)(SmrPolicy::default());
            assert_eq!(
                built.name(),
                d.name,
                "descriptor name and ConcurrentMap::name() disagree"
            );
            let via_lookup = make_structure(d.name);
            assert_eq!(via_lookup.name(), d.name);
            assert_eq!(
                descriptor(d.name).unwrap().category,
                d.category,
                "descriptor lookup returned a different entry"
            );
        }
        assert_eq!(seen.len(), STRUCTURES.len());
    }

    /// Volatile/persistent categorisation must match the split the figure
    /// drivers rely on: fig17/table1 run exactly the persistent set, the
    /// microbenchmark figures exactly the volatile set, and together they
    /// partition the registry.
    #[test]
    fn categories_partition_the_registry() {
        let volatile = volatile_structures();
        let persistent = persistent_structures();
        assert_eq!(
            persistent,
            vec!["p-elim-abtree", "p-occ-abtree", "fptree"],
            "fig17/table1 persistent set changed"
        );
        assert_eq!(volatile.len() + persistent.len(), STRUCTURES.len());
        let all: HashSet<_> = structure_names().into_iter().collect();
        let split: HashSet<_> = volatile.iter().chain(persistent.iter()).copied().collect();
        assert_eq!(all, split);
        assert!(volatile.iter().all(|n| !persistent.contains(n)));
    }

    #[test]
    #[should_panic(expected = "no-such-tree")]
    fn unknown_name_panics_with_message() {
        make_structure("no-such-tree");
    }

    /// The scan-support column the figure drivers, docs and the `conctest`
    /// checker rely on: the (a,b)-tree family, the skiplist and the COW tree
    /// walk their own layouts; the remaining baselines use the point-lookup
    /// fallback; and of the native set, exactly the (a,b)-trees (which
    /// validate leaf versions) promise atomic snapshots.
    #[test]
    fn scan_support_metadata() {
        assert_eq!(
            native_scan_structures(),
            vec![
                "elim-abtree",
                "occ-abtree",
                "lf-abtree(cow)",
                "skiplist-lazy",
                "p-elim-abtree",
                "p-occ-abtree",
            ]
        );
        assert_eq!(
            snapshot_scan_structures(),
            vec!["elim-abtree", "occ-abtree", "p-elim-abtree", "p-occ-abtree"],
            "the set conctest checks for joint scan atomicity"
        );
        assert_eq!(
            scan_benchmark_structures(),
            vec!["elim-abtree", "occ-abtree", "lf-abtree(cow)", "skiplist-lazy"],
            "the fig18-eligible set: volatile AND native-scan"
        );
        assert_eq!(scan_support("catree"), Some(ScanSupport::Fallback));
        assert_eq!(scan_support("elim-abtree"), Some(ScanSupport::Snapshot));
        assert_eq!(scan_support("skiplist-lazy"), Some(ScanSupport::Native));
        assert_eq!(scan_support("no-such-tree"), None);
        assert!(ScanSupport::Snapshot.is_native() && ScanSupport::Snapshot.is_snapshot());
        assert!(ScanSupport::Native.is_native() && !ScanSupport::Native.is_snapshot());
        assert!(!ScanSupport::Fallback.is_native() && !ScanSupport::Fallback.is_snapshot());
        // Whatever the support level, every structure must answer scans.
        let mut out = Vec::new();
        for d in STRUCTURES {
            let s = (d.factory)(SmrPolicy::default());
            let mut session = s.handle();
            for k in [2u64, 3, 5, 8, 13] {
                session.insert(k, k * 10);
            }
            session.range(3, 8, &mut out);
            assert_eq!(out, vec![(3, 30), (5, 50), (8, 80)], "{}", d.name);
            assert_eq!(session.scan_len(0, 14), 5, "{}", d.name);
        }
    }
}
