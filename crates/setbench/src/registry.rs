//! Registry of benchmarkable data structures.
//!
//! Every structure in this repository is driven through the [`Benchable`]
//! trait, which extends [`abtree::ConcurrentMap`] with the key-sum accessor
//! used by the harness's validation step (paper §6 "Validation").

use abtree::{ConcurrentMap, ElimABTree, OccABTree};
use baselines::{CaTree, CowABTree, FpTree, LazySkipList, LockExtBst};
use pabtree::{PElimABTree, POccABTree};

/// A concurrent map that can also report the sum of its keys for validation.
pub trait Benchable: ConcurrentMap {
    /// Sum of all keys currently stored (quiescent only).
    fn key_sum(&self) -> u128;
}

impl Benchable for OccABTree {
    fn key_sum(&self) -> u128 {
        OccABTree::key_sum(self)
    }
}
impl Benchable for ElimABTree {
    fn key_sum(&self) -> u128 {
        ElimABTree::key_sum(self)
    }
}
impl Benchable for POccABTree {
    fn key_sum(&self) -> u128 {
        POccABTree::key_sum(self)
    }
}
impl Benchable for PElimABTree {
    fn key_sum(&self) -> u128 {
        PElimABTree::key_sum(self)
    }
}
impl Benchable for CaTree {
    fn key_sum(&self) -> u128 {
        CaTree::key_sum(self)
    }
}
impl Benchable for LockExtBst {
    fn key_sum(&self) -> u128 {
        LockExtBst::key_sum(self)
    }
}
impl Benchable for CowABTree {
    fn key_sum(&self) -> u128 {
        CowABTree::key_sum(self)
    }
}
impl Benchable for FpTree {
    fn key_sum(&self) -> u128 {
        FpTree::key_sum(self)
    }
}
impl Benchable for LazySkipList {
    fn key_sum(&self) -> u128 {
        LazySkipList::key_sum(self)
    }
}

/// Volatile structures compared in Figures 12-16.
pub const VOLATILE_STRUCTURES: &[&str] = &[
    "elim-abtree",
    "occ-abtree",
    "catree",
    "lf-abtree(cow)",
    "ext-bst-lock",
    "skiplist-lazy",
];

/// Persistent structures compared in Figure 17 and Table 1.
pub const PERSISTENT_STRUCTURES: &[&str] = &["p-elim-abtree", "p-occ-abtree", "fptree"];

/// Every structure name known to the registry.
pub fn structure_names() -> Vec<&'static str> {
    let mut v = VOLATILE_STRUCTURES.to_vec();
    v.extend_from_slice(PERSISTENT_STRUCTURES);
    v
}

/// Instantiates a structure by name.  Panics on unknown names.
pub fn make_structure(name: &str) -> Box<dyn Benchable> {
    match name {
        "occ-abtree" => Box::new(OccABTree::new()),
        "elim-abtree" => Box::new(ElimABTree::new()),
        "p-occ-abtree" => Box::new(POccABTree::new()),
        "p-elim-abtree" => Box::new(PElimABTree::new()),
        "catree" => Box::new(CaTree::new()),
        "ext-bst-lock" => Box::new(LockExtBst::new()),
        "skiplist-lazy" => Box::new(LazySkipList::new()),
        "lf-abtree(cow)" => Box::new(CowABTree::new()),
        "fptree" => Box::new(FpTree::new()),
        other => panic!("unknown data structure: {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_builds_every_structure() {
        for name in structure_names() {
            let s = make_structure(name);
            assert_eq!(s.insert(1, 2), None);
            assert_eq!(s.get(1), Some(2));
            assert_eq!(s.name(), name);
        }
    }
}
