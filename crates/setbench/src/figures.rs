//! Per-figure / per-table experiment drivers.
//!
//! Each function regenerates one figure or table of the paper's evaluation
//! (§6) as a text table of throughput numbers (operations per microsecond,
//! the paper's y-axis unit), plus one JSON line per cell on stderr for
//! machine consumption.  The driver binaries in `src/bin/` call these with
//! full-scale parameters; the Criterion benches call the same harness with
//! scaled-down grids.

use std::time::Duration;

use crate::harness::{run_microbench, run_ycsb, MicrobenchConfig, YcsbConfig};
use crate::registry::{persistent_structures, volatile_structures};
use crate::report::{print_figure_header, print_result_row, BenchResult};

/// Default thread counts for scaling sweeps on this machine: 1, 2, 4, ...,
/// up to the number of logical CPUs.
pub fn default_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize];
    let mut c = 2;
    while c < max {
        counts.push(c);
        c *= 2;
    }
    if *counts.last().unwrap() != max {
        counts.push(max);
    }
    counts
}

/// Parameters shared by the microbenchmark figures (12-15).
#[derive(Debug, Clone)]
pub struct FigureParams {
    /// Experiment label (e.g. `"fig14"`).
    pub experiment: String,
    /// Key range.
    pub key_range: u64,
    /// Zipf parameters (the paper plots uniform = 0 and Zipf = 1 columns).
    pub zipfs: Vec<f64>,
    /// Update percentages (the paper plots 100, 50, 20, 5 rows).
    pub update_percents: Vec<u32>,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Measured-phase length per cell.
    pub duration: Duration,
    /// Structures to run.
    pub structures: Vec<String>,
}

impl FigureParams {
    /// The paper's microbenchmark grid (Figures 12-15) for a given key range,
    /// with a configurable per-cell duration.
    pub fn microbench(experiment: &str, key_range: u64, duration: Duration) -> Self {
        Self {
            experiment: experiment.to_string(),
            key_range,
            zipfs: vec![0.0, 1.0],
            update_percents: vec![100, 50, 20, 5],
            threads: default_thread_counts(),
            duration,
            structures: volatile_structures().iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Runs one of the SetBench microbenchmark figures (Figure 12, 13, 14 or 15,
/// depending on `key_range`).
pub fn run_microbench_figure(params: &FigureParams) -> Vec<BenchResult> {
    let mut results = Vec::new();
    for &zipf in &params.zipfs {
        for &update_percent in &params.update_percents {
            print_figure_header(
                &params.experiment,
                &format!(
                    "{} keys, {}% updates, {} distribution",
                    params.key_range,
                    update_percent,
                    if zipf == 0.0 {
                        "uniform".to_string()
                    } else {
                        format!("Zipf({zipf})")
                    }
                ),
            );
            for structure in &params.structures {
                for &threads in &params.threads {
                    let cfg = MicrobenchConfig {
                        structure: structure.clone(),
                        key_range: params.key_range,
                        update_percent,
                        zipf,
                        threads,
                        duration: params.duration,
                        seed: 0xD1CE,
                        ..Default::default()
                    };
                    let mut r = run_microbench(&cfg);
                    r.experiment = params.experiment.clone();
                    let json = print_result_row(&r);
                    eprintln!("{json}");
                    results.push(r);
                }
            }
        }
    }
    results
}

/// Figure 16: YCSB Workload A throughput sweep.
pub fn run_ycsb_figure(
    records: u64,
    threads: &[usize],
    duration: Duration,
    structures: &[String],
) -> Vec<BenchResult> {
    let mut results = Vec::new();
    print_figure_header(
        "fig16",
        &format!("YCSB Workload A, {records} records, request Zipf 0.5"),
    );
    for structure in structures {
        for &t in threads {
            let cfg = YcsbConfig {
                structure: structure.clone(),
                records,
                zipf: 0.5,
                threads: t,
                duration,
                seed: 0xFEED,
                ..Default::default()
            };
            let mut r = run_ycsb(&cfg);
            r.experiment = "fig16".into();
            let json = print_result_row(&r);
            eprintln!("{json}");
            results.push(r);
        }
    }
    results
}

/// Figure 18: scan throughput under YCSB Workload E (95% scans / 5%
/// inserts), sweeping the scan-length upper bound against the thread count.
///
/// Structures without a native scan ([`crate::ScanSupport::Fallback`]) are
/// reported as `scan-unsupported` and **skipped**: their default `range` is
/// one point probe per key in the window, so a "scan throughput" cell for
/// them would record the point-lookup loop and silently fall off a cliff in
/// the figure rather than measure anything scan-shaped.  Each skip prints a
/// table note and emits a JSON row (`"skipped": "scan-unsupported"`) on
/// stderr so the sweep's coverage stays explicit; no [`BenchResult`] is
/// produced for skipped cells.
pub fn run_scan_figure(
    records: u64,
    scan_lens: &[u64],
    threads: &[usize],
    duration: Duration,
    structures: &[String],
) -> Vec<BenchResult> {
    let mut results = Vec::new();
    for &max_scan_len in scan_lens {
        print_figure_header(
            "fig18",
            &format!(
                "YCSB Workload E, {records} records, scan lengths 1..={max_scan_len}, \
                 request Zipf 0.5"
            ),
        );
        for structure in structures {
            if crate::registry::scan_support(structure)
                .is_some_and(|support| !support.is_native())
            {
                println!(
                    "  {structure}: scan-unsupported (point-probe fallback), skipped"
                );
                eprintln!(
                    "{{\"experiment\": \"fig18\", \"structure\": \"{structure}\", \
                     \"skipped\": \"scan-unsupported\"}}"
                );
                continue;
            }
            for &t in threads {
                let cfg = YcsbConfig {
                    structure: structure.clone(),
                    kind: workload::YcsbWorkloadKind::E,
                    records,
                    zipf: 0.5,
                    max_scan_len,
                    threads: t,
                    duration,
                    seed: 0x5CA7,
                    ..Default::default()
                };
                let mut r = run_ycsb(&cfg);
                r.experiment = "fig18".into();
                let json = print_result_row(&r);
                eprintln!("{json}");
                results.push(r);
            }
        }
    }
    results
}

/// Figure 17: persistent trees (p-OCC, p-Elim, FPTree-like) at 1M keys and
/// 50% updates, uniform and Zipf(1).
pub fn run_persistence_figure(
    key_range: u64,
    threads: &[usize],
    duration: Duration,
) -> Vec<BenchResult> {
    abpmem::set_mode(abpmem::PersistMode::Real);
    let mut results = Vec::new();
    for &zipf in &[0.0, 1.0] {
        print_figure_header(
            "fig17",
            &format!(
                "persistent trees, {key_range} keys, 50% updates, {}",
                if zipf == 0.0 { "uniform" } else { "Zipf(1)" }
            ),
        );
        for structure in persistent_structures() {
            for &t in threads {
                let cfg = MicrobenchConfig {
                    structure: structure.to_string(),
                    key_range,
                    update_percent: 50,
                    zipf,
                    threads: t,
                    duration,
                    seed: 0xCAFE,
                    ..Default::default()
                };
                let mut r = run_microbench(&cfg);
                r.experiment = "fig17".into();
                let json = print_result_row(&r);
                eprintln!("{json}");
                results.push(r);
            }
        }
    }
    abpmem::set_mode(abpmem::PersistMode::CountOnly);
    results
}

/// Table 1: change in throughput upon enabling persistence, at the maximum
/// thread count, 1M keys, update rates {100, 50, 10}%, uniform and Zipf(1).
/// Returns `(volatile, persistent, overhead_percent)` rows.
pub fn run_persistence_overhead_table(
    key_range: u64,
    threads: usize,
    duration: Duration,
) -> Vec<(BenchResult, BenchResult, f64)> {
    let pairs = [("occ-abtree", "p-occ-abtree"), ("elim-abtree", "p-elim-abtree")];
    let mut rows = Vec::new();
    println!();
    println!("=== table1: persistence overhead ({threads} threads, {key_range} keys) ===");
    println!(
        "{:<16} {:>8} {:>8} {:>14} {:>14} {:>10}",
        "structure", "zipf", "upd%", "volatile op/us", "durable op/us", "overhead"
    );
    for &zipf in &[0.0, 1.0] {
        for &update_percent in &[100u32, 50, 10] {
            for (volatile, durable) in pairs {
                abpmem::set_mode(abpmem::PersistMode::NoOp);
                let v = run_microbench(&MicrobenchConfig {
                    structure: volatile.to_string(),
                    key_range,
                    update_percent,
                    zipf,
                    threads,
                    duration,
                    seed: 0xAB1E,
                    ..Default::default()
                });
                abpmem::set_mode(abpmem::PersistMode::Real);
                let p = run_microbench(&MicrobenchConfig {
                    structure: durable.to_string(),
                    key_range,
                    update_percent,
                    zipf,
                    threads,
                    duration,
                    seed: 0xAB1E,
                    ..Default::default()
                });
                abpmem::set_mode(abpmem::PersistMode::CountOnly);
                let overhead = (p.throughput_mops - v.throughput_mops) / v.throughput_mops * 100.0;
                println!(
                    "{:<16} {:>8} {:>8} {:>14.3} {:>14.3} {:>9.1}%",
                    durable, zipf, update_percent, v.throughput_mops, p.throughput_mops, overhead
                );
                rows.push((v, p, overhead));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_are_increasing_and_bounded() {
        let counts = default_thread_counts();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        let max = std::thread::available_parallelism().unwrap().get();
        assert_eq!(*counts.last().unwrap(), max);
    }

    #[test]
    fn tiny_figure_run_produces_rows() {
        let params = FigureParams {
            experiment: "fig-test".into(),
            key_range: 500,
            zipfs: vec![0.0],
            update_percents: vec![100],
            threads: vec![2],
            duration: Duration::from_millis(30),
            structures: vec!["elim-abtree".into(), "catree".into()],
        };
        let results = run_microbench_figure(&params);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.validated));
    }

    #[test]
    fn tiny_scan_figure_run_counts_scans() {
        let structures = vec!["elim-abtree".to_string(), "skiplist-lazy".to_string()];
        let results = run_scan_figure(500, &[8], &[2], Duration::from_millis(40), &structures);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.experiment, "fig18");
            assert!(r.validated, "{} failed validation", r.structure);
            assert!(r.scan_ops > 0, "{} completed no scans", r.structure);
            assert!(r.scan_ops <= r.total_ops);
        }
    }

    /// Fallback-scan structures must produce *no* fig18 row (not a garbage
    /// point-probe row): the sweep reports them as scan-unsupported and
    /// moves on.
    #[test]
    fn scan_figure_skips_fallback_structures() {
        let structures = vec!["elim-abtree".to_string(), "catree".to_string()];
        let results = run_scan_figure(500, &[8], &[1], Duration::from_millis(30), &structures);
        assert_eq!(results.len(), 1, "the fallback structure is skipped");
        assert_eq!(results[0].structure, "elim-abtree");
        assert!(results[0].scan_ops > 0);
    }

    #[test]
    fn tiny_table1_run() {
        let rows = run_persistence_overhead_table(2_000, 2, Duration::from_millis(30));
        // 2 zipfs x 3 update rates x 2 tree pairs.
        assert_eq!(rows.len(), 12);
        for (v, p, _) in &rows {
            assert!(v.validated && p.validated);
        }
    }
}
