//! Driver for Table 1: change in throughput upon enabling persistence
//! (volatile OCC/Elim-ABtree vs durable p-OCC/p-Elim-ABtree), at the maximum
//! thread count, 1M keys, update rates {100, 50, 10}%, uniform and Zipf(1).
//!
//! Usage:
//!   cargo run -p setbench --release --bin table1_overhead -- \[keys\] \[seconds-per-cell\]
//!   cargo run -p setbench --release --bin table1_overhead -- --smoke
//!
//! `--smoke` runs the same volatile/durable pairings over 2k keys, two
//! threads, and 50ms cells so CI exercises the full table path in seconds.

use std::time::Duration;

use setbench::{default_thread_counts, run_persistence_overhead_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let rows = if smoke {
        run_persistence_overhead_table(2_000, 2, Duration::from_millis(50))
    } else {
        let keys: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
        let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);
        let threads = *default_thread_counts().last().unwrap();
        run_persistence_overhead_table(keys, threads, Duration::from_secs_f64(secs))
    };
    assert!(!rows.is_empty(), "table produced no rows");
}
