//! Before/after microbenchmark for the per-thread session-handle API.
//!
//! Runs the same single-threaded 50%-update mix over a prefilled tree two
//! ways and reports both throughputs as JSON rows (the repository keeps one
//! run checked in as `BENCH_handles.json`, next to `BENCH_scans.json`):
//!
//! * `mode = "per-op-session"` — every operation goes through the deprecated
//!   [`abtree::LegacyMap`] compat shim, which opens (and drops) a session
//!   per call.  Note this is the cost of the *compat path*, not an exact
//!   reconstruction of the pre-handle code: the old API paid a
//!   thread-registry-lookup pin per op, while the shim additionally pays a
//!   slot registration per call, so the ratio bounds the old cost from
//!   above.
//! * `mode = "session-handle"` — one [`abtree::MapHandle`] session for the
//!   whole run; per-op pinning is a local epoch announcement.
//!
//! Usage:
//!   cargo run -p setbench --release --bin bench_handles -- \[ops\]
//!   cargo run -p setbench --release --bin bench_handles -- --smoke

use std::time::Instant;

use rand::prelude::*;
use setbench::make_structure;

#[allow(deprecated)]
use abtree::LegacyMap;

const KEY_RANGE: u64 = 100_000;

/// One measured pass; returns (ops, elapsed seconds).
fn run(structure: &str, ops: u64, per_op_session: bool) -> (u64, f64) {
    let map = make_structure(structure);
    // Prefill to half the key range through a session.
    {
        let mut session = map.handle();
        let mut rng = StdRng::seed_from_u64(0x5EED);
        workload::prefill(&mut rng, KEY_RANGE, KEY_RANGE / 2, |k, v| {
            session.insert(k, v).is_none()
        });
    }

    let mut rng = StdRng::seed_from_u64(0xBE7C);
    let started = Instant::now();
    if per_op_session {
        #[allow(deprecated)]
        for _ in 0..ops {
            let key = rng.gen_range(0..KEY_RANGE);
            match rng.gen_range(0..4u32) {
                0 => {
                    std::hint::black_box(LegacyMap::insert(&*map, key, key));
                }
                1 => {
                    std::hint::black_box(LegacyMap::delete(&*map, key));
                }
                _ => {
                    std::hint::black_box(LegacyMap::get(&*map, key));
                }
            }
        }
    } else {
        let mut session = map.handle();
        for _ in 0..ops {
            let key = rng.gen_range(0..KEY_RANGE);
            match rng.gen_range(0..4u32) {
                0 => {
                    std::hint::black_box(session.insert(key, key));
                }
                1 => {
                    std::hint::black_box(session.delete(key));
                }
                _ => {
                    std::hint::black_box(session.get(key));
                }
            }
        }
    }
    (ops, started.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ops: u64 = if smoke {
        50_000
    } else {
        args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2_000_000)
    };

    println!(
        "{:<14} {:>18} {:>16} {:>9}",
        "structure", "per-op-session", "session-handle", "speedup"
    );
    for structure in ["elim-abtree", "occ-abtree"] {
        let mut mops = [0.0f64; 2];
        for (i, per_op_session) in [(0, true), (1, false)] {
            let mode = if per_op_session {
                "per-op-session"
            } else {
                "session-handle"
            };
            let (done, secs) = run(structure, ops, per_op_session);
            mops[i] = done as f64 / secs / 1e6;
            eprintln!(
                "{{\"experiment\":\"handles\",\"structure\":\"{structure}\",\"mode\":\"{mode}\",\
                 \"threads\":1,\"key_range\":{KEY_RANGE},\"total_ops\":{done},\
                 \"duration_secs\":{secs},\"throughput_mops\":{}}}",
                mops[i]
            );
        }
        println!(
            "{:<14} {:>13.3} mops {:>11.3} mops {:>8.2}x",
            structure,
            mops[0],
            mops[1],
            mops[1] / mops[0]
        );
    }
}
