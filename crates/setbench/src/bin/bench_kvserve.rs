//! Closed-loop load driver for the `kvserve` service layer.
//!
//! Three experiments, all emitting one JSON row per cell on stderr (the
//! repository keeps recorded runs checked in as `BENCH_kvserve.json` and
//! `BENCH_kvserve_saturation.json`):
//!
//! * `experiment = "kvserve"` — a multi-tenant service sweep: shard counts x
//!   registry structures, driven by a two-level Zipfian workload
//!   ([`workload::TenantKeyDistribution`]: hot tenants, hot keys within each
//!   tenant) whose skew concentrates traffic on a few shards (the hot-shard
//!   regime).  The request mix includes scans and batched `MGet`/`MPut`
//!   requests; every cell is validated with the cross-shard key-sum check.
//! * `experiment = "kvserve-mget"` — the batching payoff: the *same* router
//!   serves the same Zipfian key stream as single `get`s and as 16-key
//!   `mget` batches, and the two key throughputs are compared (the batched
//!   path must win — it amortizes dispatch, latency sampling and stats over
//!   the batch).
//! * `experiment = "kvserve_saturation"` — the pipelining curve: each client
//!   keeps a fixed window of point requests in flight through the router's
//!   `submit`/`collect` interface, sweeping the window from 1 (the blocking
//!   regime) to the lane capacity.  Throughput rises with the window as the
//!   shard owners batch whatever has queued per wakeup, while p99 latency
//!   climbs with queueing delay — the in-flight vs p99 saturation curve.
//!   Shed submissions (full lane) are retried after collecting the oldest
//!   reply and reported per cell.
//!
//! Usage:
//!   cargo run -p setbench --release --bin bench_kvserve -- \[requests\] \[--threads N\]
//!   cargo run -p setbench --release --bin bench_kvserve -- --smoke

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use kvserve::{KvService, Namespace, Request, Response, ShardStore};
use rand::prelude::*;
use setbench::make_structure;
use workload::{Operation, OperationMix, TenantKeyDistribution};

/// Keys per batched MGet/MPut request.
const BATCH: usize = 16;
/// Key window of each scan request.
const SCAN_LEN: u64 = 32;
/// Tenants in the service sweep (and namespace-stat slots).
const TENANTS: u16 = 4;

/// Builds a service whose shards are registry structures.
fn service_of(structure: &str, shards: usize) -> KvService {
    KvService::new(shards, TENANTS as usize, |_| {
        let shard: Box<dyn ShardStore> = Box::new(make_structure(structure));
        shard
    })
}

/// Prefills every tenant's key space to half full through one router,
/// returning the key-sum of everything inserted.
fn prefill(service: &KvService, keys_per_tenant: u64, seed: u64) -> i128 {
    let mut router = service.router();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(BATCH);
    let mut results = Vec::new();
    let mut sum = 0i128;
    for tenant in 0..TENANTS {
        let ns = Namespace::new(tenant);
        let mut inserted = 0u64;
        while inserted < keys_per_tenant / 2 {
            pairs.clear();
            for _ in 0..BATCH {
                pairs.push((ns.prefixed(rng.gen_range(0..keys_per_tenant)), 1));
            }
            router.mput(&pairs, &mut results);
            for (&(key, _), prev) in pairs.iter().zip(&results) {
                if prev.is_none() {
                    inserted += 1;
                    sum += key as i128;
                }
            }
        }
    }
    sum
}

struct CellResult {
    requests: u64,
    keys: u64,
    secs: f64,
    validated: bool,
}

/// One measured cell: `threads` workers drive `requests_per_thread`
/// requests each through per-worker routers.
fn run_cell(
    service: &Arc<KvService>,
    keys_per_tenant: u64,
    threads: usize,
    requests_per_thread: u64,
    prefill_sum: i128,
    seed: u64,
) -> CellResult {
    // Hot tenants (zipf 1) and hot keys within each tenant (zipf 1): the
    // high-skew service regime, which also concentrates load on the shards
    // the hottest packed keys hash to.
    let dist = TenantKeyDistribution::new(TENANTS, 1.0, keys_per_tenant, 1.0);
    // 20% point updates, 60% gets, 5% scans, 10% mget / 5% mput batches.
    let mix = OperationMix::from_shares(20, 5, 10, 5);
    let started = Instant::now();
    let mut net = 0i128;
    let mut requests = 0u64;
    let mut keys = 0u64;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let service = Arc::clone(service);
            let dist = dist.clone();
            workers.push(scope.spawn(move || {
                let mut router = service.router();
                let mut rng = StdRng::seed_from_u64(seed ^ (0xD00D + 77 * t));
                let mut batch_keys = Vec::with_capacity(BATCH);
                let mut batch_pairs = Vec::with_capacity(BATCH);
                let mut results = Vec::new();
                let mut scan_buf = Vec::new();
                let mut net = 0i128;
                let mut keys = 0u64;
                for _ in 0..requests_per_thread {
                    let (tenant, key) = dist.sample(&mut rng);
                    let packed = Namespace::new(tenant).prefixed(key);
                    match mix.sample(&mut rng) {
                        Operation::Insert => {
                            if router.put(packed, 1).is_none() {
                                net += packed as i128;
                            }
                            keys += 1;
                        }
                        Operation::Delete => {
                            if router.delete(packed).is_some() {
                                net -= packed as i128;
                            }
                            keys += 1;
                        }
                        Operation::Find => {
                            std::hint::black_box(router.get(packed));
                            keys += 1;
                        }
                        Operation::Scan => {
                            router.scan(packed, SCAN_LEN, &mut scan_buf);
                            std::hint::black_box(scan_buf.len());
                            keys += SCAN_LEN;
                        }
                        Operation::MGet => {
                            batch_keys.clear();
                            batch_keys.push(packed);
                            for _ in 1..BATCH {
                                let (t, k) = dist.sample(&mut rng);
                                batch_keys.push(Namespace::new(t).prefixed(k));
                            }
                            router.mget(&batch_keys, &mut results);
                            keys += BATCH as u64;
                        }
                        Operation::MPut => {
                            batch_pairs.clear();
                            batch_pairs.push((packed, 1));
                            for _ in 1..BATCH {
                                let (t, k) = dist.sample(&mut rng);
                                batch_pairs.push((Namespace::new(t).prefixed(k), 1));
                            }
                            router.mput(&batch_pairs, &mut results);
                            for (&(k, _), prev) in batch_pairs.iter().zip(&results) {
                                if prev.is_none() {
                                    net += k as i128;
                                }
                            }
                            keys += BATCH as u64;
                        }
                    }
                }
                (net, keys)
            }));
        }
        for worker in workers {
            let (worker_net, worker_keys) = worker.join().expect("worker panicked");
            net += worker_net;
            keys += worker_keys;
            requests += requests_per_thread;
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let validated = service.key_sum() as i128 == prefill_sum + net;
    CellResult {
        requests,
        keys,
        secs,
        validated,
    }
}

/// Same router, same Zipfian key stream: `total_keys` lookups as single
/// gets, then as `BATCH`-key mgets.  Returns (single, batched) throughput
/// in keys/us.
fn mget_comparison(structure: &str, shards: usize, total_keys: u64, seed: u64) -> (f64, f64) {
    let service = service_of(structure, shards);
    let keys_per_tenant = 25_000u64;
    prefill(&service, keys_per_tenant, seed);
    let dist = TenantKeyDistribution::new(TENANTS, 1.0, keys_per_tenant, 1.0);
    let mut router = service.router();

    // Pre-draw the key stream so both passes serve identical traffic and
    // neither pays the sampling cost inside the measured region.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x36E7);
    let stream: Vec<u64> = (0..total_keys)
        .map(|_| {
            let (t, k) = dist.sample(&mut rng);
            Namespace::new(t).prefixed(k)
        })
        .collect();

    // One untimed sweep warms the caches for *both* measured passes, so the
    // second pass doesn't win merely by re-reading what the first loaded.
    for &key in &stream {
        std::hint::black_box(router.get(key));
    }

    let started = Instant::now();
    for &key in &stream {
        std::hint::black_box(router.get(key));
    }
    let single_secs = started.elapsed().as_secs_f64();

    let mut results = Vec::new();
    let started = Instant::now();
    for chunk in stream.chunks(BATCH) {
        router.mget(chunk, &mut results);
        std::hint::black_box(results.len());
    }
    let batched_secs = started.elapsed().as_secs_f64();

    (
        total_keys as f64 / single_secs / 1e6,
        total_keys as f64 / batched_secs / 1e6,
    )
}

/// Point-op kinds tracked by the saturation sweep's collection ledger.
#[derive(Clone, Copy)]
enum PointKind {
    Get,
    Put,
    Delete,
}

/// Books one collected response against the key-sum ledger: inserts that
/// took add the key, removals that hit subtract it.
fn settle(response: Response, kind: PointKind, key: u64) -> i128 {
    let Response::Value(previous) = response else {
        unreachable!("point submissions produce point responses");
    };
    match kind {
        PointKind::Put if previous.is_none() => key as i128,
        PointKind::Delete if previous.is_some() => -(key as i128),
        _ => 0,
    }
}

/// The in-flight windows swept by the saturation experiment: 1 is the
/// blocking regime (one request per lane round-trip), the top end is
/// [`kvserve::LANE_CAPACITY`], where backpressure starts shedding.
const SATURATION_WINDOWS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// The saturation sweep: `threads` clients each keep `window` point
/// requests in flight through `submit`/`collect`, for every window size.
/// Emits one `kvserve_saturation` JSON row per window and validates the
/// cross-shard key-sum after every phase.
fn saturation_sweep(
    structure: &str,
    shards: usize,
    threads: usize,
    requests_per_window: u64,
    keys_per_tenant: u64,
    seed: u64,
) {
    let service = Arc::new(service_of(structure, shards));
    let mut expected_sum = prefill(&service, keys_per_tenant, seed);
    let dist = TenantKeyDistribution::new(TENANTS, 1.0, keys_per_tenant, 1.0);
    println!();
    println!(
        "saturation ({structure}, {shards} shards, {threads} client threads, \
         80% get / 15% put / 5% delete):"
    );
    println!(
        "{:>9} {:>12} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "in-flight", "requests/us", "p50(ns)", "p99(ns)", "cache-hits", "shed", "valid"
    );
    for &window in &SATURATION_WINDOWS {
        service.stats().reset();
        let started = Instant::now();
        let mut net = 0i128;
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..threads as u64 {
                let service = Arc::clone(&service);
                let dist = dist.clone();
                workers.push(scope.spawn(move || {
                    let mut router = service.router();
                    let mut rng =
                        StdRng::seed_from_u64(seed ^ (0x5A7 + 31 * t) ^ ((window as u64) << 32));
                    // FIFO ledger mirroring the router's pending window, so
                    // each collected response can be booked against the
                    // request that produced it.
                    let mut ledger: VecDeque<(PointKind, u64)> = VecDeque::with_capacity(window);
                    let mut net = 0i128;
                    for _ in 0..requests_per_window {
                        let (tenant, key) = dist.sample(&mut rng);
                        let packed = Namespace::new(tenant).prefixed(key);
                        let roll: u32 = rng.gen_range(0..100);
                        let (kind, request) = if roll < 80 {
                            (PointKind::Get, Request::Get { key: packed })
                        } else if roll < 95 {
                            (PointKind::Put, Request::Put { key: packed, value: 1 })
                        } else {
                            (PointKind::Delete, Request::Delete { key: packed })
                        };
                        while router.in_flight() >= window {
                            let (k, key) = ledger.pop_front().expect("ledger tracks the window");
                            net += settle(router.collect(), k, key);
                        }
                        // A shed means this client already fills the target
                        // shard's lane: drain the oldest reply and retry.
                        while router.submit(&request).is_err() {
                            let (k, key) = ledger.pop_front().expect("ledger tracks the window");
                            net += settle(router.collect(), k, key);
                        }
                        ledger.push_back((kind, packed));
                    }
                    while let Some((k, key)) = ledger.pop_front() {
                        net += settle(router.collect(), k, key);
                    }
                    net
                }));
            }
            for worker in workers {
                net += worker.join().expect("saturation worker panicked");
            }
        });
        let secs = started.elapsed().as_secs_f64();
        expected_sum += net;
        let validated = service.key_sum() as i128 == expected_sum;
        let stats = service.stats();
        let requests = requests_per_window * threads as u64;
        println!(
            "{:>9} {:>12.3} {:>10} {:>10} {:>12} {:>8} {:>8}",
            window,
            requests as f64 / secs / 1e6,
            json_quantile(stats.point_latency_ns.p50()),
            json_quantile(stats.point_latency_ns.p99()),
            stats.cache_hits(),
            stats.shed(),
            if validated { "ok" } else { "FAIL" }
        );
        eprintln!(
            "{{\"experiment\":\"kvserve_saturation\",\"structure\":\"{structure}\",\
             \"shards\":{shards},\"threads\":{threads},\"in_flight\":{window},\
             \"requests\":{requests},\"duration_secs\":{secs},\
             \"request_mops\":{},\"p50_ns\":{},\"p99_ns\":{},\
             \"cache_hits\":{},\"shed\":{},\"validated\":{validated}}}",
            requests as f64 / secs / 1e6,
            json_quantile(stats.point_latency_ns.p50()),
            json_quantile(stats.point_latency_ns.p99()),
            stats.cache_hits(),
            stats.shed(),
        );
        assert!(validated, "saturation key-sum validation failed at window {window}");
    }
}

fn emit_cell_row(structure: &str, shards: usize, threads: usize, r: &CellResult, service: &KvService) {
    let stats = service.stats();
    let hit_rate = {
        let (hits, misses) = stats
            .shards()
            .iter()
            .fold((0u64, 0u64), |(h, m), s| (h + s.hits(), m + s.misses()));
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    };
    // Exact mean batch size: namespace counters bill batches per key, the
    // batch-size histogram counts whole batches.
    let batched_keys: u64 = stats.namespaces().iter().map(|n| n.mgets() + n.mputs()).sum();
    let batches = stats.batch_size.count();
    let mean_batch = if batches == 0 {
        0.0
    } else {
        batched_keys as f64 / batches as f64
    };
    eprintln!(
        "{{\"experiment\":\"kvserve\",\"structure\":\"{structure}\",\"shards\":{shards},\
         \"threads\":{threads},\"tenants\":{TENANTS},\"requests\":{},\"keys\":{},\
         \"duration_secs\":{},\"request_mops\":{},\"key_mops\":{},\
         \"point_p50_ns\":{},\"point_p99_ns\":{},\"batch_p50_ns\":{},\"batch_p99_ns\":{},\
         \"scan_p99_ns\":{},\"mean_batch_size\":{:.1},\"hit_rate\":{hit_rate:.3},\
         \"validated\":{}}}",
        r.requests,
        r.keys,
        r.secs,
        r.requests as f64 / r.secs / 1e6,
        r.keys as f64 / r.secs / 1e6,
        json_quantile(stats.point_latency_ns.p50()),
        json_quantile(stats.point_latency_ns.p99()),
        json_quantile(stats.batch_latency_ns.p50()),
        json_quantile(stats.batch_latency_ns.p99()),
        json_quantile(stats.scan_latency_ns.p99()),
        mean_batch,
        r.validated,
    );
}

/// An empty histogram has no quantile: emit JSON `null`, not an in-band 0 a
/// regression comparison would read as sub-bucket latency.
fn json_quantile(q: Option<u64>) -> String {
    q.map_or_else(|| "null".to_string(), |ns| ns.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let requests_per_thread: u64 = if smoke {
        20_000
    } else {
        args.get(1)
            .filter(|a| !a.starts_with("--"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(200_000)
    };
    let keys_per_tenant: u64 = if smoke { 5_000 } else { 25_000 };
    let structures = ["elim-abtree", "skiplist-lazy"];
    let shard_counts = [1usize, 4];
    let seed = 0xCAFE;

    println!(
        "{:<16} {:>7} {:>8} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "structure", "shards", "threads", "requests/us", "keys/us", "p50(ns)", "p99(ns)", "valid"
    );
    let mut all_validated = true;
    for structure in structures {
        for shards in shard_counts {
            let service = Arc::new(service_of(structure, shards));
            let prefill_sum = prefill(&service, keys_per_tenant, seed);
            // Report only measured-phase traffic: prefill went through the
            // same routers and would otherwise pollute the histograms.
            service.stats().reset();
            let r = run_cell(
                &service,
                keys_per_tenant,
                threads,
                requests_per_thread,
                prefill_sum,
                seed,
            );
            let stats = service.stats();
            println!(
                "{:<16} {:>7} {:>8} {:>12.3} {:>10.3} {:>12} {:>12} {:>8}",
                structure,
                shards,
                threads,
                r.requests as f64 / r.secs / 1e6,
                r.keys as f64 / r.secs / 1e6,
                json_quantile(stats.point_latency_ns.p50()),
                json_quantile(stats.point_latency_ns.p99()),
                if r.validated { "ok" } else { "FAIL" }
            );
            emit_cell_row(structure, shards, threads, &r, &service);
            all_validated &= r.validated;
        }
    }
    assert!(all_validated, "cross-shard key-sum validation failed");

    // The batching payoff, on one service / one router.
    let comparison_keys: u64 = if smoke { 64_000 } else { 1_000_000 };
    let (single, batched) = mget_comparison("elim-abtree", 4, comparison_keys, seed);
    println!();
    println!(
        "mget batching (elim-abtree, 4 shards, batch {BATCH}): \
         single-get {single:.3} keys/us, mget {batched:.3} keys/us, {:.2}x",
        batched / single
    );
    for (mode, mops) in [("single-get", single), (&format!("mget{BATCH}"), batched)] {
        eprintln!(
            "{{\"experiment\":\"kvserve-mget\",\"structure\":\"elim-abtree\",\"shards\":4,\
             \"threads\":1,\"mode\":\"{mode}\",\"keys\":{comparison_keys},\
             \"key_mops\":{mops}}}"
        );
    }
    // The batching win is the point of the experiment, but timing on a
    // preemptible 1-CPU CI runner is noisy at smoke sizes — there the
    // comparison is reported, not asserted.
    if smoke {
        if batched <= single {
            eprintln!(
                "warning: smoke-sized mget comparison did not beat single gets \
                 ({batched:.3} vs {single:.3} keys/us); see BENCH_kvserve.json for \
                 the recorded full run"
            );
        }
    } else {
        assert!(
            batched > single,
            "batched mget ({batched:.3} keys/us) must beat single gets ({single:.3} keys/us)"
        );
    }

    // The pipelining saturation curve (in-flight window vs throughput/p99),
    // at both shard counts so the sharding payoff is visible in the same
    // artifact.
    let saturation_requests: u64 = if smoke { 8_000 } else { 100_000 };
    for shards in shard_counts {
        saturation_sweep(
            "elim-abtree",
            shards,
            threads,
            saturation_requests,
            keys_per_tenant,
            seed,
        );
    }
}
