//! Driver for Figure 17: persistent trees (p-OCC-ABtree, p-Elim-ABtree,
//! FPTree-like baseline) at 1M keys and 50% updates.
//!
//! Usage:
//!   cargo run -p setbench --release --bin fig17_persistent -- \[keys\] \[seconds-per-cell\]
//!   cargo run -p setbench --release --bin fig17_persistent -- --smoke
//!
//! `--smoke` runs a tiny sweep (2k keys, 50ms cells, low thread counts) so
//! CI can exercise the full persistent-figure path in seconds.

use std::time::Duration;

use setbench::{default_thread_counts, run_persistence_figure};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let results = if smoke {
        run_persistence_figure(2_000, &[1, 2], Duration::from_millis(50))
    } else {
        let keys: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
        let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);
        run_persistence_figure(keys, &default_thread_counts(), Duration::from_secs_f64(secs))
    };
    assert!(results.iter().all(|r| r.validated), "validation failed");
}
