//! Driver for the SetBench microbenchmark figures (Figures 12-15).
//!
//! Usage:
//!   cargo run -p setbench --release --bin fig12_15 -- \[keys\] \[seconds-per-cell\]
//!
//! `keys` selects the figure: 10000 -> Fig 12, 100000 -> Fig 13,
//! 1000000 -> Fig 14 (default), 10000000 -> Fig 15.

use std::time::Duration;

use setbench::{run_microbench_figure, FigureParams};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let keys: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);
    let experiment = match keys {
        10_000 => "fig12",
        100_000 => "fig13",
        1_000_000 => "fig14",
        10_000_000 => "fig15",
        _ => "fig-custom",
    };
    let params = FigureParams::microbench(experiment, keys, Duration::from_secs_f64(secs));
    let results = run_microbench_figure(&params);
    let failed: Vec<_> = results.iter().filter(|r| !r.validated).collect();
    assert!(failed.is_empty(), "validation failures: {failed:?}");
}
