//! Driver for Figure 18: scan throughput under YCSB Workload E (95% range
//! scans / 5% inserts), sweeping the scan-length upper bound x the thread
//! count over every volatile structure.
//!
//! Usage:
//!   cargo run -p setbench --release --bin fig18_scans -- \[records\] \[seconds-per-cell\]
//!   cargo run -p setbench --release --bin fig18_scans -- --smoke
//!
//! `--smoke` runs a tiny sweep (small record count, short cells, one scan
//! length) so CI can exercise the full driver path in seconds; the default
//! sweep uses 1M records and scan lengths {1, 10, 100}.
//!
//! Each cell prints a table row (operations/us plus the number of scans
//! completed) and a JSON row on stderr; structures without a native `range`
//! run the point-lookup fallback, which is the comparison the figure makes.

use std::time::Duration;

use setbench::{default_thread_counts, run_scan_figure, volatile_structures};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let structures: Vec<String> = volatile_structures().iter().map(|s| s.to_string()).collect();
    let results = if smoke {
        run_scan_figure(
            1_000,
            &[10],
            &[1],
            Duration::from_millis(50),
            &structures,
        )
    } else {
        let records: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
        let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);
        run_scan_figure(
            records,
            &[1, 10, 100],
            &default_thread_counts(),
            Duration::from_secs_f64(secs),
            &structures,
        )
    };
    assert!(
        results.iter().all(|r| r.validated),
        "key-sum validation failed"
    );
    assert!(
        results.iter().all(|r| r.scan_ops > 0),
        "a cell completed no scans"
    );
}
