//! Driver for Figure 18: scan throughput under YCSB Workload E (95% range
//! scans / 5% inserts), sweeping the scan-length upper bound x the thread
//! count over every volatile structure.
//!
//! Usage:
//!   cargo run -p setbench --release --bin fig18_scans -- \[records\] \[seconds-per-cell\]
//!   cargo run -p setbench --release --bin fig18_scans -- --smoke
//!
//! `--smoke` runs a tiny sweep (small record count, short cells, one scan
//! length) so CI can exercise the full driver path in seconds; the default
//! sweep uses 1M records and scan lengths {1, 10, 100}.
//!
//! Each cell prints a table row (operations/us plus the number of scans
//! completed) and a JSON row on stderr.  Structures without a native
//! `range` (`ScanSupport::Fallback`) are reported as `scan-unsupported` and
//! skipped — their default `range` is a point probe per key, which is not a
//! scan measurement — so the sweep covers exactly the volatile native-scan
//! set.

use std::time::Duration;

use setbench::{default_thread_counts, run_scan_figure, scan_benchmark_structures, volatile_structures};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // Hand the full volatile set to the sweep: it prints the explicit
    // scan-unsupported note for the fallback structures and measures the
    // rest, keeping coverage (and the skips) visible in the output.
    let structures: Vec<String> = volatile_structures().iter().map(|s| s.to_string()).collect();
    let eligible = scan_benchmark_structures().len();
    let results = if smoke {
        run_scan_figure(
            1_000,
            &[10],
            &[1],
            Duration::from_millis(50),
            &structures,
        )
    } else {
        let records: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
        let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);
        run_scan_figure(
            records,
            &[1, 10, 100],
            &default_thread_counts(),
            Duration::from_secs_f64(secs),
            &structures,
        )
    };
    assert!(
        results.iter().all(|r| r.validated),
        "key-sum validation failed"
    );
    assert!(
        results.iter().all(|r| r.scan_ops > 0),
        "a cell completed no scans"
    );
    // Every eligible structure must have produced rows; only the
    // scan-unsupported skips may be missing.
    let measured: std::collections::HashSet<&str> =
        results.iter().map(|r| r.structure.as_str()).collect();
    assert_eq!(
        measured.len(),
        eligible,
        "a native-scan structure is missing from the sweep"
    );
}
