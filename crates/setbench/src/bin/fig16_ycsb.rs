//! Driver for Figure 16: YCSB Workload A throughput.
//!
//! Usage:
//!   cargo run -p setbench --release --bin fig16_ycsb -- \[records\] \[seconds-per-cell\]
//!   cargo run -p setbench --release --bin fig16_ycsb -- --smoke
//!
//! `--smoke` runs a tiny sweep (small record count, short cells, one thread
//! count) so CI can exercise the full driver path — load phase, per-thread
//! session handles, request phase, key-sum validation — in seconds.
//!
//! The paper loads 100M records; the default here is 10M to fit typical
//! container memory, which preserves the relative ordering of the curves.

use std::time::Duration;

use setbench::{default_thread_counts, run_ycsb_figure, volatile_structures};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let structures: Vec<String> = volatile_structures().iter().map(|s| s.to_string()).collect();
    let results = if smoke {
        run_ycsb_figure(1_000, &[1], Duration::from_millis(50), &structures)
    } else {
        let records: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10_000_000);
        let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3.0);
        run_ycsb_figure(
            records,
            &default_thread_counts(),
            Duration::from_secs_f64(secs),
            &structures,
        )
    };
    assert!(results.iter().all(|r| r.validated), "validation failed");
}
