//! Closed-loop load driver for the `crashkv` durable service: the
//! group-commit sweep with mid-load crash injection.
//!
//! Sweeps the ack-batching knob (`acks_per_fence` 1 → 64) against the shard
//! count under [`abpmem::PersistMode::Simulated`] with a cheap flush and an
//! expensive fence, so the fence amortization the knob buys is visible as
//! throughput.  Every cell also kills each shard exactly once mid-load
//! (torn partial insert and dirty link-and-persist mark included on
//! alternating shards) and lets the supervisor heal it, reporting:
//!
//! * acked throughput (operations whose durability fence completed,
//!   per microsecond, crash + recovery downtime included);
//! * the number of crash-aborted (unacknowledged) operations clients saw;
//! * `lost_unacked` — unfenced writes the crashes rolled back, i.e. work
//!   that vanished *without ever being acknowledged* (the durability
//!   contract: this count stays invisible to clients, who only ever saw
//!   `Crashed` for them);
//! * mean recovery time per crash, from the supervisor's reports.
//!
//! Each cell prints a table row and a JSON row on stderr (the repository
//! keeps a recorded run checked in as `BENCH_durable.json`).
//!
//! Usage:
//!   cargo run -p setbench --release --bin bench_durable -- \[requests-per-client\] \[--threads N\]
//!   cargo run -p setbench --release --bin bench_durable -- --smoke

use std::time::Instant;

use crashkv::{CrashSpec, DurableKvService, DurableOp};

/// Pipelined in-flight window per client (the saturated regime: shard
/// owners always have a group's worth of work queued).
const WINDOW: usize = 32;
/// The ack-batching sweep: 1 is fence-per-operation, 64 is one fence per
/// full lane drain.
const GROUPS: [u32; 4] = [1, 4, 16, 64];
const SHARD_COUNTS: [usize; 2] = [1, 4];
const SEED: u64 = 0xD0_0B5E;

fn step(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

struct CellResult {
    acked: u64,
    aborted: u64,
    lost_unacked: usize,
    mean_recovery_ns: u128,
    fences: u64,
    boundaries: u64,
    secs: f64,
}

fn run_cell(shards: usize, acks_per_fence: u32, threads: usize, requests_per_client: u64) -> CellResult {
    let mut service = DurableKvService::new(shards, acks_per_fence);
    let universe = 4_096 * shards as u64;
    let started = Instant::now();
    let mut acked = 0u64;
    let mut aborted = 0u64;
    std::thread::scope(|scope| {
        let service = &service;
        let workers: Vec<_> = (0..threads as u64)
            .map(|t| {
                let mut router = service.router();
                scope.spawn(move || {
                    let mut s = SEED ^ (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut acked = 0u64;
                    let mut aborted = 0u64;
                    let mut book = |reply: Result<Option<u64>, crashkv::Crashed>| match reply {
                        Ok(_) => acked += 1,
                        Err(_) => aborted += 1,
                    };
                    for _ in 0..requests_per_client {
                        let r = step(&mut s);
                        let key = 1 + r % universe;
                        let op = match r % 10 {
                            0..=5 => DurableOp::Put { key, value: r },
                            6..=7 => DurableOp::Delete { key },
                            _ => DurableOp::Get { key },
                        };
                        while router.in_flight() >= WINDOW {
                            book(router.collect_one().expect("window is non-empty"));
                        }
                        let mut op = op;
                        // A full lane sheds: drain the oldest reply, retry.
                        while let Err(back) = router.submit(op) {
                            op = back;
                            book(router.collect_one().expect("lane full implies in-flight"));
                        }
                    }
                    while let Some(reply) = router.collect_one() {
                        book(reply);
                    }
                    (acked, aborted)
                })
            })
            .collect();

        // Mid-load fault walk: kill every shard once and wait for the heal.
        for shard in 0..shards {
            service.inject_crash(
                shard,
                CrashSpec {
                    after_boundaries: 3,
                    survivor_seed: SEED ^ shard as u64,
                    torn_insert: shard % 2 == 0,
                    dirty_link: true,
                },
            );
            while service.crash_count(shard) == 0 {
                std::thread::yield_now();
            }
        }
        for worker in workers {
            let (a, b) = worker.join().expect("client panicked");
            acked += a;
            aborted += b;
        }
    });
    let secs = started.elapsed().as_secs_f64();

    let reports = service.crash_reports();
    assert_eq!(reports.len(), shards, "every shard crashes exactly once");
    for report in &reports {
        assert_eq!(report.survived + report.rolled_back, report.unfenced);
    }
    let lost_unacked = reports.iter().map(|r| r.rolled_back).sum();
    let mean_recovery_ns =
        reports.iter().map(|r| r.recovery.elapsed_ns).sum::<u128>() / reports.len() as u128;
    let (fences, boundaries) = (0..shards)
        .map(|s| (service.fences(s), service.boundaries(s)))
        .fold((0, 0), |(f, b), (sf, sb)| (f + sf, b + sb));
    service.shutdown();
    service.check_invariants().expect("recovered shards are structurally sound");
    CellResult {
        acked,
        aborted,
        lost_unacked,
        mean_recovery_ns,
        fences,
        boundaries,
        secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let requests_per_client: u64 = if smoke {
        1_500
    } else {
        args.get(1)
            .filter(|a| !a.starts_with("--"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(30_000)
    };
    // Cheap line flush, expensive fence: the regime where group commit
    // pays.  The sweep's signal is fences/op falling as the group grows.
    abpmem::set_mode(abpmem::PersistMode::Simulated {
        flush_ns: 5,
        fence_ns: 2_000,
    });

    println!(
        "{:<7} {:>10} {:>8} {:>10} {:>9} {:>12} {:>10} {:>13}",
        "shards", "acks/fence", "threads", "acked/us", "aborted", "lost-unacked", "fences", "recovery(us)"
    );
    for shards in SHARD_COUNTS {
        for group in GROUPS {
            let r = run_cell(shards, group, threads, requests_per_client);
            println!(
                "{:<7} {:>10} {:>8} {:>10.3} {:>9} {:>12} {:>10} {:>13.1}",
                shards,
                group,
                threads,
                r.acked as f64 / r.secs / 1e6,
                r.aborted,
                r.lost_unacked,
                r.fences,
                r.mean_recovery_ns as f64 / 1e3,
            );
            eprintln!(
                "{{\"experiment\":\"durable\",\"shards\":{shards},\"acks_per_fence\":{group},\
                 \"threads\":{threads},\"requests\":{},\"acked\":{},\"aborted\":{},\
                 \"lost_unacked\":{},\"fences\":{},\"boundaries\":{},\
                 \"mean_recovery_ns\":{},\"duration_secs\":{},\"acked_mops\":{},\
                 \"crashes\":{shards},\"validated\":true}}",
                requests_per_client * threads as u64,
                r.acked,
                r.aborted,
                r.lost_unacked,
                r.fences,
                r.boundaries,
                r.mean_recovery_ns,
                r.secs,
                r.acked as f64 / r.secs / 1e6,
            );
        }
    }
}
