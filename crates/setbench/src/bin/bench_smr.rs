//! Memory footprint and reclamation lag of the two SMR backends.
//!
//! The harness's throughput figures answer "how fast"; this benchmark
//! answers the other reclamation question — "how much retired-but-unfreed
//! garbage does each backend let accumulate, and what does that cost?"
//! Two cells per backend (`ebr`, `hp`), both on the elimination (a,b)-tree:
//!
//! * `cell = "churn"` — steady-state footprint: writer threads run a 50/50
//!   insert/delete mix while the main thread samples the collector's
//!   `unreclaimed` gauge.  The row reports the peak and final samples plus
//!   the end-of-run reclamation lag (epochs behind for EBR, retirements
//!   behind for HP) and the usual validated throughput.  Healthy backends
//!   hold a small, flat plateau here.
//! * `cell = "stalled-reader"` — the failure mode the hazard-pointer
//!   backend exists for: one reader parks inside a pinned region while a
//!   writer churns round after round.  Under EBR the parked pin freezes
//!   the epoch, so `unreclaimed` grows linearly with the churn (the
//!   per-round trajectory is recorded in the row).  Under HP the parked
//!   *fine-mode* reader names no nodes, so garbage stays bounded no matter
//!   how many rounds run.  The acceptance criterion on the recorded
//!   artifact: the final EBR sample keeps growing round over round while
//!   the HP sample stays under a small constant.
//!
//! Each run emits `experiment = "smr"` JSON rows on stderr; the checked-in
//! `BENCH_smr.json` keeps a recorded full run.
//!
//! Usage:
//!   cargo run -p setbench --release --bin bench_smr -- \[--threads N\]
//!   cargo run -p setbench --release --bin bench_smr -- --smoke

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use abebr::{Collector, SmrPolicy};
use abtree::ElimABTree;
use rand::prelude::*;

/// Keys live in `1..KEY_RANGE` (key 0 is reserved by the tree's sentinel
/// conventions elsewhere in the workspace; skipping it keeps sums simple).
const KEY_RANGE: u64 = 65_536;
/// Gauge sampling period while the churn cell runs.
const SAMPLE_EVERY: Duration = Duration::from_millis(5);

fn new_tree(policy: SmrPolicy) -> Arc<ElimABTree> {
    Arc::new(ElimABTree::with_collector(Collector::with_policy(policy)))
}

/// Steady-state churn: `threads` writers run a 50/50 insert/delete mix for
/// `duration` while the caller's thread samples the unreclaimed gauge.
fn churn_cell(policy: SmrPolicy, threads: usize, duration: Duration) -> String {
    let tree = new_tree(policy);

    // Prefill to half full so deletes hit from the first operation.
    let mut expected: i128 = 0;
    {
        let mut h = tree.handle();
        let mut rng = StdRng::seed_from_u64(0x5318);
        let mut inserted = 0u64;
        while inserted < KEY_RANGE / 2 {
            let k = rng.gen_range(1..KEY_RANGE);
            if h.insert(k, k).is_none() {
                inserted += 1;
                expected += k as i128;
            }
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut peak_unreclaimed = 0u64;
    let mut total_ops = 0u64;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            workers.push(scope.spawn(move || {
                let mut h = tree.handle();
                let mut rng = StdRng::seed_from_u64(0x0DD5 + 31 * t);
                let mut net: i128 = 0;
                let mut ops = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = rng.gen_range(1..KEY_RANGE);
                    if rng.gen_bool(0.5) {
                        if h.insert(k, k).is_none() {
                            net += k as i128;
                        }
                    } else if h.delete(k).is_some() {
                        net -= k as i128;
                    }
                    ops += 1;
                }
                (net, ops)
            }));
        }
        while started.elapsed() < duration {
            std::thread::sleep(SAMPLE_EVERY);
            peak_unreclaimed = peak_unreclaimed.max(tree.collector().stats().unreclaimed);
        }
        stop.store(true, Ordering::Relaxed);
        for worker in workers {
            let (net, ops) = worker.join().expect("churn worker panicked");
            expected += net;
            total_ops += ops;
        }
    });
    let secs = started.elapsed().as_secs_f64();

    let stats = tree.collector().stats();
    let validated = tree.key_sum() as i128 == expected;
    let mops = total_ops as f64 / secs / 1e6;
    println!(
        "{:<16} {:>5} {:>8} {:>12.3} {:>12} {:>12} {:>10} {:>8}",
        "churn",
        policy.name(),
        threads,
        mops,
        peak_unreclaimed,
        stats.unreclaimed,
        stats.oldest_epoch_age,
        if validated { "ok" } else { "FAIL" }
    );
    assert!(validated, "key-sum validation failed ({policy} churn)");
    format!(
        "{{\"experiment\":\"smr\",\"cell\":\"churn\",\"structure\":\"elim-abtree\",\
         \"smr\":\"{}\",\"threads\":{threads},\"key_range\":{KEY_RANGE},\"ops\":{total_ops},\
         \"throughput_mops\":{mops},\"peak_unreclaimed\":{peak_unreclaimed},\
         \"final_unreclaimed\":{},\"reclaim_lag\":{},\"validated\":{validated}}}",
        policy.name(),
        stats.unreclaimed,
        stats.oldest_epoch_age
    )
}

/// The stalled-reader cell: one reader parks inside a pinned region (a
/// fine-mode pin — an ordinary epoch pin under EBR, an empty hazard set
/// under HP) while the main thread churns `rounds` full insert/delete
/// passes over `keys` keys, sampling the unreclaimed gauge after each.
fn stalled_reader_cell(policy: SmrPolicy, rounds: usize, keys: u64) -> String {
    let tree = new_tree(policy);
    let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
    let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
    let reader = {
        let tree = Arc::clone(&tree);
        std::thread::spawn(move || {
            let local = tree.collector().register();
            let guard = local.pin_fine();
            ready_tx.send(()).unwrap();
            park_rx.recv().unwrap();
            drop(guard);
        })
    };
    ready_rx.recv().unwrap();

    let mut trajectory = Vec::with_capacity(rounds);
    {
        let mut h = tree.handle();
        for round in 0..rounds as u64 {
            for k in 1..keys {
                h.insert(k, round);
            }
            for k in 1..keys {
                h.delete(k);
            }
            trajectory.push(tree.collector().stats().unreclaimed);
        }
    }
    let stats = tree.collector().stats();
    park_tx.send(()).unwrap();
    reader.join().unwrap();

    let samples = trajectory
        .iter()
        .map(|u| u.to_string())
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "{:<16} {:>5} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "stalled-reader",
        policy.name(),
        1,
        "-",
        trajectory.iter().copied().max().unwrap_or(0),
        stats.unreclaimed,
        stats.oldest_epoch_age,
        "-"
    );
    format!(
        "{{\"experiment\":\"smr\",\"cell\":\"stalled-reader\",\"structure\":\"elim-abtree\",\
         \"smr\":\"{}\",\"rounds\":{rounds},\"keys_per_round\":{},\
         \"unreclaimed_per_round\":[{samples}],\"final_unreclaimed\":{},\"reclaim_lag\":{}}}",
        policy.name(),
        keys - 1,
        stats.unreclaimed,
        stats.oldest_epoch_age
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let duration = Duration::from_millis(if smoke { 200 } else { 2_000 });
    let (rounds, keys) = if smoke { (3, 4_096) } else { (8, 16_384) };

    println!("SMR backend footprint (elim-abtree, {threads} churn threads):");
    println!(
        "{:<16} {:>5} {:>8} {:>12} {:>12} {:>12} {:>10} {:>8}",
        "cell", "smr", "threads", "ops/us", "peak-unrec", "final-unrec", "rec-lag", "valid"
    );

    let mut rows = Vec::new();
    for policy in SmrPolicy::ALL {
        rows.push(churn_cell(policy, threads, duration));
    }
    for policy in SmrPolicy::ALL {
        rows.push(stalled_reader_cell(policy, rounds, keys));
    }
    for row in rows {
        eprintln!("{row}");
    }
}
