//! Closed-loop load driver for the `netserve` TCP front end.
//!
//! Sweeps connections x pipelining depth over real loopback sockets, one
//! client thread per connection, each keeping `depth` frames of 8 point
//! requests in flight.  Emits one JSON row per cell on stderr
//! (`experiment = "netserve"`; the repository keeps a recorded run checked
//! in as `BENCH_netserve.json`), recording request throughput and
//! frame-round-trip p50/p99.
//!
//! The in-process comparison point is `bench_kvserve`'s
//! `kvserve_saturation` experiment (`BENCH_kvserve_saturation.json`),
//! which drives the *same* pipelined router interface without sockets:
//! the difference between the two request rates at matching concurrency is
//! the cost of the wire — syscalls, frame encode/decode, and the reactor —
//! per request.
//!
//! Every cell is validated: each client tallies the keys its `Put`s
//! actually inserted (the reply says so), and the service's cross-shard
//! key-sum must agree after the graceful shutdown.
//!
//! Usage:
//!   cargo run -p setbench --release --bin bench_netserve \[-- --smoke\]

use std::sync::Arc;
use std::time::Instant;

use kvserve::stats::Histogram;
use kvserve::{KvService, Request, Response, ShardStore};
use netserve::{Client, Server, ServerConfig};
use rand::prelude::*;
use setbench::make_structure;

/// Point requests per frame.
const FRAME_REQUESTS: usize = 8;
/// Shards backing every cell.
const SHARDS: usize = 4;
/// Reactor threads serving every cell.
const REACTORS: usize = 2;
/// Key space each cell's traffic lands in.
const KEY_SPACE: u64 = 100_000;

struct Cell {
    connections: usize,
    depth: usize,
    frames_per_conn: u64,
}

struct CellResult {
    frames: u64,
    secs: f64,
    latency: Histogram,
    /// Sum of keys whose `Put` reported an actual insert.
    inserted_sum: u128,
}

/// One client connection's closed loop: keep `depth` frames in flight,
/// record each frame's round trip, tally confirmed inserts.
fn drive_connection(
    addr: std::net::SocketAddr,
    seed: u64,
    depth: usize,
    frames: u64,
    latency: &Histogram,
) -> u128 {
    let mut client = Client::connect(addr).expect("connect");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(FRAME_REQUESTS);
    let mut sent_at: std::collections::VecDeque<(Instant, Vec<u64>)> =
        std::collections::VecDeque::with_capacity(depth);
    let mut inserted_sum = 0u128;
    let mut sent = 0u64;
    let mut collected = 0u64;
    while collected < frames {
        while sent < frames && sent_at.len() < depth {
            batch.clear();
            let mut put_keys = Vec::new();
            for _ in 0..FRAME_REQUESTS {
                let key = rng.gen_range(0..KEY_SPACE);
                if rng.gen_bool(0.5) {
                    batch.push(Request::Put { key, value: key });
                    put_keys.push(key);
                } else {
                    batch.push(Request::Get { key });
                    put_keys.push(u64::MAX); // placeholder: not a put
                }
            }
            client.send(&batch).expect("send");
            sent_at.push_back((Instant::now(), put_keys));
            sent += 1;
        }
        let replies = client.recv().expect("recv");
        let (started, put_keys) = sent_at.pop_front().expect("a frame in flight");
        latency.record(started.elapsed().as_nanos() as u64);
        collected += 1;
        assert_eq!(replies.len(), FRAME_REQUESTS);
        for (reply, &key) in replies.iter().zip(&put_keys) {
            if key != u64::MAX && *reply == Response::Value(None) {
                inserted_sum += key as u128;
            }
        }
    }
    inserted_sum
}

fn run_cell(cell: &Cell) -> CellResult {
    let service = Arc::new(KvService::new(SHARDS, 1, |_| {
        let shard: Box<dyn ShardStore> = Box::new(make_structure("elim-abtree"));
        shard
    }));
    let mut server = Server::start(
        ServerConfig {
            reactors: REACTORS,
            ..ServerConfig::default()
        },
        Arc::clone(&service),
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    let latency = Histogram::new();
    let started = Instant::now();
    let inserted_sum: u128 = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..cell.connections)
            .map(|c| {
                let latency = &latency;
                let seed = 0xBE7C_0000 + c as u64;
                scope.spawn(move || {
                    drive_connection(addr, seed, cell.depth, cell.frames_per_conn, latency)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("client thread"))
            .sum()
    });
    let secs = started.elapsed().as_secs_f64();

    server.shutdown();
    let frames = cell.connections as u64 * cell.frames_per_conn;
    assert_eq!(server.stats().frames(), frames, "every frame served");
    assert_eq!(server.stats().open_connections(), 0, "every connection closed");

    CellResult {
        frames,
        secs,
        latency,
        inserted_sum: {
            // The validation: what the clients were told they inserted must
            // be exactly what the shards hold.
            assert_eq!(
                service.key_sum(),
                inserted_sum,
                "cross-shard key-sum validation"
            );
            inserted_sum
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");

    let connections: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 8, 32] };
    let depths: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 32] };
    let frames_per_conn: u64 = if smoke { 500 } else { 5_000 };

    let fmt_ns = |q: Option<u64>| q.map_or(-1i64, |ns| ns.min(i64::MAX as u64) as i64);
    for &conns in connections {
        for &depth in depths {
            let cell = Cell {
                connections: conns,
                depth,
                frames_per_conn,
            };
            let result = run_cell(&cell);
            let requests = result.frames * FRAME_REQUESTS as u64;
            eprintln!(
                concat!(
                    "{{\"experiment\":\"netserve\",\"structure\":\"elim-abtree\",",
                    "\"shards\":{},\"reactors\":{},\"connections\":{},",
                    "\"pipeline_depth\":{},\"frames\":{},\"requests\":{},",
                    "\"duration_secs\":{},\"request_mops\":{},",
                    "\"frame_p50_ns\":{},\"frame_p99_ns\":{},\"validated\":true}}"
                ),
                SHARDS,
                REACTORS,
                conns,
                depth,
                result.frames,
                requests,
                result.secs,
                requests as f64 / result.secs / 1e6,
                fmt_ns(result.latency.p50()),
                fmt_ns(result.latency.p99()),
            );
            println!(
                "conns={conns:>3} depth={depth:>3}: {:.3} Mreq/s, frame p50 {} ns p99 {} ns ({} keys summed)",
                requests as f64 / result.secs / 1e6,
                fmt_ns(result.latency.p50()),
                fmt_ns(result.latency.p99()),
                result.inserted_sum,
            );
        }
    }
}
