//! The cost of the telemetry spine on the kvserve hot path.
//!
//! One experiment, run **twice** against the same binary source: once as a
//! default build (`telemetry = "on"`) and once with the recording compiled
//! out (`--features obs/compile-out`, `telemetry = "compiled-out"`).  Each
//! run emits `experiment = "obs"` JSON rows on stderr; the checked-in
//! `BENCH_obs.json` keeps a recorded pair, and the acceptance criterion is
//! that the on/off throughput gap on this path stays **under 3%**.
//!
//! Two cells, each best-of-[`TRIALS`] (the artifact keeps every trial):
//!
//! * `cell = "pipelined"` — the service's hottest cross-thread path:
//!   pipelined point requests (80% get / 15% put / 5% delete, Zipfian
//!   tenants and keys) through `submit`/`collect` with a 16-deep in-flight
//!   window.  Every operation crosses the op counters, the latency
//!   histogram, the hot-key cache accounting, and the 1-in-16 sampled
//!   stage trace.  Validated with the cross-shard key-sum check.  On a
//!   single-CPU runner this cell timeshares the client with the shard
//!   owners, so scheduling noise dominates — compare best-of trials, and
//!   prefer the recorded multi-trial artifact over any single run.
//! * `cell = "cached-get"` — the telemetry cost in isolation: point gets
//!   served entirely by the router's hot-key cache (nothing in flight, so
//!   no lane is crossed and the shard owners stay parked).  The operation
//!   itself is a hash + cache probe; everything else on that path *is* the
//!   telemetry (two stamp reads, the latency histogram, per-shard and
//!   per-namespace counters, the trace sampler), which makes this the
//!   sharpest on/off comparison a one-core machine can produce.
//!
//! A second row measures the pull cost of the registry itself: how long a
//! full snapshot + text render takes while the service is loaded with the
//! trial's counters (`scrape_us`).
//!
//! Usage:
//!   cargo run -p setbench --release --bin bench_obs -- \[requests\] \[--threads N\]
//!   cargo run -p setbench --release --bin bench_obs -- --smoke
//!   cargo run -p setbench --release --features obs/compile-out --bin bench_obs

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use kvserve::{KvService, Namespace, Request, Response, ShardStore};
use rand::prelude::*;
use setbench::make_structure;
use workload::TenantKeyDistribution;

/// Tenants in the workload (and namespace-stat slots).
const TENANTS: u16 = 4;
/// In-flight window per client: deep enough that the shard owners batch,
/// matching the knee of the `kvserve_saturation` curve.
const WINDOW: usize = 16;
/// Measured trials per configuration; the headline is the best (on a
/// shared/preemptible runner, the minimum-interference trial).
const TRIALS: usize = 5;

/// Point-op kinds tracked by the collection ledger.
#[derive(Clone, Copy)]
enum PointKind {
    Get,
    Put,
    Delete,
}

/// Books one collected response against the key-sum ledger.
fn settle(response: Response, kind: PointKind, key: u64) -> i128 {
    let Response::Value(previous) = response else {
        unreachable!("point submissions produce point responses");
    };
    match kind {
        PointKind::Put if previous.is_none() => key as i128,
        PointKind::Delete if previous.is_some() => -(key as i128),
        _ => 0,
    }
}

/// Prefills every tenant's key space to half full, returning the key-sum.
fn prefill(service: &KvService, keys_per_tenant: u64, seed: u64) -> i128 {
    let mut router = service.router();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum = 0i128;
    for tenant in 0..TENANTS {
        let ns = Namespace::new(tenant);
        let mut inserted = 0u64;
        while inserted < keys_per_tenant / 2 {
            let key = ns.prefixed(rng.gen_range(0..keys_per_tenant));
            if router.put(key, 1).is_none() {
                inserted += 1;
                sum += key as i128;
            }
        }
    }
    sum
}

/// One measured trial: `threads` clients each push `requests_per_thread`
/// pipelined point requests.  Returns (duration_secs, key-sum delta).
fn run_trial(
    service: &Arc<KvService>,
    keys_per_tenant: u64,
    threads: usize,
    requests_per_thread: u64,
    seed: u64,
) -> (f64, i128) {
    let dist = TenantKeyDistribution::new(TENANTS, 1.0, keys_per_tenant, 1.0);
    let started = Instant::now();
    let mut net = 0i128;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..threads as u64 {
            let service = Arc::clone(service);
            let dist = dist.clone();
            workers.push(scope.spawn(move || {
                let mut router = service.router();
                let mut rng = StdRng::seed_from_u64(seed ^ (0x0B5 + 131 * t));
                let mut ledger: VecDeque<(PointKind, u64)> = VecDeque::with_capacity(WINDOW);
                let mut net = 0i128;
                for _ in 0..requests_per_thread {
                    let (tenant, key) = dist.sample(&mut rng);
                    let packed = Namespace::new(tenant).prefixed(key);
                    let roll: u32 = rng.gen_range(0..100);
                    let (kind, request) = if roll < 80 {
                        (PointKind::Get, Request::Get { key: packed })
                    } else if roll < 95 {
                        (PointKind::Put, Request::Put { key: packed, value: 1 })
                    } else {
                        (PointKind::Delete, Request::Delete { key: packed })
                    };
                    while router.in_flight() >= WINDOW {
                        let (k, key) = ledger.pop_front().expect("ledger tracks the window");
                        net += settle(router.collect(), k, key);
                    }
                    while router.submit(&request).is_err() {
                        let (k, key) = ledger.pop_front().expect("ledger tracks the window");
                        net += settle(router.collect(), k, key);
                    }
                    ledger.push_back((kind, packed));
                }
                while let Some((k, key)) = ledger.pop_front() {
                    net += settle(router.collect(), k, key);
                }
                net
            }));
        }
        for worker in workers {
            net += worker.join().expect("bench worker panicked");
        }
    });
    (started.elapsed().as_secs_f64(), net)
}

/// The cached-get cell: `total` point gets over a small hot set, every one
/// served by the router's hot-key cache (nothing in flight, owners parked,
/// no lane crossed).  The keys sit outside the prefill range so the warm
/// pass defines them; no writes run during the measurement, so the shard
/// versions stay valid and every measured get is a hit.  Returns seconds.
fn cached_get_trial(service: &Arc<KvService>, total: u64) -> f64 {
    const HOT: u64 = 16;
    let base = 1 << 20;
    let mut router = service.router();
    let ns = Namespace::new(0);
    for k in 0..HOT {
        router.put(ns.prefixed(base + k), k);
        std::hint::black_box(router.get(ns.prefixed(base + k)));
    }
    let started = Instant::now();
    for i in 0..total {
        std::hint::black_box(router.get(ns.prefixed(base + (i % HOT))));
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let requests_per_thread: u64 = if smoke {
        20_000
    } else {
        args.get(1)
            .filter(|a| !a.starts_with("--"))
            .and_then(|s| s.parse().ok())
            .unwrap_or(500_000)
    };
    let keys_per_tenant: u64 = if smoke { 5_000 } else { 25_000 };
    let shards = 4usize;
    let seed = 0x0B5CAFE;
    // Which build this process is: the *same source* reports differently
    // under `--features obs/compile-out`, and the artifact pairs the rows.
    let telemetry = if obs::ENABLED { "on" } else { "compiled-out" };

    let service = Arc::new(KvService::new(shards, TENANTS as usize, |_| {
        let shard: Box<dyn ShardStore> = Box::new(make_structure("elim-abtree"));
        shard
    }));
    let mut expected_sum = prefill(&service, keys_per_tenant, seed);

    println!(
        "obs overhead (elim-abtree, {shards} shards, {threads} client threads, \
         window {WINDOW}, telemetry {telemetry}):"
    );
    println!("{:>6} {:>12} {:>10}", "trial", "requests/us", "valid");
    let requests = requests_per_thread * threads as u64;
    let mut trial_mops = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        let (secs, net) = run_trial(
            &service,
            keys_per_tenant,
            threads,
            requests_per_thread,
            seed ^ (trial as u64) << 16,
        );
        expected_sum += net;
        let validated = service.key_sum() as i128 == expected_sum;
        let mops = requests as f64 / secs / 1e6;
        trial_mops.push(mops);
        println!(
            "{:>6} {:>12.3} {:>10}",
            trial,
            mops,
            if validated { "ok" } else { "FAIL" }
        );
        assert!(validated, "key-sum validation failed at trial {trial}");
    }
    let best = trial_mops.iter().cloned().fold(f64::MIN, f64::max);

    // The pull cost of the spine itself: a full snapshot + render of the
    // loaded registry (per-shard op rows, EBR health, stage histograms).
    // With recording compiled out, this is the cost of the structural rows.
    let scrape_started = Instant::now();
    const SCRAPES: u32 = 100;
    let mut rendered = 0usize;
    for _ in 0..SCRAPES {
        rendered = std::hint::black_box(service.registry().render()).len();
    }
    let scrape_us = scrape_started.elapsed().as_secs_f64() * 1e6 / f64::from(SCRAPES);
    println!("scrape: {scrape_us:.1} us per render ({rendered} bytes)");

    let trials_json = trial_mops
        .iter()
        .map(|m| format!("{m}"))
        .collect::<Vec<_>>()
        .join(",");
    eprintln!(
        "{{\"experiment\":\"obs\",\"cell\":\"pipelined\",\"structure\":\"elim-abtree\",\
         \"shards\":{shards},\"threads\":{threads},\"telemetry\":\"{telemetry}\",\
         \"window\":{WINDOW},\"requests\":{requests},\"request_mops\":{best},\
         \"trial_mops\":[{trials_json}],\"scrape_us\":{scrape_us},\
         \"scrape_bytes\":{rendered}}}"
    );

    // The isolated-telemetry cell: single-threaded cache hits, owners
    // parked.  This is the comparison the <3% acceptance criterion reads
    // on machines where the pipelined cell is scheduler-bound.
    let cached_total: u64 = if smoke { 500_000 } else { 10_000_000 };
    println!();
    println!("cached-get (hot-key cache hits, single thread, telemetry {telemetry}):");
    println!("{:>6} {:>12}", "trial", "requests/us");
    let mut cached_mops = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        let secs = cached_get_trial(&service, cached_total);
        let mops = cached_total as f64 / secs / 1e6;
        cached_mops.push(mops);
        println!("{trial:>6} {mops:>12.3}");
    }
    let cached_best = cached_mops.iter().cloned().fold(f64::MIN, f64::max);
    let cached_json = cached_mops
        .iter()
        .map(|m| format!("{m}"))
        .collect::<Vec<_>>()
        .join(",");
    eprintln!(
        "{{\"experiment\":\"obs\",\"cell\":\"cached-get\",\"structure\":\"elim-abtree\",\
         \"shards\":{shards},\"threads\":1,\"telemetry\":\"{telemetry}\",\
         \"requests\":{cached_total},\"request_mops\":{cached_best},\
         \"trial_mops\":[{cached_json}]}}"
    );
}
