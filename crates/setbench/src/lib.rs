//! SetBench-style benchmark harness (paper §6).
//!
//! The paper evaluates every data structure with SetBench: each run prefills
//! the structure to its steady-state size, then `n` threads run a timed
//! measured phase in which each thread repeatedly draws a key from the
//! configured distribution and an operation from the configured mix, and the
//! total throughput (operations per microsecond) is reported.  A checksum
//! validation — the sum of keys each thread successfully inserted minus the
//! sum it deleted must equal the sum of keys left in the structure — guards
//! against broken implementations.
//!
//! This crate reproduces that methodology and exposes one driver binary per
//! figure/table of the paper (see `src/bin/`); the `bench-suite` crate's
//! Criterion benches call the same entry points with scaled-down durations.

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod registry;
pub mod report;

pub use figures::{
    default_thread_counts, run_microbench_figure, run_persistence_figure,
    run_persistence_overhead_table, run_scan_figure, run_ycsb_figure, FigureParams,
};
pub use harness::{
    run_microbench, run_ycsb, BatchScratch, MicrobenchConfig, MicrobenchInstance, YcsbConfig,
    YcsbInstance, BATCH_OP_SIZE,
};
pub use registry::{
    descriptor, make_structure, names_in, native_scan_structures, persistent_structures,
    scan_benchmark_structures, scan_support, snapshot_scan_structures, structure_names,
    volatile_structures, Benchable, ScanSupport,
    StructureCategory, StructureDescriptor, STRUCTURES,
};
pub use report::{print_figure_header, print_result_row, BenchResult};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn microbench_runs_and_validates_every_structure() {
        for name in structure_names() {
            let cfg = MicrobenchConfig {
                structure: name.to_string(),
                key_range: 1_000,
                update_percent: 50,
                zipf: 0.0,
                threads: 2,
                duration: Duration::from_millis(50),
                seed: 1,
                ..Default::default()
            };
            let result = run_microbench(&cfg);
            assert!(result.validated, "validation failed for {name}");
            assert!(result.total_ops > 0, "no ops completed for {name}");
            assert_eq!(result.structure, *name);
        }
    }

    /// Acceptance check for the scan subsystem: a YCSB-E (scan-heavy) mix
    /// runs against every registered structure — native scan or fallback —
    /// and passes the key-sum validation.
    #[test]
    fn ycsb_e_runs_and_validates_every_structure() {
        for name in structure_names() {
            let cfg = YcsbConfig {
                structure: name.to_string(),
                kind: workload::YcsbWorkloadKind::E,
                records: 2_000,
                zipf: 0.5,
                max_scan_len: 50,
                threads: 2,
                duration: Duration::from_millis(40),
                seed: 5,
                ..Default::default()
            };
            let result = run_ycsb(&cfg);
            assert!(result.validated, "validation failed for {name}");
            assert!(result.scan_ops > 0, "no scans completed for {name}");
            assert_eq!(result.experiment, "ycsb-e");
        }
    }

    /// A scan-heavy microbenchmark mix exercises `Operation::Scan` through
    /// the same prefill/measure/validate pipeline as the point mixes.
    #[test]
    fn scan_mix_microbench_validates() {
        let cfg = MicrobenchConfig {
            structure: "occ-abtree".into(),
            key_range: 4_000,
            update_percent: 20,
            scan_percent: 30,
            max_scan_len: 64,
            zipf: 0.0,
            threads: 2,
            duration: Duration::from_millis(60),
            seed: 11,
            ..Default::default()
        };
        let r = run_microbench(&cfg);
        assert!(r.validated);
        assert!(r.scan_ops > 0);
        // ~30% of operations should be scans.
        let share = r.scan_ops as f64 / r.total_ops as f64;
        assert!((0.2..0.4).contains(&share), "scan share = {share}");
    }

    #[test]
    fn zipfian_microbench_validates() {
        let cfg = MicrobenchConfig {
            structure: "elim-abtree".into(),
            key_range: 10_000,
            update_percent: 100,
            zipf: 1.0,
            threads: 4,
            duration: Duration::from_millis(100),
            seed: 7,
            ..Default::default()
        };
        let r = run_microbench(&cfg);
        assert!(r.validated);
        assert!(r.throughput_mops > 0.0);
    }

    #[test]
    fn ycsb_runs() {
        let cfg = YcsbConfig {
            structure: "occ-abtree".into(),
            records: 10_000,
            zipf: 0.5,
            threads: 2,
            duration: Duration::from_millis(50),
            seed: 3,
            ..Default::default()
        };
        let r = run_ycsb(&cfg);
        assert!(r.total_ops > 0);
        assert!(r.validated);
    }

    #[test]
    fn unknown_structure_panics() {
        assert!(std::panic::catch_unwind(|| make_structure("no-such-tree")).is_err());
    }
}
