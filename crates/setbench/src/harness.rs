//! The benchmark harness: prefill, timed measured phase, validation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::prelude::*;
use workload::{
    KeyDistribution, Operation, OperationMix, YcsbOp, YcsbWorkload, YcsbWorkloadKind,
    DEFAULT_MAX_SCAN_LEN,
};

use abebr::SmrPolicy;

use crate::registry::{make_structure_smr, Benchable};
use crate::report::BenchResult;

/// Configuration of one microbenchmark run (one cell of Figures 12-15/17/18
/// and Table 1).
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Registry name of the data structure to run.
    pub structure: String,
    /// Number of distinct keys.
    pub key_range: u64,
    /// Percentage of operations that are updates (split evenly between
    /// inserts and deletes).
    pub update_percent: u32,
    /// Percentage of operations that are range scans (taken out of the find
    /// share; 0 reproduces the paper's point-operation mixes).
    pub scan_percent: u32,
    /// Upper bound of the uniform `1..=max` scan-length distribution.
    pub max_scan_len: u64,
    /// Zipf parameter (0 = uniform, the paper also uses 1.0; YCSB uses 0.5).
    pub zipf: f64,
    /// Number of worker threads.
    pub threads: usize,
    /// Length of the measured phase.
    pub duration: Duration,
    /// RNG seed (each thread derives its own stream).
    pub seed: u64,
    /// SMR backend for the structure's reclamation collector
    /// (`--smr={ebr,hp}` in the harness binaries).
    pub smr: SmrPolicy,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        Self {
            structure: "elim-abtree".into(),
            key_range: 1_000,
            update_percent: 50,
            scan_percent: 0,
            max_scan_len: DEFAULT_MAX_SCAN_LEN,
            zipf: 0.0,
            threads: 1,
            duration: Duration::from_millis(50),
            seed: 1,
            smr: SmrPolicy::default(),
        }
    }
}

/// Configuration of one YCSB run (Figure 16 for Workload A, Figure 18 for
/// the scan Workload E).
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Registry name of the data structure used as the index.
    pub structure: String,
    /// Which YCSB core workload to run.
    pub kind: YcsbWorkloadKind,
    /// Number of records loaded before the measured phase.
    pub records: u64,
    /// Request-distribution Zipf factor (0.5 for Workload A in the paper).
    pub zipf: f64,
    /// Upper bound of the uniform scan-length distribution (Workload E).
    pub max_scan_len: u64,
    /// Number of worker threads.
    pub threads: usize,
    /// Length of the measured phase.
    pub duration: Duration,
    /// RNG seed.
    pub seed: u64,
    /// SMR backend for the structure's reclamation collector.
    pub smr: SmrPolicy,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        Self {
            structure: "elim-abtree".into(),
            kind: YcsbWorkloadKind::A,
            records: 10_000,
            zipf: 0.5,
            max_scan_len: DEFAULT_MAX_SCAN_LEN,
            threads: 1,
            duration: Duration::from_millis(50),
            seed: 1,
            smr: SmrPolicy::default(),
        }
    }
}

/// The nominal update percentage of a YCSB workload (for the result row).
fn ycsb_update_percent(kind: YcsbWorkloadKind) -> u32 {
    match kind {
        YcsbWorkloadKind::A => 50,
        YcsbWorkloadKind::B | YcsbWorkloadKind::D | YcsbWorkloadKind::E => 5,
        YcsbWorkloadKind::C => 0,
    }
}

/// Per-thread tally used for the paper's checksum validation.
#[derive(Default)]
struct ThreadTally {
    ops: u64,
    scan_ops: u64,
    inserted_sum: i128,
    deleted_sum: i128,
}

/// Keys per batched multi-get/multi-put when a mix draws
/// [`Operation::MGet`]/[`Operation::MPut`] (a batch counts as one
/// operation, like a scan).
pub const BATCH_OP_SIZE: usize = 8;

/// Reusable buffers for batched operations drawn from an operation mix —
/// the one copy of the "draw a [`BATCH_OP_SIZE`]-key batch and run it
/// through the session's batch op" policy, shared by this harness and the
/// Criterion bench helpers.
#[derive(Default)]
pub struct BatchScratch {
    keys: Vec<u64>,
    pairs: Vec<(u64, u64)>,
    results: Vec<Option<u64>>,
}

impl BatchScratch {
    /// Draws a [`BATCH_OP_SIZE`]-key batch (starting with `key`) and runs it
    /// through `session.get_batch`.
    pub fn mget<H: abtree::MapHandle + ?Sized>(
        &mut self,
        session: &mut H,
        dist: &KeyDistribution,
        key: u64,
        rng: &mut StdRng,
    ) {
        self.keys.clear();
        self.keys.push(key);
        for _ in 1..BATCH_OP_SIZE {
            self.keys.push(dist.sample(rng));
        }
        session.get_batch(&self.keys, &mut self.results);
        std::hint::black_box(self.results.len());
    }

    /// Draws a [`BATCH_OP_SIZE`]-pair batch (starting with `key`) and runs
    /// it through `session.insert_batch`, returning the key-sum of the pairs
    /// actually inserted (for the checksum validation).
    pub fn mput<H: abtree::MapHandle + ?Sized>(
        &mut self,
        session: &mut H,
        dist: &KeyDistribution,
        key: u64,
        rng: &mut StdRng,
    ) -> i128 {
        self.pairs.clear();
        self.pairs.push((key, key));
        for _ in 1..BATCH_OP_SIZE {
            let k = dist.sample(rng);
            self.pairs.push((k, k));
        }
        session.insert_batch(&self.pairs, &mut self.results);
        self.pairs
            .iter()
            .zip(&self.results)
            .filter(|(_, prev)| prev.is_none())
            .map(|(&(k, _), _)| k as i128)
            .sum()
    }
}

/// Parallel prefill to the steady-state size, tracking the key checksum of
/// everything successfully inserted.
fn prefill_parallel(
    map: &Arc<Box<dyn Benchable>>,
    key_range: u64,
    target: u64,
    threads: usize,
    seed: u64,
) -> i128 {
    let inserted = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0)); // wrapping sum of keys (mod 2^64)
    let mut sum_i128 = 0i128;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads.max(1) {
            let map = Arc::clone(map);
            let inserted = Arc::clone(&inserted);
            let checksum = Arc::clone(&checksum);
            handles.push(scope.spawn(move || {
                let mut session = map.handle();
                let mut rng = StdRng::seed_from_u64(seed ^ (0x5EED + t as u64));
                let mut local_sum = 0i128;
                while inserted.load(Ordering::Relaxed) < target {
                    let key = rng.gen_range(0..key_range);
                    if session.insert(key, key).is_none() {
                        inserted.fetch_add(1, Ordering::Relaxed);
                        checksum.fetch_add(key, Ordering::Relaxed);
                        local_sum += key as i128;
                    }
                }
                local_sum
            }));
        }
        for h in handles {
            sum_i128 += h.join().expect("prefill thread panicked");
        }
    });
    sum_i128
}

/// End-of-run reclamation columns for a result row: the backend label plus
/// the `unreclaimed` / lag gauges scraped from the structure's collector
/// (`"none"` and zeros for structures that don't reclaim through one).
fn reclamation_columns(map: &dyn Benchable, policy: SmrPolicy) -> (String, u64, u64) {
    match map.ebr_stats() {
        Some(stats) => (
            policy.name().to_string(),
            stats.unreclaimed,
            stats.oldest_epoch_age,
        ),
        None => ("none".to_string(), 0, 0),
    }
}

/// Runs one microbenchmark cell: prefill, measured phase, validation.
pub fn run_microbench(cfg: &MicrobenchConfig) -> BenchResult {
    let map: Arc<Box<dyn Benchable>> = Arc::new(make_structure_smr(&cfg.structure, cfg.smr));
    let mix = OperationMix::from_update_and_scan_percent(cfg.update_percent, cfg.scan_percent);
    let dist = KeyDistribution::from_zipf_parameter(cfg.key_range, cfg.zipf);

    // Prefill to half the key range (§6 "Methodology").
    let target = cfg.key_range / 2;
    let prefill_sum = prefill_parallel(&map, cfg.key_range, target, cfg.threads, cfg.seed);

    // Measured phase.
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut tallies: Vec<ThreadTally> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            let dist = dist.clone();
            let seed = cfg.seed;
            let max_scan_len = cfg.max_scan_len.max(1);
            handles.push(scope.spawn(move || {
                // One session per worker for the whole measured phase: this
                // is the handle API's intended usage (and what makes per-op
                // pinning a local epoch bump).
                let mut session = map.handle();
                let mut rng = StdRng::seed_from_u64(seed ^ (0xBEEF + 31 * t as u64));
                let mut tally = ThreadTally::default();
                let mut scan_buf: Vec<(u64, u64)> = Vec::new();
                let mut batch = BatchScratch::default();
                while !stop.load(Ordering::Relaxed) {
                    // Batch a few operations per stop-flag check.
                    for _ in 0..64 {
                        let key = dist.sample(&mut rng);
                        match mix.sample(&mut rng) {
                            Operation::Insert => {
                                if session.insert(key, key).is_none() {
                                    tally.inserted_sum += key as i128;
                                }
                            }
                            Operation::Delete => {
                                if session.delete(key).is_some() {
                                    tally.deleted_sum += key as i128;
                                }
                            }
                            Operation::Find => {
                                std::hint::black_box(session.get(key));
                            }
                            Operation::Scan => {
                                let len = rng.gen_range(1..=max_scan_len);
                                session.range(key, key.saturating_add(len - 1), &mut scan_buf);
                                std::hint::black_box(scan_buf.len());
                                tally.scan_ops += 1;
                            }
                            Operation::MGet => {
                                batch.mget(&mut session, &dist, key, &mut rng);
                            }
                            Operation::MPut => {
                                tally.inserted_sum +=
                                    batch.mput(&mut session, &dist, key, &mut rng);
                            }
                        }
                        tally.ops += 1;
                    }
                }
                tally
            }));
        }
        // Sleep for the measured duration, then stop the workers.
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            tallies.push(h.join().expect("worker thread panicked"));
        }
    });
    let elapsed = started.elapsed();

    let total_ops: u64 = tallies.iter().map(|t| t.ops).sum();
    let scan_ops: u64 = tallies.iter().map(|t| t.scan_ops).sum();
    let net: i128 = prefill_sum
        + tallies.iter().map(|t| t.inserted_sum).sum::<i128>()
        - tallies.iter().map(|t| t.deleted_sum).sum::<i128>();
    let validated = map.key_sum() as i128 == net;
    let (smr, unreclaimed, reclaim_lag) = reclamation_columns(map.as_ref().as_ref(), cfg.smr);

    BenchResult {
        experiment: String::new(),
        structure: cfg.structure.clone(),
        threads: cfg.threads,
        key_range: cfg.key_range,
        update_percent: cfg.update_percent,
        zipf: cfg.zipf,
        total_ops,
        scan_ops,
        duration_secs: elapsed.as_secs_f64(),
        throughput_mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        validated,
        smr,
        unreclaimed,
        reclaim_lag,
    }
}

/// Runs one YCSB cell (Figure 16 for Workload A, Figure 18 for Workload E):
/// load phase then a timed request phase.  Writes in Workload A touch the
/// row, not the index (paper §6.2), so both reads and updates are index
/// lookups; only inserts (Workloads D/E) modify the index.  Workload E scans
/// drive `ConcurrentMap::range` over the requested key window.
pub fn run_ycsb(cfg: &YcsbConfig) -> BenchResult {
    let map: Arc<Box<dyn Benchable>> = Arc::new(make_structure_smr(&cfg.structure, cfg.smr));
    let workload = YcsbWorkload::new(cfg.kind, cfg.records, cfg.zipf)
        .with_max_scan_len(cfg.max_scan_len.max(1));

    // Load phase: insert every record, split across threads.
    let mut load_sum = 0i128;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let chunk = cfg.records / cfg.threads.max(1) as u64 + 1;
        for t in 0..cfg.threads.max(1) as u64 {
            let map = Arc::clone(&map);
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(cfg.records);
            handles.push(scope.spawn(move || {
                let mut session = map.handle();
                let mut sum = 0i128;
                for key in lo..hi {
                    if session.insert(key, key).is_none() {
                        sum += key as i128;
                    }
                }
                sum
            }));
        }
        for h in handles {
            load_sum += h.join().expect("load thread panicked");
        }
    });

    // Request phase.
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let mut tallies: Vec<ThreadTally> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let map = Arc::clone(&map);
            let stop = Arc::clone(&stop);
            let workload = workload.clone();
            let seed = cfg.seed;
            handles.push(scope.spawn(move || {
                let mut session = map.handle();
                let mut rng = StdRng::seed_from_u64(seed ^ (0xFACE + 17 * t as u64));
                let mut tally = ThreadTally::default();
                // The "database rows" behind the index: a per-thread sink that
                // models the row write of a YCSB update.
                let mut row_sink: u64 = 0;
                let mut scan_buf: Vec<(u64, u64)> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..64 {
                        match workload.next_op(&mut rng) {
                            YcsbOp::Read(k) => {
                                std::hint::black_box(session.get(k));
                            }
                            YcsbOp::Update(k) => {
                                if let Some(row) = session.get(k) {
                                    row_sink = row_sink.wrapping_add(row);
                                }
                            }
                            YcsbOp::Insert(k) => {
                                if session.insert(k, k).is_none() {
                                    tally.inserted_sum += k as i128;
                                }
                            }
                            YcsbOp::Scan(k, len) => {
                                session.range(k, k.saturating_add(len - 1), &mut scan_buf);
                                for &(_, row) in &scan_buf {
                                    row_sink = row_sink.wrapping_add(row);
                                }
                                tally.scan_ops += 1;
                            }
                        }
                        tally.ops += 1;
                    }
                }
                std::hint::black_box(row_sink);
                tally
            }));
        }
        std::thread::sleep(cfg.duration);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            tallies.push(h.join().expect("worker thread panicked"));
        }
    });
    let elapsed = started.elapsed();

    let total_ops: u64 = tallies.iter().map(|t| t.ops).sum();
    let scan_ops: u64 = tallies.iter().map(|t| t.scan_ops).sum();
    let net: i128 = load_sum + tallies.iter().map(|t| t.inserted_sum).sum::<i128>();
    let validated = map.key_sum() as i128 == net;
    let (smr, unreclaimed, reclaim_lag) = reclamation_columns(map.as_ref().as_ref(), cfg.smr);

    BenchResult {
        experiment: workload.label().into(),
        structure: cfg.structure.clone(),
        threads: cfg.threads,
        key_range: cfg.records,
        update_percent: ycsb_update_percent(cfg.kind),
        zipf: cfg.zipf,
        total_ops,
        scan_ops,
        duration_secs: elapsed.as_secs_f64(),
        throughput_mops: total_ops as f64 / elapsed.as_secs_f64() / 1e6,
        validated,
        smr,
        unreclaimed,
        reclaim_lag,
    }
}

/// A prefilled microbenchmark instance for latency-style measurements.
///
/// The Criterion benches (crate `bench-suite`) measure the wall-clock time
/// needed to complete a fixed number of operations across the configured
/// thread count, which Criterion converts into a throughput figure.  The
/// instance is prefilled once and reused across measurement iterations; the
/// balanced insert/delete mix keeps it at its steady-state size.
pub struct MicrobenchInstance {
    map: Arc<Box<dyn Benchable>>,
    cfg: MicrobenchConfig,
    dist: KeyDistribution,
    mix: OperationMix,
}

impl MicrobenchInstance {
    /// Builds the data structure and prefills it to half the key range.
    pub fn new(cfg: MicrobenchConfig) -> Self {
        let map: Arc<Box<dyn Benchable>> = Arc::new(make_structure_smr(&cfg.structure, cfg.smr));
        let target = cfg.key_range / 2;
        prefill_parallel(&map, cfg.key_range, target, cfg.threads, cfg.seed);
        let dist = KeyDistribution::from_zipf_parameter(cfg.key_range, cfg.zipf);
        let mix = OperationMix::from_update_and_scan_percent(cfg.update_percent, cfg.scan_percent);
        Self {
            map,
            cfg,
            dist,
            mix,
        }
    }

    /// Runs approximately `total_ops` operations split across the configured
    /// threads and returns the elapsed wall-clock time.
    pub fn run_ops(&self, total_ops: u64) -> Duration {
        let per_thread = total_ops / self.cfg.threads.max(1) as u64;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..self.cfg.threads {
                let map = Arc::clone(&self.map);
                let dist = self.dist.clone();
                let mix = self.mix;
                let seed = self.cfg.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15);
                let max_scan_len = self.cfg.max_scan_len.max(1);
                scope.spawn(move || {
                    let mut session = map.handle();
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut scan_buf: Vec<(u64, u64)> = Vec::new();
                    let mut batch = BatchScratch::default();
                    for _ in 0..per_thread {
                        let key = dist.sample(&mut rng);
                        match mix.sample(&mut rng) {
                            Operation::Insert => {
                                std::hint::black_box(session.insert(key, key));
                            }
                            Operation::Delete => {
                                std::hint::black_box(session.delete(key));
                            }
                            Operation::Find => {
                                std::hint::black_box(session.get(key));
                            }
                            Operation::Scan => {
                                let len = rng.gen_range(1..=max_scan_len);
                                session.range(key, key.saturating_add(len - 1), &mut scan_buf);
                                std::hint::black_box(scan_buf.len());
                            }
                            Operation::MGet => {
                                batch.mget(&mut session, &dist, key, &mut rng);
                            }
                            Operation::MPut => {
                                std::hint::black_box(batch.mput(
                                    &mut session,
                                    &dist,
                                    key,
                                    &mut rng,
                                ));
                            }
                        }
                    }
                });
            }
        });
        start.elapsed()
    }

    /// The underlying map (for post-run validation in tests).
    pub fn map(&self) -> &dyn Benchable {
        self.map.as_ref().as_ref()
    }
}

/// A loaded YCSB instance for latency-style measurements (Figure 16's bench).
pub struct YcsbInstance {
    map: Arc<Box<dyn Benchable>>,
    workload: YcsbWorkload,
    threads: usize,
    seed: u64,
}

impl YcsbInstance {
    /// Builds the index and loads `cfg.records` records.
    pub fn new(cfg: YcsbConfig) -> Self {
        let map: Arc<Box<dyn Benchable>> = Arc::new(make_structure_smr(&cfg.structure, cfg.smr));
        let workload = YcsbWorkload::new(cfg.kind, cfg.records, cfg.zipf)
            .with_max_scan_len(cfg.max_scan_len.max(1));
        std::thread::scope(|scope| {
            let chunk = cfg.records / cfg.threads.max(1) as u64 + 1;
            for t in 0..cfg.threads.max(1) as u64 {
                let map = Arc::clone(&map);
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(cfg.records);
                scope.spawn(move || {
                    let mut session = map.handle();
                    for key in lo..hi {
                        session.insert(key, key);
                    }
                });
            }
        });
        Self {
            map,
            workload,
            threads: cfg.threads,
            seed: cfg.seed,
        }
    }

    /// Runs approximately `total_ops` YCSB requests split across the threads
    /// and returns the elapsed wall-clock time.
    pub fn run_ops(&self, total_ops: u64) -> Duration {
        let per_thread = total_ops / self.threads.max(1) as u64;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..self.threads {
                let map = Arc::clone(&self.map);
                let workload = self.workload.clone();
                let seed = self.seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15);
                scope.spawn(move || {
                    let mut session = map.handle();
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut sink = 0u64;
                    let mut scan_buf: Vec<(u64, u64)> = Vec::new();
                    for _ in 0..per_thread {
                        match workload.next_op(&mut rng) {
                            YcsbOp::Read(k) | YcsbOp::Update(k) => {
                                if let Some(v) = session.get(k) {
                                    sink = sink.wrapping_add(v);
                                }
                            }
                            YcsbOp::Insert(k) => {
                                std::hint::black_box(session.insert(k, k));
                            }
                            YcsbOp::Scan(k, len) => {
                                session.range(k, k.saturating_add(len - 1), &mut scan_buf);
                                sink = sink.wrapping_add(scan_buf.len() as u64);
                            }
                        }
                    }
                    std::hint::black_box(sink);
                });
            }
        });
        start.elapsed()
    }
}
