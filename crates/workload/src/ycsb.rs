//! YCSB-style workloads (paper §6.2, Figure 16).
//!
//! The Yahoo! Cloud Serving Benchmark drives a key-value store with a mix of
//! reads, updates, inserts and scans over a keyspace whose popularity follows
//! a (scrambled) Zipfian distribution.  The paper runs **Workload A** (50%
//! reads / 50% updates, request Zipf factor 0.5) against each data structure
//! used as the database *index*, and notes that "the writes in the YCSB
//! workload are to the database itself, not the index.  That is, a YCSB write
//! simply reads the row pointer from the index, then locks the row, updates
//! it, and unlocks it (without modifying the index)."
//!
//! Accordingly [`YcsbOp::Update`] is an index *read* followed by a simulated
//! row write; only [`YcsbOp::Insert`] (Workload D-style) modifies the index.
//!
//! **Workload E** (95% scans / 5% inserts) is the standard scan benchmark:
//! each scan starts at a key drawn from the request distribution and covers
//! a request length drawn uniformly from `1..=max_scan_len` (the YCSB
//! default is uniform 1–100).  The harness turns each scan request into a
//! `ConcurrentMap::range` call over that key window.

use rand::Rng;

use crate::zipf::KeyDistribution;

/// The YCSB default upper bound for uniform scan lengths (Workload E).
pub const DEFAULT_MAX_SCAN_LEN: u64 = 100;

/// The standard YCSB core workload letters reproduced here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbWorkloadKind {
    /// 50% reads, 50% updates (update = row write through the index).
    A,
    /// 95% reads, 5% updates.
    B,
    /// 100% reads.
    C,
    /// 95% reads, 5% inserts (inserts grow the index).
    D,
    /// 95% range scans, 5% inserts (the scan workload).
    E,
}

/// One YCSB request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbOp {
    /// Read the row behind `key` (index lookup).
    Read(u64),
    /// Update the row behind `key` (index lookup + row write; the index is
    /// not modified).
    Update(u64),
    /// Insert a new row with `key` (modifies the index).
    Insert(u64),
    /// Scan the rows behind the key window `[key, key + len)` (ordered index
    /// traversal; the index is not modified).
    Scan(u64, u64),
}

impl YcsbOp {
    /// The key this request touches (the start key for scans).
    pub fn key(&self) -> u64 {
        match *self {
            YcsbOp::Read(k) | YcsbOp::Update(k) | YcsbOp::Insert(k) | YcsbOp::Scan(k, _) => k,
        }
    }
}

/// A YCSB workload generator.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    kind: YcsbWorkloadKind,
    request_dist: KeyDistribution,
    key_range: u64,
    max_scan_len: u64,
}

impl YcsbWorkload {
    /// Creates the paper's Figure 16 configuration: Workload A with the given
    /// record count and request Zipf factor (0.5 in the paper; pass 0.0 for a
    /// uniform request distribution).
    pub fn workload_a(records: u64, zipf_factor: f64) -> Self {
        Self::new(YcsbWorkloadKind::A, records, zipf_factor)
    }

    /// Creates the scan workload (E): 95% scans / 5% inserts, scan lengths
    /// uniform in `1..=`[`DEFAULT_MAX_SCAN_LEN`].
    pub fn workload_e(records: u64, zipf_factor: f64) -> Self {
        Self::new(YcsbWorkloadKind::E, records, zipf_factor)
    }

    /// Creates any of the supported workloads.
    pub fn new(kind: YcsbWorkloadKind, records: u64, zipf_factor: f64) -> Self {
        let request_dist = if zipf_factor == 0.0 {
            KeyDistribution::uniform(records)
        } else {
            // YCSB scrambles the Zipfian ranks across the keyspace.
            KeyDistribution::zipfian_with(records, zipf_factor, true)
        };
        Self {
            kind,
            request_dist,
            key_range: records,
            max_scan_len: DEFAULT_MAX_SCAN_LEN,
        }
    }

    /// Sets the upper bound of the uniform `1..=max` scan-length
    /// distribution (Workload E only; ignored by the other workloads).
    pub fn with_max_scan_len(mut self, max: u64) -> Self {
        assert!(max >= 1, "scan lengths are drawn from 1..=max");
        self.max_scan_len = max;
        self
    }

    /// The configured scan-length upper bound.
    pub fn max_scan_len(&self) -> u64 {
        self.max_scan_len
    }

    /// Number of records the index should be loaded with before the run.
    pub fn record_count(&self) -> u64 {
        self.key_range
    }

    /// The workload letter.
    pub fn kind(&self) -> YcsbWorkloadKind {
        self.kind
    }

    /// Human-readable label (e.g. `"ycsb-a"`).
    pub fn label(&self) -> &'static str {
        match self.kind {
            YcsbWorkloadKind::A => "ycsb-a",
            YcsbWorkloadKind::B => "ycsb-b",
            YcsbWorkloadKind::C => "ycsb-c",
            YcsbWorkloadKind::D => "ycsb-d",
            YcsbWorkloadKind::E => "ycsb-e",
        }
    }

    /// Generates the keys to load in the load phase (`0..records`).
    pub fn load_keys(&self) -> impl Iterator<Item = u64> {
        0..self.key_range
    }

    /// Samples the next request.
    pub fn next_op<R: Rng + ?Sized>(&self, rng: &mut R) -> YcsbOp {
        let key = self.request_dist.sample(rng);
        let p = rng.gen_range(0..100u32);
        match self.kind {
            YcsbWorkloadKind::A => {
                if p < 50 {
                    YcsbOp::Read(key)
                } else {
                    YcsbOp::Update(key)
                }
            }
            YcsbWorkloadKind::B => {
                if p < 95 {
                    YcsbOp::Read(key)
                } else {
                    YcsbOp::Update(key)
                }
            }
            YcsbWorkloadKind::C => YcsbOp::Read(key),
            YcsbWorkloadKind::D => {
                if p < 95 {
                    YcsbOp::Read(key)
                } else {
                    YcsbOp::Insert(key)
                }
            }
            YcsbWorkloadKind::E => {
                if p < 95 {
                    let len = rng.gen_range(1..=self.max_scan_len);
                    YcsbOp::Scan(key, len)
                } else {
                    YcsbOp::Insert(key)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn workload_a_is_half_reads_half_updates() {
        let w = YcsbWorkload::workload_a(100_000, 0.5);
        let mut rng = StdRng::seed_from_u64(0);
        let (mut reads, mut updates, mut inserts) = (0u32, 0u32, 0u32);
        for _ in 0..50_000 {
            match w.next_op(&mut rng) {
                YcsbOp::Read(_) => reads += 1,
                YcsbOp::Update(_) => updates += 1,
                YcsbOp::Insert(_) => inserts += 1,
                YcsbOp::Scan(..) => panic!("workload A never scans"),
            }
        }
        assert_eq!(inserts, 0);
        assert!((23_000..27_000).contains(&reads));
        assert!((23_000..27_000).contains(&updates));
        assert_eq!(w.label(), "ycsb-a");
    }

    #[test]
    fn workload_c_is_read_only() {
        let w = YcsbWorkload::new(YcsbWorkloadKind::C, 1_000, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1_000 {
            assert!(matches!(w.next_op(&mut rng), YcsbOp::Read(_)));
        }
    }

    #[test]
    fn keys_stay_in_range() {
        let w = YcsbWorkload::workload_a(5_000, 0.99);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            assert!(w.next_op(&mut rng).key() < 5_000);
        }
    }

    #[test]
    fn load_keys_cover_range() {
        let w = YcsbWorkload::workload_a(100, 0.5);
        let keys: Vec<u64> = w.load_keys().collect();
        assert_eq!(keys.len(), 100);
        assert_eq!(keys[0], 0);
        assert_eq!(keys[99], 99);
    }

    #[test]
    fn workload_d_inserts_sometimes() {
        let w = YcsbWorkload::new(YcsbWorkloadKind::D, 10_000, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let inserts = (0..10_000)
            .filter(|_| matches!(w.next_op(&mut rng), YcsbOp::Insert(_)))
            .count();
        assert!((300..800).contains(&inserts), "inserts = {inserts}");
    }

    #[test]
    fn workload_e_is_scan_heavy_with_default_lengths() {
        let w = YcsbWorkload::workload_e(10_000, 0.5);
        assert_eq!(w.label(), "ycsb-e");
        assert_eq!(w.max_scan_len(), DEFAULT_MAX_SCAN_LEN);
        let mut rng = StdRng::seed_from_u64(2);
        let (mut scans, mut inserts) = (0u32, 0u32);
        let mut seen_lens = std::collections::HashSet::new();
        for _ in 0..50_000 {
            match w.next_op(&mut rng) {
                YcsbOp::Scan(start, len) => {
                    assert!(start < 10_000);
                    assert!((1..=DEFAULT_MAX_SCAN_LEN).contains(&len), "len = {len}");
                    seen_lens.insert(len);
                    scans += 1;
                }
                YcsbOp::Insert(_) => inserts += 1,
                other => panic!("workload E only scans and inserts, got {other:?}"),
            }
        }
        assert!((46_000..49_000).contains(&scans), "scans = {scans}");
        assert!((1_500..3_500).contains(&inserts), "inserts = {inserts}");
        // Uniform 1..=100: essentially every length shows up in 47k draws.
        assert!(seen_lens.len() > 95, "lengths drawn: {}", seen_lens.len());
    }

    #[test]
    fn workload_e_scan_length_is_configurable() {
        let w = YcsbWorkload::workload_e(1_000, 0.0).with_max_scan_len(7);
        assert_eq!(w.max_scan_len(), 7);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            if let YcsbOp::Scan(_, len) = w.next_op(&mut rng) {
                assert!((1..=7).contains(&len));
            }
        }
    }
}
