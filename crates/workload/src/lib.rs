//! Workload generation for the SetBench-style benchmarks.
//!
//! The paper's evaluation (§6) drives every data structure with:
//!
//! * a **key distribution** — either uniform over the key range or Zipfian
//!   ("the k-th most frequent key is requested with probability proportional
//!   to 1/k^s"), with s = 1 for the skewed experiments and s = 0.5 for YCSB
//!   Workload A;
//! * an **operation mix** — x% updates (split evenly between inserts and
//!   deletes) and (100 − x)% finds, for x ∈ {100, 50, 20, 10, 5};
//! * a **prefill phase** that inserts a random subset of keys until the
//!   structure reaches its steady-state size (half the key range);
//! * the **YCSB Workload A** access pattern for Figure 16.
//!
//! This crate implements those generators.  The Zipfian sampler uses
//! Hörmann's rejection-inversion method, which samples in O(1) expected time
//! without precomputing the harmonic normalization constant, so it scales to
//! the paper's 100M-key configurations.

#![warn(missing_docs)]

pub mod mix;
pub mod prefill;
pub mod tenant;
pub mod ycsb;
pub mod zipf;

pub use mix::{MixError, Operation, OperationMix};
pub use prefill::{prefill, PrefillReport};
pub use tenant::TenantKeyDistribution;
pub use ycsb::{YcsbOp, YcsbWorkload, YcsbWorkloadKind, DEFAULT_MAX_SCAN_LEN};
pub use zipf::KeyDistribution;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_workload_generation() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = KeyDistribution::zipfian(1_000, 1.0);
        let mix = OperationMix::from_update_percent(50);
        let mut updates = 0usize;
        for _ in 0..10_000 {
            let key = dist.sample(&mut rng);
            assert!(key < 1_000);
            match mix.sample(&mut rng) {
                Operation::Insert | Operation::Delete => updates += 1,
                Operation::Find | Operation::Scan | Operation::MGet | Operation::MPut => {}
            }
        }
        // 50% +- a few percent.
        assert!((4_000..6_000).contains(&updates), "updates = {updates}");
    }
}
