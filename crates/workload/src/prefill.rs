//! Prefilling to the steady-state size.
//!
//! The paper (§6, "Methodology"): "Each experiment run starts with a
//! prefilling phase, in which a random subset of 8-byte keys and values are
//! inserted into the data structure until the data structure size reaches its
//! expected steady-state size (half of the key range, since the proportions
//! of inserts and deletes are equal in our experiments)."

use rand::Rng;

/// Outcome of a prefill phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrefillReport {
    /// Number of keys successfully inserted (== the target size).
    pub inserted: u64,
    /// Number of insert attempts that found the key already present.
    pub duplicates: u64,
}

/// The steady-state size for a given key range and update mix: half the key
/// range when inserts and deletes are equally likely, the full range for a
/// read-only mix (nothing is ever deleted), otherwise proportional to the
/// insert share of updates.
pub fn steady_state_size(key_range: u64, insert_pct: u32, delete_pct: u32) -> u64 {
    if insert_pct + delete_pct == 0 || insert_pct == delete_pct {
        return key_range / 2;
    }
    // General case: in steady state the fraction of present keys p satisfies
    // insert_rate * (1 - p) = delete_rate * p.
    let i = insert_pct as f64;
    let d = delete_pct as f64;
    ((i / (i + d)) * key_range as f64).round() as u64
}

/// Inserts uniformly random keys (with value = key) through `insert` until
/// `target` distinct keys have been inserted.  `insert` must return `true`
/// when the key was newly inserted and `false` when it was already present.
///
/// With the session-handle map API, the closure is typically backed by the
/// calling thread's own session, e.g.
/// `|k, v| session.insert(k, v).is_none()` where `session` is the
/// `abtree::MapHandle` the worker opened for its whole run (the `setbench`
/// harness prefills exactly this way).
pub fn prefill<R: Rng + ?Sized>(
    rng: &mut R,
    key_range: u64,
    target: u64,
    mut insert: impl FnMut(u64, u64) -> bool,
) -> PrefillReport {
    assert!(target <= key_range, "cannot prefill beyond the key range");
    let mut report = PrefillReport::default();
    // Random-subset phase: efficient while the structure is sparse.
    while report.inserted < target {
        // Once the remaining fraction is small, switch to a scan so the tail
        // does not degenerate into coupon collecting.
        if report.inserted * 4 >= target * 3 && target * 2 >= key_range {
            for key in 0..key_range {
                if report.inserted >= target {
                    break;
                }
                if insert(key, key) {
                    report.inserted += 1;
                } else {
                    report.duplicates += 1;
                }
            }
            break;
        }
        let key = rng.gen_range(0..key_range);
        if insert(key, key) {
            report.inserted += 1;
        } else {
            report.duplicates += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn steady_state_half_for_equal_mix() {
        assert_eq!(steady_state_size(1_000, 25, 25), 500);
        assert_eq!(steady_state_size(1_000, 0, 0), 500);
    }

    #[test]
    fn steady_state_proportional_for_skewed_mix() {
        assert_eq!(steady_state_size(1_000, 30, 10), 750);
        assert_eq!(steady_state_size(1_000, 10, 30), 250);
    }

    #[test]
    fn prefill_reaches_exact_target() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut set = HashSet::new();
        let report = prefill(&mut rng, 10_000, 5_000, |k, _v| set.insert(k));
        assert_eq!(report.inserted, 5_000);
        assert_eq!(set.len(), 5_000);
    }

    #[test]
    fn prefill_full_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut set = HashSet::new();
        let report = prefill(&mut rng, 2_000, 2_000, |k, _v| set.insert(k));
        assert_eq!(report.inserted, 2_000);
        assert_eq!(set.len(), 2_000);
    }

    #[test]
    fn prefill_small_target_keeps_random_subset() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut set = HashSet::new();
        prefill(&mut rng, 1_000_000, 100, |k, _v| set.insert(k));
        assert_eq!(set.len(), 100);
        // A random subset of a huge range should not be the first 100 keys.
        assert!(set.iter().any(|&k| k >= 100));
    }
}
