//! Operation mixes.
//!
//! The paper's microbenchmark (§6.1) parameterizes each run by an *update
//! percentage* `x`: each thread repeatedly picks an operation that is an
//! insert with probability `x/2`, a delete with probability `x/2`, and a
//! `find` otherwise.  The prefill phase relies on inserts and deletes being
//! equally likely so the steady-state size is half the key range.
//!
//! The scan subsystem adds a fourth operation kind, [`Operation::Scan`]
//! (a range scan whose start key comes from the key distribution and whose
//! length the harness samples separately), taking its share out of the
//! find percentage.
//!
//! A mix is only constructible through validating constructors: the four
//! percentages must sum to exactly 100, otherwise [`OperationMix::sample`]
//! would silently skew the drawn proportions.  [`OperationMix::try_new`]
//! surfaces the violation as a [`MixError`]; the panicking constructors
//! wrap it.

use rand::Rng;

/// One dictionary operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// `insert(key, value)`.
    Insert,
    /// `delete(key)`.
    Delete,
    /// `find(key)`.
    Find,
    /// `range(key, key + len)` — a range scan starting at the drawn key.
    Scan,
}

/// Why a set of operation percentages does not form a valid mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixError {
    /// The percentages do not sum to 100 (the offending total; `None` when
    /// the sum itself overflowed `u32`).
    BadSum(Option<u32>),
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixError::BadSum(Some(total)) => {
                write!(f, "operation percentages must sum to 100, got {total}")
            }
            MixError::BadSum(None) => {
                write!(f, "operation percentages must sum to 100, sum overflows u32")
            }
        }
    }
}

impl std::error::Error for MixError {}

/// A probability mix over the four operations (percentages sum to 100).
///
/// The fields are private so that every constructed mix satisfies the
/// sum-to-100 invariant that [`sample`](Self::sample) depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationMix {
    insert_pct: u32,
    delete_pct: u32,
    find_pct: u32,
    scan_pct: u32,
}

impl OperationMix {
    /// Builds a mix from explicit percentages, validating that they sum to
    /// exactly 100.
    pub fn try_new(
        insert_pct: u32,
        delete_pct: u32,
        find_pct: u32,
        scan_pct: u32,
    ) -> Result<Self, MixError> {
        let total = insert_pct
            .checked_add(delete_pct)
            .and_then(|s| s.checked_add(find_pct))
            .and_then(|s| s.checked_add(scan_pct));
        match total {
            Some(100) => Ok(Self {
                insert_pct,
                delete_pct,
                find_pct,
                scan_pct,
            }),
            other => Err(MixError::BadSum(other)),
        }
    }

    /// Builds a scan-free mix from explicit percentages; they must sum
    /// to 100 (panics otherwise — use [`try_new`](Self::try_new) to handle
    /// the error).
    pub fn new(insert_pct: u32, delete_pct: u32, find_pct: u32) -> Self {
        Self::try_new(insert_pct, delete_pct, find_pct, 0)
            .expect("operation percentages must sum to 100")
    }

    /// The paper's convention: `update_percent` updates split evenly between
    /// inserts and deletes, the rest finds.  Odd percentages give the extra
    /// 1% to inserts.
    pub fn from_update_percent(update_percent: u32) -> Self {
        Self::from_update_and_scan_percent(update_percent, 0)
    }

    /// Scan-workload variant of [`from_update_percent`]: `update_percent`
    /// updates split evenly between inserts and deletes, `scan_percent`
    /// range scans, the rest finds.
    ///
    /// [`from_update_percent`]: Self::from_update_percent
    pub fn from_update_and_scan_percent(update_percent: u32, scan_percent: u32) -> Self {
        assert!(
            update_percent <= 100 && scan_percent <= 100 - update_percent,
            "update% + scan% must not exceed 100"
        );
        let delete = update_percent / 2;
        let insert = update_percent - delete;
        Self::try_new(insert, delete, 100 - update_percent - scan_percent, scan_percent)
            .expect("percentages sum to 100 by construction")
    }

    /// Percentage of inserts.
    pub fn insert_pct(&self) -> u32 {
        self.insert_pct
    }

    /// Percentage of deletes.
    pub fn delete_pct(&self) -> u32 {
        self.delete_pct
    }

    /// Percentage of finds.
    pub fn find_pct(&self) -> u32 {
        self.find_pct
    }

    /// Percentage of range scans.
    pub fn scan_pct(&self) -> u32 {
        self.scan_pct
    }

    /// Total update percentage (inserts + deletes).
    pub fn update_percent(&self) -> u32 {
        self.insert_pct + self.delete_pct
    }

    /// Samples an operation kind.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Operation {
        let p = rng.gen_range(0..100u32);
        if p < self.insert_pct {
            Operation::Insert
        } else if p < self.insert_pct + self.delete_pct {
            Operation::Delete
        } else if p < self.insert_pct + self.delete_pct + self.find_pct {
            Operation::Find
        } else {
            Operation::Scan
        }
    }

    /// Label such as `"u50"` (or `"u5s30"` for a scan mix) used in benchmark
    /// output.
    pub fn label(&self) -> String {
        if self.scan_pct > 0 {
            format!("u{}s{}", self.update_percent(), self.scan_pct)
        } else {
            format!("u{}", self.update_percent())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_update_percent_splits_evenly() {
        let m = OperationMix::from_update_percent(50);
        assert_eq!(m.insert_pct(), 25);
        assert_eq!(m.delete_pct(), 25);
        assert_eq!(m.find_pct(), 50);
        assert_eq!(m.scan_pct(), 0);
        assert_eq!(m.update_percent(), 50);
        assert_eq!(m.label(), "u50");
    }

    #[test]
    fn odd_update_percent() {
        let m = OperationMix::from_update_percent(5);
        assert_eq!(m.insert_pct() + m.delete_pct(), 5);
        assert_eq!(m.find_pct(), 95);
    }

    #[test]
    fn scan_mix_takes_share_from_finds() {
        let m = OperationMix::from_update_and_scan_percent(10, 60);
        assert_eq!(m.insert_pct(), 5);
        assert_eq!(m.delete_pct(), 5);
        assert_eq!(m.find_pct(), 30);
        assert_eq!(m.scan_pct(), 60);
        assert_eq!(m.label(), "u10s60");
    }

    #[test]
    fn extremes() {
        let all = OperationMix::from_update_percent(100);
        assert_eq!(all.find_pct(), 0);
        let none = OperationMix::from_update_percent(0);
        assert_eq!(none.insert_pct(), 0);
        assert_eq!(none.delete_pct(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(none.sample(&mut rng), Operation::Find);
        }
        let scans_only = OperationMix::from_update_and_scan_percent(0, 100);
        for _ in 0..100 {
            assert_eq!(scans_only.sample(&mut rng), Operation::Scan);
        }
    }

    #[test]
    fn try_new_rejects_bad_sums() {
        assert_eq!(
            OperationMix::try_new(50, 50, 50, 0),
            Err(MixError::BadSum(Some(150)))
        );
        assert_eq!(
            OperationMix::try_new(10, 10, 10, 10),
            Err(MixError::BadSum(Some(40)))
        );
        assert_eq!(
            OperationMix::try_new(u32::MAX, 1, 0, 0),
            Err(MixError::BadSum(None)),
            "overflowing sums must be rejected, not wrapped"
        );
        let err = OperationMix::try_new(0, 0, 0, 0).unwrap_err();
        assert!(err.to_string().contains("sum to 100"), "{err}");
        assert!(OperationMix::try_new(25, 25, 25, 25).is_ok());
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn invalid_mix_panics() {
        OperationMix::new(50, 50, 50);
    }

    #[test]
    #[should_panic(expected = "must not exceed 100")]
    fn oversubscribed_scan_share_panics() {
        OperationMix::from_update_and_scan_percent(60, 50);
    }

    #[test]
    fn sampling_respects_proportions() {
        let m = OperationMix::from_update_and_scan_percent(20, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let (mut ins, mut del, mut fnd, mut scn) = (0u32, 0u32, 0u32, 0u32);
        for _ in 0..100_000 {
            match m.sample(&mut rng) {
                Operation::Insert => ins += 1,
                Operation::Delete => del += 1,
                Operation::Find => fnd += 1,
                Operation::Scan => scn += 1,
            }
        }
        assert!((9_000..11_000).contains(&ins), "ins={ins}");
        assert!((9_000..11_000).contains(&del), "del={del}");
        assert!((68_000..72_000).contains(&fnd), "fnd={fnd}");
        assert!((9_000..11_000).contains(&scn), "scn={scn}");
    }
}
