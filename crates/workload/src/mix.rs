//! Operation mixes.
//!
//! The paper's microbenchmark (§6.1) parameterizes each run by an *update
//! percentage* `x`: each thread repeatedly picks an operation that is an
//! insert with probability `x/2`, a delete with probability `x/2`, and a
//! `find` otherwise.  The prefill phase relies on inserts and deletes being
//! equally likely so the steady-state size is half the key range.
//!
//! Two extensions widen the mix beyond the paper's three point operations:
//!
//! * the scan subsystem added [`Operation::Scan`] (a range scan whose start
//!   key comes from the key distribution and whose length the harness
//!   samples separately);
//! * the `kvserve` service layer added the batched [`Operation::MGet`] and
//!   [`Operation::MPut`] (a multi-get / multi-put whose key count the driver
//!   chooses), which model the request batching a key-value front-end
//!   performs.
//!
//! Scans and batches take their shares out of the find percentage.
//!
//! A mix is only constructible through validating constructors: the six
//! percentages must sum to exactly 100, otherwise [`OperationMix::sample`]
//! would silently skew the drawn proportions.  [`OperationMix::try_new`]
//! surfaces the violation as a [`MixError`]; the panicking constructors
//! wrap it.

use rand::Rng;

/// One dictionary operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// `insert(key, value)`.
    Insert,
    /// `delete(key)`.
    Delete,
    /// `find(key)`.
    Find,
    /// `range(key, key + len)` — a range scan starting at the drawn key.
    Scan,
    /// `get_batch(keys)` — a batched multi-get (the driver draws the keys).
    MGet,
    /// `insert_batch(pairs)` — a batched multi-put (the driver draws the
    /// pairs).
    MPut,
}

/// Why a set of operation percentages does not form a valid mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixError {
    /// The percentages do not sum to 100 (the offending total; `None` when
    /// the sum itself overflowed `u32`).
    BadSum(Option<u32>),
}

impl std::fmt::Display for MixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MixError::BadSum(Some(total)) => write!(
                f,
                "insert/delete/find/scan/mget/mput percentages must sum to 100, got {total}"
            ),
            MixError::BadSum(None) => write!(
                f,
                "insert/delete/find/scan/mget/mput percentages must sum to 100, \
                 sum overflows u32"
            ),
        }
    }
}

impl std::error::Error for MixError {}

/// A probability mix over the six operations (percentages sum to 100).
///
/// The fields are private so that every constructed mix satisfies the
/// sum-to-100 invariant that [`sample`](Self::sample) depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationMix {
    insert_pct: u32,
    delete_pct: u32,
    find_pct: u32,
    scan_pct: u32,
    mget_pct: u32,
    mput_pct: u32,
}

impl OperationMix {
    /// Builds a mix from explicit percentages for all six operations,
    /// validating that they sum to exactly 100.
    pub fn try_new(
        insert_pct: u32,
        delete_pct: u32,
        find_pct: u32,
        scan_pct: u32,
        mget_pct: u32,
        mput_pct: u32,
    ) -> Result<Self, MixError> {
        let total = [delete_pct, find_pct, scan_pct, mget_pct, mput_pct]
            .iter()
            .try_fold(insert_pct, |sum, &pct| sum.checked_add(pct));
        match total {
            Some(100) => Ok(Self {
                insert_pct,
                delete_pct,
                find_pct,
                scan_pct,
                mget_pct,
                mput_pct,
            }),
            other => Err(MixError::BadSum(other)),
        }
    }

    /// Builds a point-operation-only mix from explicit percentages; they
    /// must sum to 100 (panics otherwise — use [`try_new`](Self::try_new) to
    /// handle the error).
    pub fn new(insert_pct: u32, delete_pct: u32, find_pct: u32) -> Self {
        Self::try_new(insert_pct, delete_pct, find_pct, 0, 0, 0)
            .expect("operation percentages must sum to 100")
    }

    /// The paper's convention: `update_percent` updates split evenly between
    /// inserts and deletes, the rest finds.  Odd percentages give the extra
    /// 1% to inserts.
    pub fn from_update_percent(update_percent: u32) -> Self {
        Self::from_update_and_scan_percent(update_percent, 0)
    }

    /// Scan-workload variant of [`from_update_percent`]: `update_percent`
    /// updates split evenly between inserts and deletes, `scan_percent`
    /// range scans, the rest finds.
    ///
    /// [`from_update_percent`]: Self::from_update_percent
    pub fn from_update_and_scan_percent(update_percent: u32, scan_percent: u32) -> Self {
        Self::from_shares(update_percent, scan_percent, 0, 0)
    }

    /// Service-workload variant: `update_percent` updates split evenly
    /// between inserts and deletes, `scan_percent` range scans,
    /// `mget_percent` multi-gets and `mput_percent` multi-puts, the rest
    /// finds.  Panics if the shares exceed 100.
    pub fn from_shares(
        update_percent: u32,
        scan_percent: u32,
        mget_percent: u32,
        mput_percent: u32,
    ) -> Self {
        let taken = update_percent
            .saturating_add(scan_percent)
            .saturating_add(mget_percent)
            .saturating_add(mput_percent);
        assert!(
            update_percent <= 100 && taken <= 100,
            "update% + scan% + mget% + mput% must not exceed 100"
        );
        let delete = update_percent / 2;
        let insert = update_percent - delete;
        Self::try_new(
            insert,
            delete,
            100 - taken,
            scan_percent,
            mget_percent,
            mput_percent,
        )
        .expect("percentages sum to 100 by construction")
    }

    /// Percentage of inserts.
    pub fn insert_pct(&self) -> u32 {
        self.insert_pct
    }

    /// Percentage of deletes.
    pub fn delete_pct(&self) -> u32 {
        self.delete_pct
    }

    /// Percentage of finds.
    pub fn find_pct(&self) -> u32 {
        self.find_pct
    }

    /// Percentage of range scans.
    pub fn scan_pct(&self) -> u32 {
        self.scan_pct
    }

    /// Percentage of batched multi-gets.
    pub fn mget_pct(&self) -> u32 {
        self.mget_pct
    }

    /// Percentage of batched multi-puts.
    pub fn mput_pct(&self) -> u32 {
        self.mput_pct
    }

    /// Total update percentage (inserts + deletes).
    pub fn update_percent(&self) -> u32 {
        self.insert_pct + self.delete_pct
    }

    /// Samples an operation kind.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Operation {
        let p = rng.gen_range(0..100u32);
        let mut bound = self.insert_pct;
        if p < bound {
            return Operation::Insert;
        }
        bound += self.delete_pct;
        if p < bound {
            return Operation::Delete;
        }
        bound += self.find_pct;
        if p < bound {
            return Operation::Find;
        }
        bound += self.scan_pct;
        if p < bound {
            return Operation::Scan;
        }
        bound += self.mget_pct;
        if p < bound {
            return Operation::MGet;
        }
        Operation::MPut
    }

    /// Label such as `"u50"` (or `"u5s30"` for a scan mix, `"u10mg20mp10"`
    /// for a batched mix) used in benchmark output.
    pub fn label(&self) -> String {
        let mut label = format!("u{}", self.update_percent());
        if self.scan_pct > 0 {
            label.push_str(&format!("s{}", self.scan_pct));
        }
        if self.mget_pct > 0 {
            label.push_str(&format!("mg{}", self.mget_pct));
        }
        if self.mput_pct > 0 {
            label.push_str(&format!("mp{}", self.mput_pct));
        }
        label
    }
}

/// Lists all six operation percentages, e.g.
/// `insert 25% / delete 25% / find 40% / scan 10% / mget 0% / mput 0%`.
impl std::fmt::Display for OperationMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insert {}% / delete {}% / find {}% / scan {}% / mget {}% / mput {}%",
            self.insert_pct,
            self.delete_pct,
            self.find_pct,
            self.scan_pct,
            self.mget_pct,
            self.mput_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_update_percent_splits_evenly() {
        let m = OperationMix::from_update_percent(50);
        assert_eq!(m.insert_pct(), 25);
        assert_eq!(m.delete_pct(), 25);
        assert_eq!(m.find_pct(), 50);
        assert_eq!(m.scan_pct(), 0);
        assert_eq!(m.mget_pct(), 0);
        assert_eq!(m.mput_pct(), 0);
        assert_eq!(m.update_percent(), 50);
        assert_eq!(m.label(), "u50");
    }

    #[test]
    fn odd_update_percent() {
        let m = OperationMix::from_update_percent(5);
        assert_eq!(m.insert_pct() + m.delete_pct(), 5);
        assert_eq!(m.find_pct(), 95);
    }

    #[test]
    fn scan_mix_takes_share_from_finds() {
        let m = OperationMix::from_update_and_scan_percent(10, 60);
        assert_eq!(m.insert_pct(), 5);
        assert_eq!(m.delete_pct(), 5);
        assert_eq!(m.find_pct(), 30);
        assert_eq!(m.scan_pct(), 60);
        assert_eq!(m.label(), "u10s60");
    }

    #[test]
    fn batch_mix_takes_share_from_finds() {
        let m = OperationMix::from_shares(10, 5, 20, 15);
        assert_eq!(m.insert_pct(), 5);
        assert_eq!(m.delete_pct(), 5);
        assert_eq!(m.find_pct(), 50);
        assert_eq!(m.scan_pct(), 5);
        assert_eq!(m.mget_pct(), 20);
        assert_eq!(m.mput_pct(), 15);
        assert_eq!(m.label(), "u10s5mg20mp15");
    }

    #[test]
    fn extremes() {
        let all = OperationMix::from_update_percent(100);
        assert_eq!(all.find_pct(), 0);
        let none = OperationMix::from_update_percent(0);
        assert_eq!(none.insert_pct(), 0);
        assert_eq!(none.delete_pct(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(none.sample(&mut rng), Operation::Find);
        }
        let scans_only = OperationMix::from_update_and_scan_percent(0, 100);
        for _ in 0..100 {
            assert_eq!(scans_only.sample(&mut rng), Operation::Scan);
        }
        let mputs_only = OperationMix::from_shares(0, 0, 0, 100);
        for _ in 0..100 {
            assert_eq!(mputs_only.sample(&mut rng), Operation::MPut);
        }
    }

    /// `from_shares` edge cases: zero shares degrade to a find-only mix,
    /// single-share extremes leave no finds, and a fully subscribed budget
    /// (shares summing to exactly 100) is accepted with zero finds.
    #[test]
    fn from_shares_edge_cases() {
        let none = OperationMix::from_shares(0, 0, 0, 0);
        assert_eq!(none.find_pct(), 100, "zero shares mean all finds");
        assert_eq!(none.update_percent(), 0);
        assert_eq!(none.label(), "u0");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(none.sample(&mut rng), Operation::Find);
        }

        // Each share can individually consume the whole budget.
        let all_updates = OperationMix::from_shares(100, 0, 0, 0);
        assert_eq!(all_updates.find_pct(), 0);
        assert_eq!(all_updates.insert_pct(), 50);
        assert_eq!(all_updates.delete_pct(), 50);
        let all_scans = OperationMix::from_shares(0, 100, 0, 0);
        assert_eq!(all_scans.scan_pct(), 100);
        let all_mgets = OperationMix::from_shares(0, 0, 100, 0);
        assert_eq!(all_mgets.mget_pct(), 100);

        // Exactly subscribed (sums to 100): accepted, zero finds.
        let full = OperationMix::from_shares(40, 30, 20, 10);
        assert_eq!(full.find_pct(), 0);
        assert_eq!(full.insert_pct() + full.delete_pct(), 40);
        assert_eq!(full.label(), "u40s30mg20mp10");

        // Odd update split gives the extra point to inserts.
        let odd = OperationMix::from_shares(1, 0, 0, 0);
        assert_eq!((odd.insert_pct(), odd.delete_pct()), (1, 0));
    }

    /// One past the budget must panic, for each share position.
    #[test]
    fn from_shares_rejects_oversubscription_in_every_position() {
        for (u, s, g, p) in [(101, 0, 0, 0), (0, 101, 0, 0), (0, 0, 101, 0), (0, 0, 0, 101),
                             (97, 2, 1, 1)]
        {
            let result = std::panic::catch_unwind(|| OperationMix::from_shares(u, s, g, p));
            assert!(result.is_err(), "shares ({u},{s},{g},{p}) must panic");
        }
        // u32 overflow in the share sum must not wrap into a valid total.
        let result =
            std::panic::catch_unwind(|| OperationMix::from_shares(u32::MAX, u32::MAX, 2, 0));
        assert!(result.is_err(), "overflowing shares must panic");
    }

    /// The sum-to-100 error text names all six operations, so a user who
    /// mis-specifies any share can see the full budget being validated.
    #[test]
    fn bad_sum_error_lists_all_six_operations() {
        for bad in [
            OperationMix::try_new(0, 0, 0, 0, 0, 0).unwrap_err(),
            OperationMix::try_new(10, 10, 10, 10, 10, 10).unwrap_err(),
            OperationMix::try_new(u32::MAX, 0, 0, 0, 0, 1).unwrap_err(),
        ] {
            let text = bad.to_string();
            for op in ["insert", "delete", "find", "scan", "mget", "mput"] {
                assert!(text.contains(op), "`{text}` omits {op}");
            }
            assert!(text.contains("100"), "`{text}` does not name the target");
        }
    }

    #[test]
    fn try_new_rejects_bad_sums() {
        assert_eq!(
            OperationMix::try_new(50, 50, 50, 0, 0, 0),
            Err(MixError::BadSum(Some(150)))
        );
        assert_eq!(
            OperationMix::try_new(10, 10, 10, 10, 5, 5),
            Err(MixError::BadSum(Some(50)))
        );
        assert_eq!(
            OperationMix::try_new(u32::MAX, 1, 0, 0, 0, 0),
            Err(MixError::BadSum(None)),
            "overflowing sums must be rejected, not wrapped"
        );
        let err = OperationMix::try_new(0, 0, 0, 0, 0, 0).unwrap_err();
        assert!(err.to_string().contains("sum to 100"), "{err}");
        // The error text names every operation in the mix.
        for op in ["insert", "delete", "find", "scan", "mget", "mput"] {
            assert!(err.to_string().contains(op), "error omits {op}: {err}");
        }
        assert!(OperationMix::try_new(20, 20, 20, 20, 10, 10).is_ok());
    }

    #[test]
    fn display_lists_all_six_operations() {
        let m = OperationMix::from_shares(50, 10, 5, 5);
        let text = m.to_string();
        for part in [
            "insert 25%",
            "delete 25%",
            "find 30%",
            "scan 10%",
            "mget 5%",
            "mput 5%",
        ] {
            assert!(text.contains(part), "Display omits `{part}`: {text}");
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn invalid_mix_panics() {
        OperationMix::new(50, 50, 50);
    }

    #[test]
    #[should_panic(expected = "must not exceed 100")]
    fn oversubscribed_scan_share_panics() {
        OperationMix::from_update_and_scan_percent(60, 50);
    }

    #[test]
    #[should_panic(expected = "must not exceed 100")]
    fn oversubscribed_batch_share_panics() {
        OperationMix::from_shares(60, 20, 20, 10);
    }

    #[test]
    fn sampling_respects_proportions() {
        let m = OperationMix::from_shares(20, 10, 10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 6];
        for _ in 0..100_000 {
            let slot = match m.sample(&mut rng) {
                Operation::Insert => 0,
                Operation::Delete => 1,
                Operation::Find => 2,
                Operation::Scan => 3,
                Operation::MGet => 4,
                Operation::MPut => 5,
            };
            counts[slot] += 1;
        }
        let expected = [10, 10, 50, 10, 10, 10];
        for (i, (&got, want_pct)) in counts.iter().zip(expected).enumerate() {
            let want = want_pct * 1_000;
            assert!(
                (want * 9 / 10..=want * 11 / 10).contains(&got),
                "op {i}: got {got}, want ~{want}"
            );
        }
    }
}
