//! Operation mixes.
//!
//! The paper's microbenchmark (§6.1) parameterizes each run by an *update
//! percentage* `x`: each thread repeatedly picks an operation that is an
//! insert with probability `x/2`, a delete with probability `x/2`, and a
//! `find` otherwise.  The prefill phase relies on inserts and deletes being
//! equally likely so the steady-state size is half the key range.

use rand::Rng;

/// One dictionary operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// `insert(key, value)`.
    Insert,
    /// `delete(key)`.
    Delete,
    /// `find(key)`.
    Find,
}

/// A probability mix over the three operations (percentages sum to 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationMix {
    /// Percentage of inserts.
    pub insert_pct: u32,
    /// Percentage of deletes.
    pub delete_pct: u32,
    /// Percentage of finds.
    pub find_pct: u32,
}

impl OperationMix {
    /// Builds a mix from explicit percentages; they must sum to 100.
    pub fn new(insert_pct: u32, delete_pct: u32, find_pct: u32) -> Self {
        assert_eq!(
            insert_pct + delete_pct + find_pct,
            100,
            "operation percentages must sum to 100"
        );
        Self {
            insert_pct,
            delete_pct,
            find_pct,
        }
    }

    /// The paper's convention: `update_percent` updates split evenly between
    /// inserts and deletes, the rest finds.  Odd percentages give the extra
    /// 1% to inserts.
    pub fn from_update_percent(update_percent: u32) -> Self {
        assert!(update_percent <= 100);
        let delete = update_percent / 2;
        let insert = update_percent - delete;
        Self::new(insert, delete, 100 - update_percent)
    }

    /// Total update percentage (inserts + deletes).
    pub fn update_percent(&self) -> u32 {
        self.insert_pct + self.delete_pct
    }

    /// Samples an operation kind.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Operation {
        let p = rng.gen_range(0..100u32);
        if p < self.insert_pct {
            Operation::Insert
        } else if p < self.insert_pct + self.delete_pct {
            Operation::Delete
        } else {
            Operation::Find
        }
    }

    /// Label such as `"u50"` used in benchmark output.
    pub fn label(&self) -> String {
        format!("u{}", self.update_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_update_percent_splits_evenly() {
        let m = OperationMix::from_update_percent(50);
        assert_eq!(m.insert_pct, 25);
        assert_eq!(m.delete_pct, 25);
        assert_eq!(m.find_pct, 50);
        assert_eq!(m.update_percent(), 50);
        assert_eq!(m.label(), "u50");
    }

    #[test]
    fn odd_update_percent() {
        let m = OperationMix::from_update_percent(5);
        assert_eq!(m.insert_pct + m.delete_pct, 5);
        assert_eq!(m.find_pct, 95);
    }

    #[test]
    fn extremes() {
        let all = OperationMix::from_update_percent(100);
        assert_eq!(all.find_pct, 0);
        let none = OperationMix::from_update_percent(0);
        assert_eq!(none.insert_pct, 0);
        assert_eq!(none.delete_pct, 0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(none.sample(&mut rng), Operation::Find);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 100")]
    fn invalid_mix_panics() {
        OperationMix::new(50, 50, 50);
    }

    #[test]
    fn sampling_respects_proportions() {
        let m = OperationMix::from_update_percent(20);
        let mut rng = StdRng::seed_from_u64(1);
        let (mut ins, mut del, mut fnd) = (0u32, 0u32, 0u32);
        for _ in 0..100_000 {
            match m.sample(&mut rng) {
                Operation::Insert => ins += 1,
                Operation::Delete => del += 1,
                Operation::Find => fnd += 1,
            }
        }
        assert!((9_000..11_000).contains(&ins), "ins={ins}");
        assert!((9_000..11_000).contains(&del), "del={del}");
        assert!((78_000..82_000).contains(&fnd), "fnd={fnd}");
    }
}
