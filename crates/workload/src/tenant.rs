//! Tenant-aware key generation for multi-tenant service workloads.
//!
//! The `kvserve` service layer namespaces keys by tenant (a 16-bit prefix in
//! the high bits of the 64-bit key).  A realistic multi-tenant front-end
//! workload has *two* levels of skew: a few tenants carry most of the
//! traffic, and within each tenant a few keys are hot.
//! [`TenantKeyDistribution`] composes two [`KeyDistribution`]s to model
//! exactly that — a (typically Zipfian) draw of the tenant followed by an
//! independent (typically Zipfian) draw of the key *within* that tenant's
//! key space.
//!
//! The helper deliberately returns `(tenant, key)` pairs rather than packed
//! 64-bit keys: the packing rule (prefix layout, reserved sentinel) belongs
//! to the service layer's namespace module, and callers combine the two,
//! e.g. with `kvserve`'s `Namespace::prefixed`.

use rand::Rng;

use crate::zipf::KeyDistribution;

/// A two-level distribution: tenant first, then a key within the tenant.
#[derive(Debug, Clone)]
pub struct TenantKeyDistribution {
    tenant_dist: KeyDistribution,
    key_dist: KeyDistribution,
    tenants: u16,
    keys_per_tenant: u64,
}

impl TenantKeyDistribution {
    /// Creates a distribution over `tenants` tenants (drawn Zipfian with
    /// `tenant_exponent`; `0.0` = uniform) each owning a key space of
    /// `keys_per_tenant` keys (drawn Zipfian with `key_exponent`; `0.0` =
    /// uniform).
    ///
    /// Panics if `tenants` or `keys_per_tenant` is zero.
    pub fn new(tenants: u16, tenant_exponent: f64, keys_per_tenant: u64, key_exponent: f64) -> Self {
        assert!(tenants > 0, "need at least one tenant");
        assert!(keys_per_tenant > 0, "need at least one key per tenant");
        Self {
            tenant_dist: KeyDistribution::from_zipf_parameter(tenants as u64, tenant_exponent),
            key_dist: KeyDistribution::from_zipf_parameter(keys_per_tenant, key_exponent),
            tenants,
            keys_per_tenant,
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> u16 {
        self.tenants
    }

    /// Size of each tenant's key space.
    pub fn keys_per_tenant(&self) -> u64 {
        self.keys_per_tenant
    }

    /// Draws a `(tenant, key)` pair: the tenant from the tenant
    /// distribution, the key independently from the within-tenant
    /// distribution (`key < keys_per_tenant`).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (u16, u64) {
        let tenant = self.tenant_dist.sample(rng) as u16;
        let key = self.key_dist.sample(rng);
        (tenant, key)
    }

    /// Human-readable label used in benchmark output, e.g.
    /// `"tenants(8,zipf(1))*keys(1000,uniform)"`.
    pub fn label(&self) -> String {
        format!(
            "tenants({},{})*keys({},{})",
            self.tenants,
            self.tenant_dist.label(),
            self.keys_per_tenant,
            self.key_dist.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let dist = TenantKeyDistribution::new(16, 1.0, 1_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let (tenant, key) = dist.sample(&mut rng);
            assert!(tenant < 16);
            assert!(key < 1_000);
        }
        assert_eq!(dist.tenants(), 16);
        assert_eq!(dist.keys_per_tenant(), 1_000);
    }

    #[test]
    fn zipfian_tenants_concentrate_traffic() {
        let dist = TenantKeyDistribution::new(64, 1.0, 100, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut per_tenant = [0u32; 64];
        const N: u32 = 50_000;
        for _ in 0..N {
            let (tenant, _) = dist.sample(&mut rng);
            per_tenant[tenant as usize] += 1;
        }
        let hottest: u32 = per_tenant.iter().copied().max().unwrap();
        // With s=1 over 64 tenants the hottest tenant carries ~21% of the
        // traffic; uniform would give ~1.6%.
        assert!(
            hottest > N / 10,
            "hot tenant got {hottest}/{N}, expected heavy skew"
        );
    }

    #[test]
    fn uniform_tenants_spread_traffic() {
        let dist = TenantKeyDistribution::new(8, 0.0, 100, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut per_tenant = [0u32; 8];
        for _ in 0..80_000 {
            per_tenant[dist.sample(&mut rng).0 as usize] += 1;
        }
        let (min, max) = (
            per_tenant.iter().min().unwrap(),
            per_tenant.iter().max().unwrap(),
        );
        assert!(
            (*max as f64) / (*min as f64) < 1.25,
            "uniform tenants too skewed: {per_tenant:?}"
        );
    }

    /// Window boundaries: the degenerate single-tenant / single-key
    /// distributions are fixed points, and samples never escape the
    /// configured windows even at the extremes of the tenant id space.
    #[test]
    fn window_boundaries() {
        let mut rng = StdRng::seed_from_u64(11);

        // Smallest possible windows: always (0, 0).
        let point = TenantKeyDistribution::new(1, 1.0, 1, 1.0);
        for _ in 0..100 {
            assert_eq!(point.sample(&mut rng), (0, 0));
        }

        // Full 16-bit tenant space: the sampled tenant must stay
        // representable (no wrap past u16::MAX) and keys inside the window.
        let wide = TenantKeyDistribution::new(u16::MAX, 0.0, 3, 0.0);
        let mut seen_hi = 0u16;
        for _ in 0..20_000 {
            let (tenant, key) = wide.sample(&mut rng);
            assert!(tenant < u16::MAX);
            assert!(key < 3);
            seen_hi = seen_hi.max(tenant);
        }
        assert!(
            seen_hi > u16::MAX / 2,
            "uniform draw never reached the upper tenant window (max {seen_hi})"
        );

        // Two tenants, two keys: all four corners of the window are
        // reachable.
        let corners = TenantKeyDistribution::new(2, 0.0, 2, 0.0);
        let mut hit = [[false; 2]; 2];
        for _ in 0..1_000 {
            let (tenant, key) = corners.sample(&mut rng);
            hit[tenant as usize][key as usize] = true;
        }
        assert_eq!(hit, [[true; 2]; 2], "corner coverage: {hit:?}");
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn zero_tenants_panics() {
        TenantKeyDistribution::new(0, 1.0, 10, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_per_tenant_panics() {
        TenantKeyDistribution::new(4, 1.0, 0, 1.0);
    }

    #[test]
    fn label_names_both_levels() {
        let dist = TenantKeyDistribution::new(8, 1.0, 1_000, 0.0);
        assert_eq!(dist.label(), "tenants(8,zipf(1))*keys(1000,uniform)");
    }
}
