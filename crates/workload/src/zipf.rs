//! Key distributions: uniform and Zipfian.
//!
//! The Zipfian sampler implements Hörmann & Derflinger's rejection-inversion
//! method ("Rejection-inversion to generate variates from monotone discrete
//! distributions", 1996), the same algorithm used by `rand_distr` and the
//! YCSB-style generators: it draws a rank `k ∈ {1..n}` with
//! `P(k) ∝ 1/k^s` in O(1) expected time and without precomputing the
//! generalized harmonic number, which matters for the paper's largest key
//! ranges (10M and 100M keys).

use rand::Rng;

/// A distribution over the key range `0..range`.
#[derive(Debug, Clone)]
pub enum KeyDistribution {
    /// Every key equally likely (the paper's "Zipf parameter = 0" columns).
    Uniform {
        /// Number of distinct keys.
        range: u64,
    },
    /// Zipfian with the given exponent (the paper uses 1.0; YCSB-A uses 0.5).
    Zipfian {
        /// Number of distinct keys.
        range: u64,
        /// Skew exponent `s`.
        exponent: f64,
        /// Whether ranks are scattered over the key space with a bijective
        /// hash (YCSB-style "scrambled zipfian").  When `false` (the paper's
        /// SetBench setting) rank `k` maps to key `k - 1`, so the hottest
        /// keys are adjacent and share leaves — the high-contention regime
        /// publishing elimination targets.
        scramble: bool,
        /// Precomputed sampler state.
        sampler: ZipfSampler,
    },
}

impl KeyDistribution {
    /// Uniform distribution over `0..range`.
    pub fn uniform(range: u64) -> Self {
        assert!(range > 0);
        KeyDistribution::Uniform { range }
    }

    /// Zipfian distribution over `0..range` with exponent `s` (un-scrambled,
    /// matching the paper's microbenchmark).  An exponent of `0` degenerates
    /// to the uniform distribution.
    pub fn zipfian(range: u64, exponent: f64) -> Self {
        Self::zipfian_with(range, exponent, false)
    }

    /// Zipfian distribution with explicit control over rank scrambling.
    pub fn zipfian_with(range: u64, exponent: f64, scramble: bool) -> Self {
        assert!(range > 0);
        assert!(exponent >= 0.0);
        if exponent == 0.0 {
            return Self::uniform(range);
        }
        KeyDistribution::Zipfian {
            range,
            exponent,
            scramble,
            sampler: ZipfSampler::new(range, exponent),
        }
    }

    /// Creates a distribution from the paper's "Zipf parameter" convention:
    /// `0.0` means uniform, anything else is Zipfian with that exponent.
    pub fn from_zipf_parameter(range: u64, parameter: f64) -> Self {
        if parameter == 0.0 {
            Self::uniform(range)
        } else {
            Self::zipfian(range, parameter)
        }
    }

    /// The size of the key range.
    pub fn range(&self) -> u64 {
        match *self {
            KeyDistribution::Uniform { range } => range,
            KeyDistribution::Zipfian { range, .. } => range,
        }
    }

    /// Human-readable label used in benchmark output.
    pub fn label(&self) -> String {
        match self {
            KeyDistribution::Uniform { .. } => "uniform".to_string(),
            KeyDistribution::Zipfian { exponent, .. } => format!("zipf({exponent})"),
        }
    }

    /// Samples a key in `0..range`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            KeyDistribution::Uniform { range } => rng.gen_range(0..*range),
            KeyDistribution::Zipfian {
                range,
                scramble,
                sampler,
                ..
            } => {
                let rank = sampler.sample(rng); // 1..=range
                let key = rank - 1;
                if *scramble {
                    scatter(key, *range)
                } else {
                    key
                }
            }
        }
    }
}

/// Bijectively scatters `key` over `0..range` using a multiplicative hash
/// followed by a modulo fold (approximately bijective; collisions only change
/// which concrete keys are hot, not the popularity profile).
#[inline]
fn scatter(key: u64, range: u64) -> u64 {
    // Fibonacci hashing constant; the +1 keeps rank 1 from mapping to key 0.
    (key + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % range
}

/// Hörmann rejection-inversion sampler for `P(k) ∝ k^{-s}`, `k ∈ 1..=n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: f64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    shift: f64,
}

impl ZipfSampler {
    /// Creates a sampler for ranks `1..=n` with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0);
        assert!(s > 0.0);
        let nf = n as f64;
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(nf + 0.5, s);
        let shift = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Self {
            n: nf,
            s,
            h_x1,
            h_n,
            shift,
        }
    }

    /// Draws a rank in `1..=n`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = x.round().clamp(1.0, self.n);
            // Accept if k is close enough to x, or by the exact test.
            if (k - x).abs() <= self.shift || u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k as u64;
            }
        }
    }
}

/// H(x) = ∫ x^{-s} dx, the integral of the unnormalized density.
#[inline]
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// h(x) = x^{-s}.
#[inline]
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of `h_integral`.
#[inline]
fn h_integral_inverse(x: f64, s: f64) -> f64 {
    let mut t = x * (1.0 - s);
    if t < -1.0 {
        // Numerical guard (can only trip through rounding).
        t = -1.0;
    }
    (helper1(t) * x).exp()
}

/// helper1(x) = ln(1+x)/x, stable near 0.
#[inline]
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// helper2(x) = (exp(x)-1)/x, stable near 0.
#[inline]
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(dist: &KeyDistribution, samples: usize, buckets: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut hist = vec![0usize; buckets];
        let range = dist.range();
        for _ in 0..samples {
            let k = dist.sample(&mut rng);
            assert!(k < range, "sample {k} out of range {range}");
            hist[(k as usize * buckets) / range as usize] += 1;
        }
        hist
    }

    #[test]
    fn uniform_is_flat() {
        let dist = KeyDistribution::uniform(10_000);
        let hist = histogram(&dist, 100_000, 10);
        let min = *hist.iter().min().unwrap() as f64;
        let max = *hist.iter().max().unwrap() as f64;
        assert!(max / min < 1.25, "uniform histogram too skewed: {hist:?}");
    }

    #[test]
    fn zipf_rank_one_is_most_frequent() {
        let sampler = ZipfSampler::new(1_000, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0u64; 1_001];
        for _ in 0..200_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        let c1 = counts[1] as f64;
        let c2 = counts[2] as f64;
        let c10 = counts[10] as f64;
        assert!(c1 > c2, "rank 1 ({c1}) must beat rank 2 ({c2})");
        // For s = 1, P(1)/P(10) = 10; allow generous sampling noise.
        assert!(
            c1 / c10 > 5.0 && c1 / c10 < 20.0,
            "rank1/rank10 = {}",
            c1 / c10
        );
    }

    #[test]
    fn zipf_skew_concentrates_mass() {
        let dist = KeyDistribution::zipfian(100_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut top_100 = 0usize;
        const N: usize = 100_000;
        for _ in 0..N {
            if dist.sample(&mut rng) < 100 {
                top_100 += 1;
            }
        }
        // With s=1 and n=1e5, the top 100 ranks carry ~ H(100)/H(1e5) ≈ 43%
        // of the mass.
        assert!(
            top_100 > N * 30 / 100,
            "expected heavy concentration, got {top_100}/{N}"
        );
    }

    #[test]
    fn zipf_parameter_zero_is_uniform() {
        let dist = KeyDistribution::from_zipf_parameter(1_000, 0.0);
        assert!(matches!(dist, KeyDistribution::Uniform { .. }));
        assert_eq!(dist.label(), "uniform");
    }

    #[test]
    fn zipf_half_exponent_is_less_skewed_than_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let d_half = KeyDistribution::zipfian(10_000, 0.5);
        let d_one = KeyDistribution::zipfian(10_000, 1.0);
        let count_hot = |d: &KeyDistribution, rng: &mut StdRng| {
            let mut hot = 0;
            for _ in 0..50_000 {
                if d.sample(rng) < 10 {
                    hot += 1;
                }
            }
            hot
        };
        let hot_half = count_hot(&d_half, &mut rng);
        let hot_one = count_hot(&d_one, &mut rng);
        assert!(
            hot_one > hot_half,
            "s=1 ({hot_one}) should be more concentrated than s=0.5 ({hot_half})"
        );
    }

    #[test]
    fn scrambled_zipf_spreads_hot_keys() {
        let dist = KeyDistribution::zipfian_with(1_000_000, 1.0, true);
        let mut rng = StdRng::seed_from_u64(9);
        // With scrambling the most frequent key should *not* be key 0.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(dist.sample(&mut rng)).or_insert(0u64) += 1;
        }
        let (&hottest, _) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert_ne!(hottest, 0, "scrambling should move the hottest key");
        assert_eq!(dist.label(), "zipf(1)");
    }

    #[test]
    fn sampler_covers_full_range_for_tiny_n() {
        let sampler = ZipfSampler::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..10_000 {
            seen[sampler.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
