//! p-OCC-ABtree and p-Elim-ABtree: durably linearizable persistent versions
//! of the paper's trees (§5).
//!
//! The persistent trees are the volatile trees plus a small set of changes:
//!
//! * a **simple insert** flushes the value and then the key; it becomes
//!   durable (and, if interrupted by a crash, is linearized at the crash)
//!   when the key reaches persistent memory;
//! * a **successful delete** flushes the emptied key slot;
//! * **structural updates** (splitting inserts, `fixTagged`, `fixUnderfull`)
//!   flush the freshly created nodes before publishing the single
//!   child-pointer write, and publish that pointer with the
//!   **link-and-persist** technique (write marked → flush → unmark), so no
//!   operation ever depends on data that might not survive a crash;
//! * only keys, values and child pointers are persisted; `size`, the leaf
//!   versions, the lock words, the marked bits and the elimination records
//!   are volatile and are re-initialized by the [`recovery`] procedure, which
//!   simply walks the tree from the entry node.
//!
//! The implementation reuses the verified volatile engine from the [`abtree`]
//! crate, instantiated with the [`DurablePersist`] policy, whose flush/fence
//! hooks call into the [`abpmem`] persistent-memory model (real `clflush` +
//! `sfence` instructions, a simulated-latency mode, or counting only — see
//! `DESIGN.md` §4 for how this substitutes for the paper's Optane hardware).
//!
//! # Example
//!
//! ```
//! use pabtree::PElimABTree;
//!
//! abpmem::set_mode(abpmem::PersistMode::CountOnly);
//! let tree: PElimABTree = PElimABTree::new();
//! let mut session = tree.handle(); // one per worker thread
//! assert_eq!(session.insert(1, 10), None);
//! assert_eq!(session.get(1), Some(10));
//! // After a (simulated) crash, recovery restores the volatile fields.
//! session.recover();
//! assert_eq!(session.get(1), Some(10));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod recovery;

use abtree::{AbTree, Persist};
use absync::McsLock;

/// Persistence policy backed by the `abpmem` flush/fence primitives.
#[derive(Debug, Default, Clone, Copy)]
pub struct DurablePersist;

impl Persist for DurablePersist {
    const DURABLE: bool = true;

    #[inline]
    fn persist_range(ptr: *const u8, len: usize) {
        abpmem::persist(ptr, len);
    }

    #[inline]
    fn flush_range(ptr: *const u8, len: usize) {
        abpmem::flush(ptr, len);
    }

    #[inline]
    fn fence() {
        abpmem::sfence();
    }

    fn policy_name() -> &'static str {
        "durable"
    }
}

/// The p-OCC-ABtree of paper §5: durably linearizable OCC-ABtree.
pub type POccABTree<L = McsLock> = AbTree<false, L, DurablePersist>;

/// The p-Elim-ABtree of paper §5: durably linearizable Elim-ABtree.
pub type PElimABTree<L = McsLock> = AbTree<true, L, DurablePersist>;

/// Group-commit persistence policy: flushes are issued exactly where
/// [`DurablePersist`] issues them, but **every fence is elided**.
///
/// This is the WAL-batching half of a group-commit design: the tree pushes
/// its stores toward persistent memory continuously (so the write-back
/// traffic is unchanged), while the ordering/durability point is deferred to
/// whoever owns the persist lifecycle — in `crashkv`, the shard-owner thread,
/// which issues one explicit [`abpmem::sfence`] per *group* of acknowledged
/// operations (the `acks_per_fence` knob).  Between two group fences an
/// operation's stores may or may not have reached persistent memory in any
/// order, which is exactly the window the crash injector models by rolling
/// back a prefix-complement of the unfenced operations.
#[derive(Debug, Default, Clone, Copy)]
pub struct RelaxedPersist;

impl Persist for RelaxedPersist {
    const DURABLE: bool = true;

    #[inline]
    fn persist_range(ptr: *const u8, len: usize) {
        // Flush without the trailing fence: durability is deferred to the
        // owner's group fence.
        abpmem::flush(ptr, len);
    }

    #[inline]
    fn flush_range(ptr: *const u8, len: usize) {
        abpmem::flush(ptr, len);
    }

    #[inline]
    fn fence() {}

    fn policy_name() -> &'static str {
        "relaxed"
    }
}

/// A group-commit (WAL-batched) OCC-ABtree: durable only at explicit group
/// fences issued by the tree's owner (see [`RelaxedPersist`]).
pub type WalOccABTree<L = McsLock> = AbTree<false, L, RelaxedPersist>;

/// A group-commit (WAL-batched) Elim-ABtree: durable only at explicit group
/// fences issued by the tree's owner (see [`RelaxedPersist`]).
pub type WalElimABTree<L = McsLock> = AbTree<true, L, RelaxedPersist>;

pub use recovery::{recover, RecoveryReport};

#[cfg(test)]
mod tests {
    use super::*;
    use abpmem::{PersistMode, TrackingSession};
    use abtree::ConcurrentMap;

    #[test]
    fn durable_trees_behave_like_volatile_ones() {
        let _session = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        let occ: POccABTree = POccABTree::new();
        let elim: PElimABTree = PElimABTree::new();
        for t in [&occ as &dyn ConcurrentMap, &elim as &dyn ConcurrentMap] {
            let mut t = t.handle();
            for k in 0..2_000u64 {
                assert_eq!(t.insert(k, k * 3), None);
            }
            for k in 0..2_000u64 {
                assert_eq!(t.get(k), Some(k * 3));
            }
            for k in (0..2_000u64).step_by(2) {
                assert_eq!(t.delete(k), Some(k * 3));
            }
            for k in 0..2_000u64 {
                let expected = if k % 2 == 0 { None } else { Some(k * 3) };
                assert_eq!(t.get(k), expected);
            }
        }
        occ.check_invariants().unwrap();
        elim.check_invariants().unwrap();
        assert_eq!(ConcurrentMap::name(&occ), "p-occ-abtree");
        assert_eq!(ConcurrentMap::name(&elim), "p-elim-abtree");
    }

    #[test]
    fn relaxed_policy_flushes_but_never_fences() {
        // The WAL/group-commit trees issue every flush the durable trees
        // issue, but elide every fence: durability is deferred to the
        // owner's explicit group fence (crashkv's acks-per-fence knob).
        let _session = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        let tree: WalElimABTree = WalElimABTree::new();
        let mut tree = tree.handle();
        abpmem::reset_stats();
        for k in 0..500u64 {
            assert_eq!(tree.insert(k, k), None);
        }
        for k in 0..500u64 {
            assert_eq!(tree.delete(k), Some(k));
        }
        let stats = abpmem::stats();
        assert!(
            stats.flushes > 1_000,
            "relaxed trees must still flush every store (got {})",
            stats.flushes
        );
        assert_eq!(
            stats.fences, 0,
            "relaxed trees must never fence on their own"
        );
        const { assert!(RelaxedPersist::DURABLE) };
        assert_eq!(RelaxedPersist::policy_name(), "relaxed");
        // The owner's group fence is an ordinary abpmem fence.
        abpmem::sfence();
        assert_eq!(abpmem::stats().fences, 1);
    }

    #[test]
    fn simple_insert_issues_two_flushes_and_two_fences() {
        // Paper §5: "For a simple insert(key, val), two flushes must be used:
        // val must be flushed after it is written, and key must be flushed
        // after it is written."  (A flush = clwb + sfence.)
        let session = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        // Pre-insert a key so the next insert is a simple (non-splitting)
        // insert into an existing leaf, then clear the log.
        tree.insert(1, 1);
        drop(session);

        let session = TrackingSession::start();
        abpmem::reset_stats();
        assert_eq!(tree.insert(2, 20), None);
        let stats = abpmem::stats();
        let events = session.finish();
        assert_eq!(stats.flushes, 2, "simple insert must flush val then key");
        assert_eq!(stats.fences, 2);
        // The first flush must cover the value slot, the second the key slot;
        // with both in the same leaf we simply check there are exactly two
        // flush events separated by fences.
        let flushes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, abpmem::FlushEvent::Flush { .. }))
            .collect();
        assert_eq!(flushes.len(), 2);
    }

    #[test]
    fn successful_delete_issues_one_flush() {
        let _setup = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        for k in 0..5u64 {
            tree.insert(k, k);
        }
        drop(_setup);

        let _session = TrackingSession::start();
        abpmem::reset_stats();
        assert_eq!(tree.delete(3), Some(3));
        let stats = abpmem::stats();
        assert_eq!(stats.flushes, 1, "delete flushes only the emptied key slot");
        assert_eq!(stats.fences, 1);

        // An unsuccessful delete must not flush at all.
        abpmem::reset_stats();
        assert_eq!(tree.delete(999), None);
        assert_eq!(abpmem::stats().flushes, 0);
    }

    #[test]
    fn failed_insert_issues_no_flushes() {
        let _session = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        let tree: PElimABTree = PElimABTree::new();
        let mut tree = tree.handle();
        tree.insert(7, 70);
        abpmem::reset_stats();
        assert_eq!(tree.insert(7, 71), Some(70));
        assert_eq!(abpmem::stats().flushes, 0);
        assert_eq!(tree.get(7), Some(70));
    }

    #[test]
    fn splitting_insert_flushes_new_nodes_before_link() {
        let session = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        // Fill the root leaf exactly to capacity...
        for k in 0..abtree::MAX_KEYS as u64 {
            tree.insert(k, k);
        }
        drop(session);
        // ...then one more insert forces a splitting insert.
        let session = TrackingSession::start();
        abpmem::reset_stats();
        assert_eq!(tree.insert(1_000, 1), None);
        let events = session.finish();
        let stats = abpmem::stats();
        // New nodes (two leaves + tagged node, then fixTagged's replacement
        // root) are multiple cache lines each, so many flushes; the important
        // property is ordering: some node flush happens before the pointer
        // flush, which we conservatively check via event count and a final
        // fence.
        assert!(
            stats.flushes > 4,
            "splitting insert must flush whole new nodes (got {})",
            stats.flushes
        );
        assert!(stats.fences >= 2);
        assert!(matches!(
            events.first(),
            Some(abpmem::FlushEvent::Flush { .. })
        ));
        tree.check_invariants().unwrap();
        for k in 0..abtree::MAX_KEYS as u64 {
            assert_eq!(tree.get(k), Some(k));
        }
        assert_eq!(tree.get(1_000), Some(1));
    }

    #[test]
    fn elimination_fires_and_skips_flushes_under_same_key_churn() {
        // The motivation for the p-Elim-ABtree (§1, §5): an eliminated
        // operation returns without writing to the tree, hence without
        // issuing any flush or fence.  Hammer one key from several threads
        // with Optane-like flush latency (so updates hold the leaf lock long
        // enough for same-key operations to overlap them) and check that a
        // substantial number of operations complete via elimination.
        use std::sync::Arc;
        // Elimination fires when same-key operations overlap in time, which
        // requires true parallelism: on a single hardware thread operations
        // only overlap at preemption boundaries (every few ms), far too
        // rarely to clear the assertion threshold.
        // Detected parallelism only — AB_FORCE_PARALLEL deliberately does
        // not apply: preemption-boundary overlap is far too rare to clear
        // the elimination-rate threshold, so forcing the test on a single
        // hardware thread would fail against correct behavior.
        if abtree::par::detected_parallelism() < 2 {
            eprintln!("skipping elimination_fires_and_skips_flushes_under_same_key_churn: needs >1 hardware thread");
            return;
        }
        let _session = TrackingSession::start();
        abpmem::set_mode(PersistMode::Simulated {
            flush_ns: 300,
            fence_ns: 100,
        });

        let tree: Arc<PElimABTree> = Arc::new(PElimABTree::new());
        // Seed some structure around the hot key.
        let mut seeder = tree.handle();
        for k in 0..8u64 {
            seeder.insert(k * 10, 0);
        }
        drop(seeder);
        abpmem::reset_stats();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let tree = Arc::clone(&tree);
            handles.push(std::thread::spawn(move || {
                let mut tree = tree.handle();
                for i in 0..10_000u64 {
                    if (i + t) % 2 == 0 {
                        tree.insert(42, i);
                    } else {
                        tree.delete(42);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        abpmem::set_mode(PersistMode::CountOnly);

        let eliminations = tree.elimination_count();
        assert!(
            eliminations > 100,
            "expected publishing elimination to fire under single-key churn, got {eliminations}"
        );
        // Sanity: every eliminated operation saved at least one flush, so the
        // flush count must be well below what one-flush-per-update would give
        // if none of those operations had been eliminated.
        tree.check_invariants().unwrap();
    }
}
