//! Post-crash recovery (paper §5).
//!
//! "The recovery procedure for the p-OCC-ABtree is extremely simple: it
//! traverses the tree in persistent memory starting from the root (which is
//! in a known location), and fixes all non-persisted fields (i.e. setting
//! size to the actual number of pointers/values in the node, and resetting
//! version, lock state, and the marked bit to their initial values)."
//!
//! In this reproduction the "persistent image" after a simulated crash is the
//! tree as it exists in memory (see `DESIGN.md` §4); partial-update states
//! are constructed explicitly by the crash-simulation helpers in the `abtree`
//! crate and exercised by the tests below.

use std::time::Instant;

use abtree::{AbTree, Persist};
use absync::RawNodeLock;

/// Summary of a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Number of keys present after recovery.
    pub keys: u64,
    /// Number of leaves traversed.
    pub leaves: u64,
    /// Number of internal nodes traversed (including tagged nodes).
    pub internal_nodes: u64,
    /// Height of the recovered tree.
    pub height: u64,
    /// Wall-clock time spent recovering, in nanoseconds.
    pub elapsed_ns: u128,
}

/// Runs the recovery procedure on a (quiescent) durable tree and reports what
/// was found.  Also usable on volatile trees in tests (recovery is then a
/// semantic no-op).
pub fn recover<const ELIM: bool, L: RawNodeLock, P: Persist>(
    tree: &AbTree<ELIM, L, P>,
) -> RecoveryReport {
    let start = Instant::now();
    tree.recover();
    let elapsed_ns = start.elapsed().as_nanos();
    let stats = tree.stats();
    RecoveryReport {
        keys: stats.keys,
        leaves: stats.leaves,
        internal_nodes: stats.internal_nodes + stats.tagged_nodes,
        height: stats.height,
        elapsed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PElimABTree, POccABTree};
    use abpmem::{PersistMode, TrackingSession};
    use rand::prelude::*;

    fn quiet() -> TrackingSession {
        let s = TrackingSession::start();
        abpmem::set_mode(PersistMode::CountOnly);
        s
    }

    #[test]
    fn recovery_preserves_contents_after_normal_operation() {
        let _s = quiet();
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        let mut rng = StdRng::seed_from_u64(1);
        let mut oracle = std::collections::BTreeMap::new();
        for _ in 0..30_000 {
            let k = rng.gen_range(0..5_000u64);
            if rng.gen_bool(0.6) {
                if oracle.insert(k, k).is_some() {
                    oracle.insert(k, k);
                }
                tree.insert(k, k);
            } else {
                oracle.remove(&k);
                tree.delete(k);
            }
        }
        let before: Vec<(u64, u64)> = tree.collect();
        let report = recover(tree.map());
        tree.check_invariants().unwrap();
        assert_eq!(tree.collect(), before, "recovery must not change contents");
        assert_eq!(report.keys as usize, before.len());
        assert!(report.height >= 2);
    }

    #[test]
    fn recovery_is_idempotent() {
        let _s = quiet();
        let tree: PElimABTree = PElimABTree::new();
        let mut tree = tree.handle();
        for k in 0..3_000u64 {
            tree.insert(k, k + 7);
        }
        let r1 = recover(tree.map());
        let r2 = recover(tree.map());
        assert_eq!(r1.keys, r2.keys);
        assert_eq!(r1.leaves, r2.leaves);
        assert_eq!(r1.height, r2.height);
        tree.check_invariants().unwrap();
        for k in 0..3_000u64 {
            assert_eq!(tree.get(k), Some(k + 7));
        }
    }

    #[test]
    fn crash_during_simple_insert_is_linearized_at_the_crash() {
        // Paper §5: an insert whose key was flushed but whose second version
        // increment had not happened is linearized at the crash, so recovery
        // must surface the key.
        let _s = quiet();
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        for k in 0..200u64 {
            tree.insert(k, k);
        }
        assert!(tree.force_partial_insert(5_000, 555));
        let report = recover(tree.map());
        tree.check_invariants().unwrap();
        assert_eq!(tree.get(5_000), Some(555));
        assert_eq!(report.keys, 201);
        // The tree must be fully operational after recovery.
        assert_eq!(tree.insert(5_000, 1), Some(555));
        assert_eq!(tree.delete(5_000), Some(555));
    }

    #[test]
    fn crash_during_delete_is_linearized_at_the_crash() {
        let _s = quiet();
        let tree: PElimABTree = PElimABTree::new();
        let mut tree = tree.handle();
        for k in 0..200u64 {
            tree.insert(k, k);
        }
        assert!(tree.force_partial_delete(100));
        recover(tree.map());
        tree.check_invariants().unwrap();
        assert_eq!(tree.get(100), None, "flushed delete must survive the crash");
        assert_eq!(tree.len(), 199);
        // Re-inserting works normally afterwards.
        assert_eq!(tree.insert(100, 1), None);
    }

    #[test]
    fn crash_with_unmarked_dirty_pointer_is_repaired() {
        let _s = quiet();
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        for k in 0..5_000u64 {
            tree.insert(k, k);
        }
        tree.force_dirty_root_link();
        assert!(tree.has_dirty_links());
        let report = recover(tree.map());
        assert!(!tree.has_dirty_links());
        assert_eq!(report.keys, 5_000);
        tree.check_invariants().unwrap();
        // Normal operation resumes.
        for k in 0..5_000u64 {
            assert_eq!(tree.get(k), Some(k));
        }
    }

    #[test]
    fn multiple_interrupted_operations_recover_together() {
        let _s = quiet();
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        for k in (0..1_000u64).step_by(2) {
            tree.insert(k, k);
        }
        // Three crashes' worth of partial state at once (different leaves).
        assert!(tree.force_partial_insert(1, 11));
        assert!(tree.force_partial_insert(501, 511));
        assert!(tree.force_partial_delete(600));
        let report = recover(tree.map());
        tree.check_invariants().unwrap();
        assert_eq!(tree.get(1), Some(11));
        assert_eq!(tree.get(501), Some(511));
        assert_eq!(tree.get(600), None);
        assert_eq!(report.keys, 500 + 2 - 1);
    }

    #[test]
    fn recovering_an_empty_tree_reports_every_field() {
        // The degenerate image: a crash before any operation completed.
        // Recovery must walk the single empty root leaf and report it
        // exactly — every field, not just the key count.
        let _s = quiet();
        let tree: POccABTree = POccABTree::new();
        let report = recover(&tree);
        assert_eq!(report.keys, 0);
        assert_eq!(report.leaves, 1, "an empty tree is one empty root leaf");
        assert_eq!(report.internal_nodes, 0);
        assert_eq!(report.height, 1);
        // elapsed_ns is wall-clock and may legitimately be 0 on a coarse
        // timer; the field just has to be populated sanely (< 1s here).
        assert!(report.elapsed_ns < 1_000_000_000);
        tree.check_invariants().unwrap();
        // The recovered empty tree is fully operational.
        let mut tree = tree.handle();
        assert_eq!(tree.insert(1, 10), None);
        assert_eq!(tree.get(1), Some(10));
    }

    #[test]
    fn crash_before_the_first_fence_recovers_consistently() {
        // A WAL (group-commit) tree that crashes before its owner ever
        // issued a group fence: no operation is durably *ordered*, but the
        // flushed image must still recover to a consistent dictionary.  On
        // top of the unfenced contents, one torn in-flight insert (key and
        // value stores persisted, version/size not) must be surfaced by
        // recovery exactly as for the per-op durable trees.
        let _s = quiet();
        let tree: crate::WalOccABTree = crate::WalOccABTree::new();
        abpmem::reset_stats();
        let mut h = tree.handle();
        for k in 0..300u64 {
            h.insert(k, k + 1);
        }
        assert_eq!(
            abpmem::stats().fences,
            0,
            "no group fence was issued: this is the crash-before-first-fence image"
        );
        assert!(h.force_partial_insert(10_000, 42));
        let report = recover(&tree);
        tree.check_invariants().unwrap();
        assert_eq!(report.keys, 301, "torn insert linearizes at the crash");
        assert_eq!(tree.stats().keys, report.keys);
        let mut h = tree.handle();
        assert_eq!(h.get(10_000), Some(42));
        assert_eq!(h.get(299), Some(300));
    }

    #[test]
    fn recovery_report_matches_tree_stats_field_by_field() {
        // Cross-check every RecoveryReport field against the tree's own
        // structural statistics on a multi-level tree with partial damage.
        let _s = quiet();
        let tree: PElimABTree = PElimABTree::new();
        let mut h = tree.handle();
        for k in 0..5_000u64 {
            h.insert(k, k);
        }
        assert!(h.force_partial_delete(1_234));
        tree.force_dirty_root_link();
        let report = recover(&tree);
        let stats = tree.stats();
        assert_eq!(report.keys, stats.keys);
        assert_eq!(report.keys, 4_999, "partially deleted key stays deleted");
        assert_eq!(report.leaves, stats.leaves);
        assert!(report.leaves >= 4_999 / abtree::MAX_KEYS as u64);
        assert_eq!(
            report.internal_nodes,
            stats.internal_nodes + stats.tagged_nodes
        );
        assert!(report.internal_nodes > 0);
        assert_eq!(report.height, stats.height);
        assert!(report.height >= 3);
        assert!(!tree.has_dirty_links(), "recovery must clear dirty links");
        tree.check_invariants().unwrap();
    }

    #[test]
    fn recovery_report_counts_nodes() {
        let _s = quiet();
        let tree: POccABTree = POccABTree::new();
        let mut tree = tree.handle();
        for k in 0..20_000u64 {
            tree.insert(k, k);
        }
        let report = recover(tree.map());
        assert_eq!(report.keys, 20_000);
        assert!(report.leaves >= 20_000 / abtree::MAX_KEYS as u64);
        assert!(report.internal_nodes > 0);
        assert!(report.height >= 3);
    }
}
