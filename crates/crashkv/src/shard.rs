//! The durable shard owner: one thread per shard owning the shard's WAL
//! tree, its persist lifecycle, and its crash behavior.
//!
//! This is the thread-per-shard model of `kvserve` (SPSC lanes, lane
//! mailbox, idle/park protocol) with the persist lifecycle added on top:
//!
//! * the shard's store is a concrete [`pabtree::WalElimABTree`] — flushes
//!   are issued inside every operation ([`pabtree::RelaxedPersist`]), but
//!   **no fence**;
//! * the owner batches acknowledgements into **groups**: replies are
//!   buffered per lane, and released only when the owner issues the group
//!   [`abpmem::sfence`] — after `acks_per_fence` operations, or earlier
//!   when the lanes drain empty (so a lone blocking client is never parked
//!   behind a fence that will not come).  An acked operation is therefore
//!   always durable;
//! * every state-changing operation since the last fence is kept in an
//!   **unfenced log** with enough information to invert it, which is what
//!   lets a crash at the boundary roll back the exact suffix that "did not
//!   reach persistent memory";
//! * a crash directive ([`crate::CrashSpec`], armed by the injector) fires
//!   at a group boundary: the suffix rolls back, optional torn-persist
//!   damage is planted, every buffered (unacked) reply is answered
//!   [`ShardReply::Crashed`], the adopted lanes are returned to the mailbox
//!   for the next owner, and the thread exits.  The supervisor then runs
//!   [`pabtree::recover`] and spawns a fresh owner — the router sees the
//!   shard degrade (queued jobs, `Crashed` errors) and heal, never a
//!   poisoned lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::Thread;

use abtree::MapHandle;
use kvserve::queue::{Consumer, Producer, PushError};
use obs::{Stage, StageTrace, Stamp};
use pabtree::WalElimABTree;

use crate::crash::CrashSpec;

/// One request handed to a shard owner.  The durable service is a point-op
/// store: batching happens at the ack/fence layer, not the request layer.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardJob {
    /// Point lookup.
    Get { key: u64 },
    /// Point insert-if-absent.
    Put { key: u64, value: u64 },
    /// Point removal.
    Delete { key: u64 },
}

/// The reply to one [`ShardJob`], in lane FIFO order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardReply {
    /// The operation executed and its covering group fence was issued: the
    /// result is durable.
    Value(Option<u64>),
    /// The shard crashed before the covering group fence: the operation was
    /// never acknowledged and may or may not have taken effect.
    Crashed,
}

/// The worker end of one router's lane pair, plus the owner's buffer of
/// executed-but-unacked replies for that lane (released at the group
/// fence, in FIFO order).
pub(crate) struct Lane {
    pub(crate) jobs: Consumer<ShardJob>,
    pub(crate) replies: Producer<ShardReply>,
    pub(crate) buffered: VecDeque<ShardReply>,
}

impl Lane {
    /// Releases every buffered reply into the reply ring.  The router
    /// bounds in-flight requests by the ring capacity, so a live ring
    /// always has room; a disconnected ring means the router is gone.
    fn release_buffered(&mut self) {
        while let Some(reply) = self.buffered.pop_front() {
            match self.replies.try_push(reply) {
                Ok(()) | Err(PushError::Disconnected(_)) => {}
                Err(PushError::Full(_)) => {
                    unreachable!("reply lane overflowed its in-flight cap")
                }
            }
        }
    }
}

/// Shard liveness as the router and supervisor see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// An owner thread is serving the shard.
    Up,
    /// The owner crashed and exited; the supervisor has not finished
    /// recovery yet.  Jobs stay queued in the lanes and are served after
    /// the shard heals.
    Down,
}

const STATUS_UP: u8 = 0;
const STATUS_DOWN: u8 = 1;

/// What a crashed owner leaves behind for the supervisor.
pub(crate) struct PendingCrash {
    pub(crate) boundary_index: u64,
    pub(crate) unfenced: usize,
    pub(crate) survived: usize,
    pub(crate) rolled_back: usize,
    pub(crate) torn_insert: Option<u64>,
    pub(crate) dirty_link: bool,
}

/// Shared coordination state of one durable shard.
pub(crate) struct ShardState {
    status: AtomicU8,
    /// Mailbox of lanes waiting for the (current or next) owner: freshly
    /// opened by routers, or returned by a crashed owner.
    pending_lanes: Mutex<Vec<Lane>>,
    /// Bumped on every mailbox deposit.
    lane_generation: AtomicU64,
    /// Raised by the owner just before parking.
    idle: AtomicBool,
    shutdown: AtomicBool,
    /// The current owner thread, for unparking.
    owner: Mutex<Option<Thread>>,
    /// Group-fence boundaries completed (read-only groups skip the actual
    /// `sfence` but still count as boundaries — the ack-release points).
    pub(crate) boundaries: AtomicU64,
    /// Group fences actually issued (boundaries with pending writes).
    pub(crate) fences: AtomicU64,
    /// Completed crash + recovery cycles.
    pub(crate) crashes: AtomicU64,
    /// Armed crash directive; the flag is the cheap per-boundary check.
    crash_armed: AtomicBool,
    crash_spec: Mutex<Option<(u64, CrashSpec)>>,
    /// Filled by a crashing owner, consumed by the supervisor.
    pub(crate) pending_crash: Mutex<Option<PendingCrash>>,
}

impl ShardState {
    pub(crate) fn new() -> Self {
        Self {
            status: AtomicU8::new(STATUS_UP),
            pending_lanes: Mutex::new(Vec::new()),
            lane_generation: AtomicU64::new(0),
            idle: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            owner: Mutex::new(None),
            boundaries: AtomicU64::new(0),
            fences: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            crash_armed: AtomicBool::new(false),
            crash_spec: Mutex::new(None),
            pending_crash: Mutex::new(None),
        }
    }

    pub(crate) fn status(&self) -> ShardStatus {
        match self.status.load(Ordering::SeqCst) {
            STATUS_UP => ShardStatus::Up,
            _ => ShardStatus::Down,
        }
    }

    pub(crate) fn set_status(&self, status: ShardStatus) {
        let raw = match status {
            ShardStatus::Up => STATUS_UP,
            ShardStatus::Down => STATUS_DOWN,
        };
        self.status.store(raw, Ordering::SeqCst);
    }

    /// Deposits a lane for the (current or next) owner and wakes it.
    pub(crate) fn register_lane(&self, lane: Lane) {
        self.pending_lanes
            .lock()
            .expect("lane mailbox poisoned")
            .push(lane);
        self.lane_generation.fetch_add(1, Ordering::Release);
        self.wake();
    }

    /// Records the owner thread handle; called at every (re)spawn.
    pub(crate) fn set_owner(&self, thread: Thread) {
        *self.owner.lock().expect("owner slot poisoned") = Some(thread);
    }

    /// Unparks the owner if (and only if) it advertised itself idle.
    pub(crate) fn wake(&self) {
        if self.idle.load(Ordering::SeqCst) {
            if let Some(owner) = self.owner.lock().expect("owner slot poisoned").as_ref() {
                owner.unpark();
            }
        }
    }

    /// Raises the shutdown flag and wakes the owner unconditionally.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(owner) = self.owner.lock().expect("owner slot poisoned").as_ref() {
            owner.unpark();
        }
    }

    /// Arms a crash directive: the owner crashes at the first boundary (or
    /// idle point) at which `after_boundaries` further boundaries have
    /// completed.
    pub(crate) fn arm_crash(&self, spec: CrashSpec) {
        let target = self.boundaries.load(Ordering::SeqCst) + spec.after_boundaries;
        *self.crash_spec.lock().expect("crash directive poisoned") = Some((target, spec));
        self.crash_armed.store(true, Ordering::SeqCst);
        // An idle owner must still crash: wake it so it reaches the check.
        self.wake();
    }

    /// Takes the directive if it is due at the current boundary count.
    fn due_crash(&self) -> Option<CrashSpec> {
        if !self.crash_armed.load(Ordering::Relaxed) {
            return None;
        }
        let mut slot = self.crash_spec.lock().expect("crash directive poisoned");
        match *slot {
            Some((target, spec)) if self.boundaries.load(Ordering::SeqCst) >= target => {
                *slot = None;
                self.crash_armed.store(false, Ordering::SeqCst);
                Some(spec)
            }
            _ => None,
        }
    }
}

/// One durable shard: the concrete WAL tree plus its coordination state.
/// The tree is concrete (not `Box<dyn ShardStore>`) because crash injection
/// and recovery need the real type: `force_partial_insert`,
/// `force_dirty_root_link` and [`pabtree::recover`] are tree methods.
pub(crate) struct ShardCell {
    pub(crate) tree: WalElimABTree,
    pub(crate) state: ShardState,
    /// The service-wide stage trace; the owner records every group
    /// [`Stage::Fence`] span into it (unsampled — fences are already
    /// amortized to one per ack group).
    pub(crate) trace: Arc<StageTrace>,
}

/// One state-changing operation of the current unfenced group, with enough
/// information to invert it exactly.  Refused inserts and missed deletes
/// change nothing and are not logged (their *acks* still gate on the fence,
/// because they observed state that is only durable at the fence).
enum UnfencedOp {
    /// `insert(key, value)` installed the key; inverse: delete it.
    Inserted { key: u64, value: u64 },
    /// `delete(key)` removed `(key, value)`; inverse: re-insert it.
    Removed { key: u64, value: u64 },
}

/// How many consecutive empty scans the owner tolerates before parking.
const IDLE_SPINS: u32 = 64;

/// The shard-owner thread body.  Returns `true` if the owner exited via a
/// crash (the supervisor must recover and respawn), `false` on clean
/// shutdown.
pub(crate) fn run_shard_owner(cell: Arc<ShardCell>, acks_per_fence: u32) -> bool {
    let acks_per_fence = acks_per_fence.max(1);
    let state = &cell.state;
    // Publish our thread handle before the first possible park, so
    // `wake()` / `begin_shutdown()` can always unpark us.
    state.set_owner(std::thread::current());
    let recorder = cell.trace.recorder();
    let mut handle = cell.tree.handle();
    let mut lanes: Vec<Lane> = Vec::new();
    let mut seen_generation = 0u64;
    let mut quiet_scans = 0u32;
    let mut unfenced: Vec<UnfencedOp> = Vec::new();
    let mut group_acks = 0u32;
    loop {
        let generation = state.lane_generation.load(Ordering::Acquire);
        if generation != seen_generation {
            seen_generation = generation;
            lanes.append(&mut state.pending_lanes.lock().expect("lane mailbox poisoned"));
        }
        let mut served = 0u32;
        for lane in &mut lanes {
            // Cap each run at the group budget so the boundary (fence +
            // ack release + crash check) always happens between runs.
            while group_acks < acks_per_fence {
                let Some(job) = lane.jobs.try_pop() else { break };
                let reply = execute(&mut handle, &mut unfenced, job);
                lane.buffered.push_back(reply);
                group_acks += 1;
                served += 1;
                // The lost-ack mutant: release every ack buffered so far
                // the moment a state-changing write executes, *before* the
                // covering fence — exactly the bug group commit must not
                // have.  A crash at the next boundary then rolls back
                // acknowledged writes, which the durable checker must flag.
                #[cfg(feature = "lost-ack")]
                if matches!(reply, ShardReply::Value(_)) {
                    lane.release_buffered();
                }
            }
            if group_acks >= acks_per_fence {
                break;
            }
        }
        lanes.retain(|lane| {
            !(lane.jobs.is_disconnected() && lane.jobs.is_empty() && lane.buffered.is_empty())
        });
        let drained_with_pending = served == 0 && group_acks > 0;
        if group_acks >= acks_per_fence || drained_with_pending {
            // Group boundary: fence (if any write is pending), then
            // release every buffered ack — unless a crash is due, in
            // which case the group dies unfenced.
            if let Some(spec) = state.due_crash() {
                crash(&cell, &mut handle, &mut lanes, &mut unfenced, spec);
                return true;
            }
            if !unfenced.is_empty() {
                let fence_start = Stamp::now();
                abpmem::sfence();
                state.fences.fetch_add(1, Ordering::SeqCst);
                recorder.record(Stage::Fence, fence_start);
                unfenced.clear();
            }
            state.boundaries.fetch_add(1, Ordering::SeqCst);
            for lane in &mut lanes {
                lane.release_buffered();
            }
            group_acks = 0;
            continue;
        }
        if served > 0 {
            quiet_scans = 0;
            continue;
        }
        // Idle (group empty, nothing buffered): an armed crash still fires
        // here, so a quiet shard cannot dodge its directive forever.
        if let Some(spec) = state.due_crash() {
            crash(&cell, &mut handle, &mut lanes, &mut unfenced, spec);
            return true;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            // Shutdown requires exclusive service access, so no router
            // (and no new lane) can exist; drained means done.
            break;
        }
        quiet_scans += 1;
        if quiet_scans < IDLE_SPINS {
            std::hint::spin_loop();
            continue;
        }
        state.idle.store(true, Ordering::SeqCst);
        let work_arrived = lanes.iter().any(|lane| !lane.jobs.is_empty())
            || state.lane_generation.load(Ordering::SeqCst) != seen_generation
            || state.shutdown.load(Ordering::SeqCst)
            || state.crash_armed.load(Ordering::SeqCst);
        if !work_arrived {
            std::thread::park();
        }
        state.idle.store(false, Ordering::SeqCst);
        quiet_scans = 0;
    }
    false
}

/// Executes one job, maintaining the unfenced log.
fn execute(
    handle: &mut impl MapHandle,
    unfenced: &mut Vec<UnfencedOp>,
    job: ShardJob,
) -> ShardReply {
    match job {
        ShardJob::Get { key } => ShardReply::Value(handle.get(key)),
        ShardJob::Put { key, value } => {
            let prior = handle.insert(key, value);
            if prior.is_none() {
                unfenced.push(UnfencedOp::Inserted { key, value });
            }
            ShardReply::Value(prior)
        }
        ShardJob::Delete { key } => {
            let removed = handle.delete(key);
            if let Some(value) = removed {
                unfenced.push(UnfencedOp::Removed { key, value });
            }
            ShardReply::Value(removed)
        }
    }
}

/// The crash itself: destroy the unfenced suffix, plant the requested §5
/// damage, abort every unacked client, hand the lanes to the next owner,
/// and leave the forensic record for the supervisor.
fn crash(
    cell: &Arc<ShardCell>,
    handle: &mut impl MapHandle,
    lanes: &mut Vec<Lane>,
    unfenced: &mut Vec<UnfencedOp>,
    spec: CrashSpec,
) {
    let state = &cell.state;
    let total = unfenced.len();
    let survived = (spec.survivor_seed as usize) % (total + 1);
    // Roll back the non-persisted suffix with exact inverse operations in
    // reverse order, restoring the state as of `survived` operations past
    // the last fence.
    let rolled: Vec<UnfencedOp> = unfenced.drain(survived..).collect();
    for op in rolled.iter().rev() {
        match *op {
            UnfencedOp::Inserted { key, .. } => {
                handle.delete(key);
            }
            UnfencedOp::Removed { key, value } => {
                handle.insert(key, value);
            }
        }
    }
    // Optionally re-apply one rolled-back insert *torn*: key/value stores
    // persisted, version/size update interrupted.  Recovery must linearize
    // it at the crash (paper §5), turning a "vanished" unacked write into a
    // "survived" one — both legal outcomes for the checker.
    let mut torn_insert = None;
    if spec.torn_insert {
        for op in rolled.iter().rev() {
            if let UnfencedOp::Inserted { key, value } = *op {
                if cell.tree.force_partial_insert(key, value) {
                    torn_insert = Some(key);
                    break;
                }
            }
        }
    }
    if spec.dirty_link {
        cell.tree.force_dirty_root_link();
    }
    // Every buffered reply belongs to an operation whose covering fence
    // never happened: abort them all.  Queued (unpopped) jobs stay in the
    // lanes and are served after the shard heals.
    for lane in &mut lanes.iter_mut() {
        for reply in &mut lane.buffered {
            *reply = ShardReply::Crashed;
        }
        lane.release_buffered();
    }
    let report = PendingCrash {
        boundary_index: state.boundaries.load(Ordering::SeqCst),
        unfenced: total,
        survived,
        rolled_back: total - survived,
        torn_insert,
        dirty_link: spec.dirty_link,
    };
    *state.pending_crash.lock().expect("crash record poisoned") = Some(report);
    // Return the adopted lanes to the mailbox for the next owner.
    let mut mailbox = state.pending_lanes.lock().expect("lane mailbox poisoned");
    mailbox.extend(lanes.drain(..));
    drop(mailbox);
    state.lane_generation.fetch_add(1, Ordering::Release);
    // Publish death last: once Down is visible the supervisor may join us.
    state.set_status(ShardStatus::Down);
}
