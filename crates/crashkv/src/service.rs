//! The durable sharded service: owner threads, the recovery supervisor,
//! and the client-side router.
//!
//! ```text
//!            DurableRouter (one per client thread)
//!      get/put/delete          submit / collect_one
//!            │ SPSC job lane        │
//!            ▼                      ▼
//!   ┌─ shard 0 owner ─┐   ┌─ shard 1 owner ─┐   ...
//!   │ WalElimABTree   │   │ WalElimABTree   │
//!   │ group fence ack │   │ group fence ack │
//!   └───────┬─────────┘   └───────┬─────────┘
//!           │ crash (status Down) │
//!           ▼                     ▼
//!        supervisor: join → pabtree::recover → respawn (status Up)
//! ```
//!
//! Every shard is owned by exactly one thread; clients talk to it over SPSC
//! lanes, and acknowledgements are group-committed (see [`crate::shard`]).
//! The **supervisor** is the only component that ever observes a dead owner:
//! it joins the crashed thread, runs [`pabtree::recover`] over the shard's
//! persistent image, records a [`CrashReport`], and spawns a fresh owner.
//! Routers never block on a poisoned lock — a crashed shard just answers
//! its unacked operations with [`Crashed`] and queues new work until the
//! owner is respawned.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use kvserve::queue::{self, Consumer, Producer};
use obs::{Registry, Sample, StageTrace};
use pabtree::WalElimABTree;

use crate::crash::{CrashReport, CrashSpec, Crashed};
use crate::shard::{
    run_shard_owner, Lane, ShardCell, ShardJob, ShardReply, ShardState, ShardStatus,
};

/// Ring capacity of each job and reply lane.  The router also caps its
/// in-flight operations per shard at this value, which guarantees the reply
/// ring can always absorb a full ack-group release.
const LANE_CAPACITY: usize = 64;

/// How often the supervisor polls shard liveness.
const SUPERVISOR_POLL: Duration = Duration::from_micros(200);

struct Shared {
    owners: Mutex<Vec<Option<JoinHandle<bool>>>>,
    crash_log: Mutex<Vec<CrashReport>>,
    shutdown: AtomicBool,
    acks_per_fence: u32,
}

/// A durable sharded key/value service with supervised crash recovery.
///
/// Compared to `kvserve::KvService` the shards are persistent
/// ([`WalElimABTree`]: per-operation flushes, group fences), the
/// acknowledgement batching knob `acks_per_fence` trades ack latency for
/// fence rate, and a crashed shard heals instead of poisoning the service.
pub struct DurableKvService {
    shards: Arc<Vec<Arc<ShardCell>>>,
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
    /// Pull-based metric registry: per-shard durability counters
    /// (`durable_*`) and the fence-stage latency histogram register at
    /// construction; render it (or graft it into a larger spine) for a
    /// crash-aware health scrape.
    registry: Arc<Registry>,
    trace: Arc<StageTrace>,
}

fn spawn_owner(cell: Arc<ShardCell>, shard: usize, acks_per_fence: u32) -> JoinHandle<bool> {
    std::thread::Builder::new()
        .name(format!("crashkv-shard-{shard}"))
        .spawn(move || run_shard_owner(cell, acks_per_fence))
        .expect("failed to spawn shard owner")
}

fn supervise(shards: Arc<Vec<Arc<ShardCell>>>, shared: Arc<Shared>) {
    loop {
        for (idx, cell) in shards.iter().enumerate() {
            if cell.state.status() != ShardStatus::Down {
                continue;
            }
            // The owner published Down as its last act; join reaps it.
            let handle = shared.owners.lock().expect("owner table poisoned")[idx].take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
            let recovery = pabtree::recover(&cell.tree);
            assert!(
                !cell.tree.has_dirty_links(),
                "recovery must clear every dirty link-and-persist mark"
            );
            if let Some(p) = cell
                .state
                .pending_crash
                .lock()
                .expect("crash record poisoned")
                .take()
            {
                shared
                    .crash_log
                    .lock()
                    .expect("crash log poisoned")
                    .push(CrashReport {
                        shard: idx,
                        boundary_index: p.boundary_index,
                        unfenced: p.unfenced,
                        survived: p.survived,
                        rolled_back: p.rolled_back,
                        torn_insert: p.torn_insert,
                        dirty_link: p.dirty_link,
                        recovery,
                    });
            }
            cell.state.crashes.fetch_add(1, Ordering::SeqCst);
            cell.state.set_status(ShardStatus::Up);
            let owner = spawn_owner(Arc::clone(cell), idx, shared.acks_per_fence);
            shared.owners.lock().expect("owner table poisoned")[idx] = Some(owner);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

impl DurableKvService {
    /// Builds a service with `shard_count` durable shards, releasing client
    /// acknowledgements in groups of up to `acks_per_fence` per fence
    /// (1 = fence per operation; larger groups amortize the fence but delay
    /// acks — the axis `bench_durable` sweeps).
    pub fn new(shard_count: usize, acks_per_fence: u32) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        let trace = Arc::new(StageTrace::new());
        let shards: Arc<Vec<Arc<ShardCell>>> = Arc::new(
            (0..shard_count)
                .map(|_| {
                    Arc::new(ShardCell {
                        tree: WalElimABTree::new(),
                        state: ShardState::new(),
                        trace: Arc::clone(&trace),
                    })
                })
                .collect(),
        );
        let owners = shards
            .iter()
            .enumerate()
            .map(|(idx, cell)| Some(spawn_owner(Arc::clone(cell), idx, acks_per_fence)))
            .collect();
        let shared = Arc::new(Shared {
            owners: Mutex::new(owners),
            crash_log: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            acks_per_fence,
        });
        let supervisor = {
            let shards = Arc::clone(&shards);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("crashkv-supervisor".into())
                .spawn(move || supervise(shards, shared))
                .expect("failed to spawn supervisor")
        };
        let registry = Arc::new(Registry::new());
        {
            let cells = Arc::clone(&shards);
            registry.register(move |out| {
                for (index, cell) in cells.iter().enumerate() {
                    let state = &cell.state;
                    out.push(
                        Sample::counter(
                            "durable_boundaries_total",
                            state.boundaries.load(Ordering::Relaxed),
                        )
                        .with("shard", index),
                    );
                    out.push(
                        Sample::counter(
                            "durable_fences_total",
                            state.fences.load(Ordering::Relaxed),
                        )
                        .with("shard", index),
                    );
                    out.push(
                        Sample::counter(
                            "durable_crashes_total",
                            state.crashes.load(Ordering::Relaxed),
                        )
                        .with("shard", index),
                    );
                    let up = matches!(state.status(), ShardStatus::Up);
                    out.push(Sample::gauge("durable_shard_up", u64::from(up)).with("shard", index));
                }
            });
        }
        {
            let trace = Arc::clone(&trace);
            registry.register(move |out| trace.collect(out));
        }
        Self {
            shards,
            shared,
            supervisor: Some(supervisor),
            registry,
            trace,
        }
    }

    /// Opens a client router (one SPSC lane pair per shard).  Any number of
    /// routers may be open concurrently; each belongs to one client thread.
    pub fn router(&self) -> DurableRouter {
        let lanes = self
            .shards
            .iter()
            .map(|cell| {
                let (job_tx, job_rx) = queue::channel(LANE_CAPACITY);
                let (reply_tx, reply_rx) = queue::channel(LANE_CAPACITY);
                cell.state.register_lane(Lane {
                    jobs: job_rx,
                    replies: reply_tx,
                    buffered: VecDeque::new(),
                });
                RouterLane {
                    jobs: job_tx,
                    replies: reply_rx,
                    in_flight: 0,
                }
            })
            .collect();
        DurableRouter {
            shards: Arc::clone(&self.shards),
            lanes,
            pending: VecDeque::new(),
            completed: VecDeque::new(),
        }
    }

    /// Arms a crash on `shard` (see [`CrashSpec`]).  The crash fires at the
    /// chosen group-fence boundary; the supervisor then recovers and heals
    /// the shard.  At most one directive is armed per shard at a time — a
    /// second call overwrites an unfired first.
    pub fn inject_crash(&self, shard: usize, spec: CrashSpec) {
        self.shards[shard].state.arm_crash(spec);
    }

    /// The service's metric registry.  Per-shard durability counters
    /// (`durable_boundaries_total`, `durable_fences_total`,
    /// `durable_crashes_total`, the `durable_shard_up` gauge) and the
    /// stage trace register at construction; callers may register further
    /// sources or graft [`Registry::snapshot`] output into a larger scrape.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The stage trace the shard owners record group-fence spans into
    /// (`stage_latency_ns{stage="fence"}` in the scrape).
    pub fn stage_trace(&self) -> &Arc<StageTrace> {
        &self.trace
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns `key` (same Fibonacci-hash placement as
    /// `kvserve`, so sharding stays comparable across the two services).
    pub fn shard_of(&self, key: u64) -> usize {
        shard_index(key, self.shards.len())
    }

    /// Completed crash + recovery cycles on `shard`.
    pub fn crash_count(&self, shard: usize) -> u64 {
        self.shards[shard].state.crashes.load(Ordering::SeqCst)
    }

    /// Group-fence boundaries `shard` has completed (every boundary is an
    /// ack-release point; read-only boundaries skip the physical fence).
    pub fn boundaries(&self, shard: usize) -> u64 {
        self.shards[shard].state.boundaries.load(Ordering::SeqCst)
    }

    /// Physical group fences `shard` has issued.
    pub fn fences(&self, shard: usize) -> u64 {
        self.shards[shard].state.fences.load(Ordering::SeqCst)
    }

    /// Snapshot of every recorded [`CrashReport`], in recovery order.
    pub fn crash_reports(&self) -> Vec<CrashReport> {
        self.shared
            .crash_log
            .lock()
            .expect("crash log poisoned")
            .clone()
    }

    /// Total keys across all shards.  Quiescent use only (tests, benches).
    pub fn total_keys(&self) -> u64 {
        self.shards.iter().map(|cell| cell.tree.stats().keys).sum()
    }

    /// Structural invariant check over every shard tree.  Quiescent only.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (idx, cell) in self.shards.iter().enumerate() {
            cell.tree
                .check_invariants()
                .map_err(|e| format!("shard {idx}: {e}"))?;
        }
        Ok(())
    }

    /// Stops every owner and the supervisor.  Requires all routers to be
    /// dropped (or at least quiescent): owners drain their lanes before
    /// exiting, and nothing re-arms after shutdown.  Idempotent; also runs
    /// on `Drop`.
    pub fn shutdown(&mut self) {
        let Some(supervisor) = self.supervisor.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for cell in self.shards.iter() {
            cell.state.begin_shutdown();
        }
        let _ = supervisor.join();
        // The supervisor is gone, so reap the owners directly; a shard that
        // crashed during the drain still gets its image recovered.
        let mut owners = self.shared.owners.lock().expect("owner table poisoned");
        for (idx, slot) in owners.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                let _ = handle.join();
            }
            let cell = &self.shards[idx];
            if cell.state.status() == ShardStatus::Down {
                pabtree::recover(&cell.tree);
                cell.state.set_status(ShardStatus::Up);
            }
        }
    }
}

impl Drop for DurableKvService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn shard_index(key: u64, shards: usize) -> usize {
    assert_ne!(
        key,
        abtree::EMPTY_KEY,
        "EMPTY_KEY is reserved by the tree layer"
    );
    let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((hashed as u128 * shards as u128) >> 64) as usize
}

/// One operation for the pipelined router path.
#[derive(Debug, Clone, Copy)]
pub enum DurableOp {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: u64,
    },
    /// Insert-if-absent.
    Put {
        /// Key to insert.
        key: u64,
        /// Value to associate.
        value: u64,
    },
    /// Point removal.
    Delete {
        /// Key to remove.
        key: u64,
    },
}

struct RouterLane {
    jobs: Producer<ShardJob>,
    replies: Consumer<ShardReply>,
    in_flight: usize,
}

/// A client handle: routes operations to their shard over SPSC lanes.
///
/// Two usage styles, freely mixable:
///
/// * **Blocking** — [`get`](Self::get) / [`put`](Self::put) /
///   [`delete`](Self::delete) wait for the acknowledgement, i.e. for the
///   covering group fence.  `Ok` means the effect is durable; [`Crashed`]
///   means the shard crashed first and the operation may or may not have
///   taken effect (retry at will).
/// * **Pipelined** — [`submit`](Self::submit) queues without waiting (so
///   group commits actually fill) and [`collect_one`](Self::collect_one)
///   harvests acknowledgements in submission order.
pub struct DurableRouter {
    shards: Arc<Vec<Arc<ShardCell>>>,
    lanes: Vec<RouterLane>,
    /// Shard index of each in-flight pipelined operation, submission order.
    pending: VecDeque<usize>,
    /// Results harvested early (by a blocking call) but not yet collected.
    completed: VecDeque<Result<Option<u64>, Crashed>>,
}

impl DurableRouter {
    /// Durable point lookup (blocks for the covering group fence).
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, Crashed> {
        let shard = shard_index(key, self.shards.len());
        self.call(shard, ShardJob::Get { key })
    }

    /// Durable insert-if-absent; `Ok(prior)` is fenced before release.
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, Crashed> {
        let shard = shard_index(key, self.shards.len());
        self.call(shard, ShardJob::Put { key, value })
    }

    /// Durable removal; `Ok(removed)` is fenced before release.
    pub fn delete(&mut self, key: u64) -> Result<Option<u64>, Crashed> {
        let shard = shard_index(key, self.shards.len());
        self.call(shard, ShardJob::Delete { key })
    }

    /// Queues `op` without waiting for its acknowledgement.  `Err(op)`
    /// hands the operation back when its shard lane is at capacity — call
    /// [`collect_one`](Self::collect_one) and retry.
    pub fn submit(&mut self, op: DurableOp) -> Result<(), DurableOp> {
        let (shard, job) = match op {
            DurableOp::Get { key } => (shard_index(key, self.shards.len()), ShardJob::Get { key }),
            DurableOp::Put { key, value } => (
                shard_index(key, self.shards.len()),
                ShardJob::Put { key, value },
            ),
            DurableOp::Delete { key } => (
                shard_index(key, self.shards.len()),
                ShardJob::Delete { key },
            ),
        };
        if !self.push(shard, job) {
            return Err(op);
        }
        self.pending.push_back(shard);
        Ok(())
    }

    /// Blocks for the acknowledgement of the **oldest** in-flight pipelined
    /// operation; `None` when nothing is in flight.
    pub fn collect_one(&mut self) -> Option<Result<Option<u64>, Crashed>> {
        if let Some(result) = self.completed.pop_front() {
            return Some(result);
        }
        let shard = self.pending.pop_front()?;
        Some(self.pop_blocking(shard))
    }

    /// Pipelined operations whose acknowledgement has not been collected.
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.completed.len()
    }

    fn call(&mut self, shard: usize, job: ShardJob) -> Result<Option<u64>, Crashed> {
        while !self.push(shard, job) {
            assert!(self.harvest_one(), "lane at capacity with nothing in flight");
        }
        // Drain every earlier pipelined ack into `completed` (order kept
        // for collect_one) so the next reply on this lane is ours.
        while self.harvest_one() {}
        self.pop_blocking(shard)
    }

    /// Moves the oldest pending ack into `completed`; false if none.
    fn harvest_one(&mut self) -> bool {
        let Some(shard) = self.pending.pop_front() else {
            return false;
        };
        let result = self.pop_blocking(shard);
        self.completed.push_back(result);
        true
    }

    /// Pushes one job if the per-shard in-flight cap allows; wakes the
    /// owner.  The cap keeps both rings within capacity by construction.
    fn push(&mut self, shard: usize, job: ShardJob) -> bool {
        let lane = &mut self.lanes[shard];
        if lane.in_flight >= LANE_CAPACITY {
            return false;
        }
        lane.jobs
            .try_push(job)
            .expect("job lane full or disconnected below the in-flight cap");
        lane.in_flight += 1;
        self.shards[shard].state.wake();
        true
    }

    /// Spins (then yields) for the next reply on `shard`'s lane.  A Down
    /// shard simply makes this wait until the supervisor heals it.
    fn pop_blocking(&mut self, shard: usize) -> Result<Option<u64>, Crashed> {
        let lane = &mut self.lanes[shard];
        let mut spins = 0u32;
        loop {
            if let Some(reply) = lane.replies.try_pop() {
                lane.in_flight -= 1;
                return match reply {
                    ShardReply::Value(value) => Ok(value),
                    ShardReply::Crashed => Err(Crashed),
                };
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}
