//! # crashkv — durable `kvserve` shards with crash injection
//!
//! This crate welds the repo's two halves together: the thread-per-shard
//! serving architecture of `kvserve` and the persistent (a,b)-trees of
//! `pabtree` (paper §5), and then deliberately crashes the result to check
//! that the combination is **durably linearizable**.
//!
//! Three layers:
//!
//! * **Durable shards** ([`DurableKvService`]) — each shard is a
//!   [`pabtree::WalElimABTree`] owned by one thread.  Operations flush in
//!   program order but are only *ordered* by a group `sfence`; client
//!   acknowledgements are withheld until the covering fence
//!   (`acks_per_fence` is the group-commit knob, 1–64 in the bench sweep).
//!   An acked operation is therefore always durable.
//! * **Crash injection** ([`CrashSpec`]) — a fault directive kills a shard
//!   owner at a chosen group-fence boundary: a seeded prefix of the
//!   unfenced window survives, the suffix rolls back, and optional torn
//!   partial-insert / dirty link-and-persist damage is planted for
//!   [`pabtree::recover`] to repair.  Unacked clients get the retryable
//!   [`Crashed`] error; a supervisor thread recovers the image and respawns
//!   the owner, so the shard degrades and heals instead of poisoning.
//! * **Forensics** ([`CrashReport`]) — every crash + recovery cycle records
//!   the unfenced window split, the injected damage, and the
//!   [`pabtree::RecoveryReport`] (including wall-clock recovery time),
//!   feeding `bench_durable`'s recovery-time and lost-write columns and the
//!   durable-linearizability checker in `conctest`.
//!
//! The durability contract the checker enforces: **every acknowledged
//! write survives recovery; an unacknowledged write either linearizes at
//! the crash or vanishes entirely.**
//!
//! The `lost-ack` feature compiles an intentional violation of that
//! contract (acks released before their covering fence) used by conctest's
//! mutation test to prove the checker has teeth.

#![warn(missing_docs)]

mod crash;
mod service;
mod shard;

pub use crash::{CrashReport, CrashSpec, Crashed};
pub use service::{DurableKvService, DurableOp, DurableRouter};
pub use shard::ShardStatus;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocking_round_trip_across_shards() {
        let mut service = DurableKvService::new(2, 4);
        let mut router = service.router();
        for k in 1..=200u64 {
            assert_eq!(router.put(k, k * 10), Ok(None));
        }
        for k in 1..=200u64 {
            assert_eq!(router.get(k), Ok(Some(k * 10)));
        }
        assert_eq!(router.put(7, 999), Ok(Some(70)), "insert-if-absent");
        for k in (1..=200u64).step_by(2) {
            assert_eq!(router.delete(k), Ok(Some(k * 10)));
        }
        assert_eq!(router.get(1), Ok(None));
        assert_eq!(router.get(2), Ok(Some(20)));
        drop(router);
        service.shutdown();
        assert_eq!(service.total_keys(), 100);
        service.check_invariants().unwrap();
    }

    #[test]
    fn fence_per_operation_when_group_size_is_one() {
        let mut service = DurableKvService::new(1, 1);
        let mut router = service.router();
        for k in 1..=50u64 {
            router.put(k, k).unwrap();
        }
        drop(router);
        service.shutdown();
        // Every write forms its own group: exactly one fence each.  (Reads
        // would add boundaries but no fences.)
        assert_eq!(service.fences(0), 50);
        assert!(service.boundaries(0) >= 50);
    }

    #[test]
    fn group_commit_amortizes_fences() {
        let mut service = DurableKvService::new(1, 16);
        let mut router = service.router();
        let total = 320u64;
        let mut submitted = 0u64;
        let mut acked = 0u64;
        while acked < total {
            while submitted < total {
                match router.submit(DurableOp::Put {
                    key: submitted + 1,
                    value: submitted + 1,
                }) {
                    Ok(()) => submitted += 1,
                    Err(_) => break,
                }
            }
            let reply = router.collect_one().expect("acks outstanding");
            assert_eq!(reply, Ok(None));
            acked += 1;
        }
        drop(router);
        service.shutdown();
        let fences = service.fences(0);
        // Group commit must fence at least once per full group, and the
        // pipelined feed keeps groups busy enough that far fewer fences
        // than operations are issued.
        assert!(fences >= total / 16, "fences={fences}");
        assert!(
            fences <= total / 2,
            "group commit barely amortized: fences={fences} for {total} ops"
        );
        assert_eq!(service.total_keys(), total);
    }

    // With the `lost-ack` mutant, acks release before the covering fence,
    // so "every put returned" no longer implies the fence counters are
    // quiescent — the exact-equality scrape checks below would race.
    #[cfg(not(feature = "lost-ack"))]
    #[test]
    fn registry_scrapes_durability_counters_and_fence_stage() {
        let mut service = DurableKvService::new(2, 4);
        let mut router = service.router();
        for k in 1..=64u64 {
            router.put(k, k).unwrap();
        }
        drop(router);
        let text = service.registry().render();
        let parsed = obs::expo::parse(&text).unwrap();
        for name in [
            "durable_boundaries_total",
            "durable_fences_total",
            "durable_crashes_total",
            "durable_shard_up",
        ] {
            assert!(
                parsed.iter().any(|s| s.name == name),
                "{name} missing from the scrape"
            );
        }
        // Durability counters are functional state (group commit depends on
        // them), so the scraped values are exact even with obs recording
        // compiled out.  The last put blocked for its covering fence, so the
        // counters are quiescent.
        let fences: u64 = (0..2).map(|s| service.fences(s)).sum();
        assert!(fences > 0, "64 blocking puts must fence");
        assert_eq!(obs::expo::sum(&parsed, "durable_fences_total", &[]), fences);
        assert_eq!(
            obs::expo::sum(&parsed, "durable_shard_up", &[]),
            2,
            "both shards up"
        );
        // The fence stage is recorded unsampled: one span per physical fence.
        let spans = obs::expo::sum(&parsed, "stage_latency_ns_count", &[("stage", "fence")]);
        assert_eq!(spans, if obs::ENABLED { fences } else { 0 });
        service.shutdown();
    }

    // The two crash tests below assert the durability contract the
    // `lost-ack` mutant intentionally violates, so they are compiled out
    // with the mutant (conctest's mutation test asserts the violation).
    #[cfg(not(feature = "lost-ack"))]
    #[test]
    fn crash_rolls_back_only_unacked_writes_and_heals() {
        let mut service = DurableKvService::new(1, 1000);
        // Arm before the load: the crash fires at the first boundary the
        // owner reaches, mid-group.
        service.inject_crash(
            0,
            CrashSpec {
                after_boundaries: 0,
                survivor_seed: 7,
                torn_insert: true,
                dirty_link: true,
            },
        );
        let mut router = service.router();
        let total = 60u64;
        let mut outcomes = Vec::new();
        let mut submitted = 0u64;
        while submitted < total {
            match router.submit(DurableOp::Put {
                key: submitted + 1,
                value: (submitted + 1) * 2,
            }) {
                Ok(()) => submitted += 1,
                Err(_) => {
                    outcomes.push(router.collect_one().unwrap());
                }
            }
        }
        while let Some(result) = router.collect_one() {
            outcomes.push(result);
        }
        assert_eq!(outcomes.len(), total as usize);
        assert!(
            outcomes.iter().any(|r| r.is_err()),
            "the mid-load crash must abort at least one unacked write"
        );
        // Wait for the supervisor to heal the shard, then verify the
        // durability contract through fresh reads.
        while service.crash_count(0) == 0 {
            std::thread::yield_now();
        }
        for (i, outcome) in outcomes.iter().enumerate() {
            let key = i as u64 + 1;
            if outcome.is_ok() {
                assert_eq!(
                    router.get(key),
                    Ok(Some(key * 2)),
                    "acked write to key {key} must survive the crash"
                );
            } else {
                // Unacked: linearized at the crash or vanished — both legal.
                let read = router.get(key).unwrap();
                assert!(read == Some(key * 2) || read.is_none());
            }
        }
        drop(router);
        service.shutdown();
        let reports = service.crash_reports();
        assert_eq!(reports.len(), 1);
        let report = &reports[0];
        assert_eq!(report.shard, 0);
        assert_eq!(report.survived + report.rolled_back, report.unfenced);
        assert!(report.dirty_link, "directive requested a dirty link");
        assert!(report.recovery.leaves >= 1);
        service.check_invariants().unwrap();
        // The metric registry mirrors the recovery: exactly one completed
        // crash cycle, and the shard reads as healed.
        let parsed = obs::expo::parse(&service.registry().render()).unwrap();
        assert_eq!(obs::expo::sum(&parsed, "durable_crashes_total", &[]), 1);
        assert_eq!(
            obs::expo::value(&parsed, "durable_shard_up", &[("shard", "0")]),
            Some(1)
        );
    }

    #[cfg(not(feature = "lost-ack"))]
    #[test]
    fn every_shard_crashes_and_heals_under_concurrent_load() {
        let shards = 3;
        let mut service = DurableKvService::new(shards, 8);
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = (0..4u64)
            .map(|t| {
                let mut router = service.router();
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut acked = Vec::new();
                    let mut k = t * 1_000_000 + 1;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        if router.put(k, k).is_ok() {
                            acked.push(k);
                        }
                        k += 1;
                    }
                    acked
                })
            })
            .collect();
        for shard in 0..shards {
            service.inject_crash(
                shard,
                CrashSpec {
                    after_boundaries: 2,
                    survivor_seed: shard as u64,
                    torn_insert: shard % 2 == 0,
                    dirty_link: true,
                },
            );
            while service.crash_count(shard) == 0 {
                std::thread::yield_now();
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let acked: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        let mut router = service.router();
        for &k in &acked {
            assert_eq!(router.get(k), Ok(Some(k)), "acked key {k} lost");
        }
        drop(router);
        service.shutdown();
        assert_eq!(service.crash_reports().len(), shards);
        for shard in 0..shards {
            assert_eq!(service.crash_count(shard), 1);
        }
        service.check_invariants().unwrap();
    }

    #[test]
    fn crash_on_an_idle_shard_still_fires_and_heals() {
        let mut service = DurableKvService::new(1, 4);
        let mut router = service.router();
        router.put(1, 1).unwrap();
        // Let the shard go quiet, then arm: the crash fires at the idle
        // point, with an empty unfenced window.
        std::thread::sleep(std::time::Duration::from_millis(5));
        service.inject_crash(0, CrashSpec::default());
        while service.crash_count(0) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(router.get(1), Ok(Some(1)), "service healed and serves");
        drop(router);
        service.shutdown();
        let reports = service.crash_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rolled_back, 0, "idle crash had nothing unfenced");
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut service = DurableKvService::new(2, 2);
        let mut router = service.router();
        router.put(1, 2).unwrap();
        drop(router);
        service.shutdown();
        service.shutdown();
        drop(service); // Drop after explicit shutdown must be a no-op.
    }

    #[test]
    fn sharding_matches_kvserve_placement() {
        let service = DurableKvService::new(4, 1);
        for key in [1u64, 99, 12_345, u64::MAX - 1] {
            let shard = service.shard_of(key);
            assert!(shard < 4);
            // Fibonacci-hash placement, identical formula to kvserve.
            let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            assert_eq!(shard, ((hashed as u128 * 4u128) >> 64) as usize);
        }
    }
}
