//! The crash model: what a simulated shard crash does, and what it leaves
//! behind for the supervisor and the durable-linearizability checker.
//!
//! A crash always happens at a **group-fence boundary** — the instant the
//! shard owner would otherwise issue its group `sfence` — because that is
//! the only instant with a crisp durability contract: every operation acked
//! before the previous fence is durable; every operation executed since is
//! *unfenced* and its stores may or may not have reached persistent memory.
//! The injector models that window by keeping a seeded **prefix** of the
//! unfenced state-changing operations (flushes are issued in program order
//! by [`pabtree::RelaxedPersist`], so a prefix is the consistent cut) and
//! rolling the suffix back with exact inverse operations in reverse order.
//! Optionally one rolled-back insert is re-applied *torn* — key and value
//! stores persisted, version/size not ([`abtree`]'s `force_partial_insert`)
//! — and a link-and-persist dirty mark is left on the root link, so
//! [`pabtree::recover`] has real §5 damage to repair, not just a clean
//! image.

/// Where and how to crash one shard (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct CrashSpec {
    /// Crash at the first group-fence boundary after this many further
    /// boundaries have completed (0 = the very next boundary).  If the
    /// shard goes idle first, the crash fires at the idle boundary instead,
    /// so an armed crash on a quiet shard still happens.
    pub after_boundaries: u64,
    /// Seeds the surviving prefix of the unfenced window:
    /// `seed % (unfenced + 1)` operations survive, the rest roll back.
    pub survivor_seed: u64,
    /// Re-apply one rolled-back insert as a torn partial insert (persisted
    /// key/value stores, interrupted version/size update) so recovery must
    /// linearize it at the crash.
    pub torn_insert: bool,
    /// Leave a link-and-persist dirty mark on the root link for recovery to
    /// clear.
    pub dirty_link: bool,
}

/// What one crash + recovery cycle did, recorded by the supervisor and
/// consumed by `bench_durable`'s recovery-time and lost-write columns.
#[derive(Debug, Clone, Copy)]
pub struct CrashReport {
    /// The crashed shard.
    pub shard: usize,
    /// Group-fence boundaries the shard had completed before the crash.
    pub boundary_index: u64,
    /// State-changing operations in the unfenced window at the crash.
    pub unfenced: usize,
    /// Prefix of the window that reached persistent memory (these
    /// operations linearized at the crash despite never being acked).
    pub survived: usize,
    /// Unacknowledged operations whose effects the crash destroyed.
    pub rolled_back: usize,
    /// Key of the torn partial insert, if one was injected.
    pub torn_insert: Option<u64>,
    /// Whether a dirty link-and-persist mark was present at recovery (it
    /// must be gone afterwards; the supervisor asserts that).
    pub dirty_link: bool,
    /// What [`pabtree::recover`] found and repaired, including the
    /// wall-clock recovery time.
    pub recovery: pabtree::RecoveryReport,
}

/// The retryable error a client sees for an operation whose shard crashed
/// before the covering group fence: the operation **was not acknowledged**
/// and may or may not have taken effect (it linearizes at the crash or
/// vanishes — the durable-linearizability checker treats it as optional).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crashed;

impl std::fmt::Display for Crashed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard crashed before the covering group fence; the operation was not acknowledged"
        )
    }
}

impl std::error::Error for Crashed {}
