//! Concurrent-history recording: timestamped invoke/response event logs.
//!
//! A *history* is the observable trace of a concurrent execution: for every
//! operation, the thread that ran it, its arguments, its result, and two
//! timestamps — one taken immediately **before** the operation was invoked
//! and one immediately **after** it responded.  Timestamps come from one
//! process-wide atomic counter ([`Clock`]) shared by every recorder of a
//! run, so they are unique and totally ordered, and the order is consistent
//! with real time: if operation A responded before operation B was invoked,
//! then `A.response < B.invoke`.  The [`checker`](crate::checker) consumes
//! exactly this real-time order.
//!
//! Recording is deliberately dumb and cheap: each thread wraps its session
//! in a [`Recorder`] (any [`MapHandle`]) or a [`RouterRecorder`] (a kvserve
//! [`ShardRouter`]), which appends to a thread-local `Vec` — no shared
//! mutable state beyond the clock, so recording perturbs the interleavings
//! it observes as little as possible.  After the workers join,
//! [`History::merge`] combines the per-thread logs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use abtree::MapHandle;
use kvserve::ShardRouter;

/// The shared event-order clock of one recorded run: a single atomic
/// counter ticked once per invoke and once per response.
#[derive(Debug, Default)]
pub struct Clock(AtomicU64);

impl Clock {
    /// A fresh clock at tick 0, shared by reference among recorders.
    pub fn new() -> Arc<Self> {
        Arc::new(Self(AtomicU64::new(0)))
    }

    /// The next tick.  `SeqCst` so that tick order is consistent with the
    /// real-time order of non-overlapping operations across threads.
    pub fn tick(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// One recorded operation invocation (arguments only; results live in
/// [`OpResult`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// `insert(key, value)` (insert-if-absent).
    Insert {
        /// Inserted key.
        key: u64,
        /// Inserted value.
        value: u64,
    },
    /// `delete(key)`.
    Delete {
        /// Deleted key.
        key: u64,
    },
    /// `get(key)`.
    Get {
        /// Probed key.
        key: u64,
    },
    /// `range(lo, hi)` — inclusive window scan.
    Range {
        /// Window start (inclusive).
        lo: u64,
        /// Window end (inclusive).
        hi: u64,
    },
    /// Batched multi-get (a kvserve `MGet`, or `MapHandle::get_batch`).
    MGet {
        /// Probed keys, in request order.
        keys: Vec<u64>,
    },
    /// Batched multi-put (a kvserve `MPut`, or `MapHandle::insert_batch`).
    MPut {
        /// Inserted pairs, in request order.
        pairs: Vec<(u64, u64)>,
    },
}

/// The response of a recorded operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// Result of a point operation (`insert`/`delete`/`get`).
    Value(Option<u64>),
    /// Result of a range scan, sorted by key.
    Entries(Vec<(u64, u64)>),
    /// Per-key results of a batched operation, in request order.
    Values(Vec<Option<u64>>),
    /// The operation was **not acknowledged**: its shard crashed before the
    /// covering durability fence (crashkv's `Crashed` error).  Under
    /// durable linearizability an aborted write may have linearized at the
    /// crash or vanished entirely — the checker treats it as *optional* —
    /// while an aborted read carries no information at all.
    Aborted,
}

/// One completed operation: who ran it, what it was, what it returned, and
/// when it was on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Recording thread (dense ids, assigned by the caller).
    pub thread: u32,
    /// The invocation.
    pub kind: OpKind,
    /// The response.
    pub result: OpResult,
    /// Clock tick taken immediately before invoking.
    pub invoke: u64,
    /// Clock tick taken immediately after the response.
    pub response: u64,
}

impl OpRecord {
    /// Renders one record as a line like
    /// `t1 [12,17] insert(5, 100) -> None`.
    pub fn render(&self) -> String {
        let call = match &self.kind {
            OpKind::Insert { key, value } => format!("insert({key}, {value})"),
            OpKind::Delete { key } => format!("delete({key})"),
            OpKind::Get { key } => format!("get({key})"),
            OpKind::Range { lo, hi } => format!("range({lo}..={hi})"),
            OpKind::MGet { keys } => format!("mget({keys:?})"),
            OpKind::MPut { pairs } => format!("mput({pairs:?})"),
        };
        let result = match &self.result {
            OpResult::Value(v) => format!("{v:?}"),
            OpResult::Entries(entries) => format!("{entries:?}"),
            OpResult::Values(values) => format!("{values:?}"),
            OpResult::Aborted => "crashed (unacknowledged)".to_string(),
        };
        format!(
            "t{} [{},{}] {call} -> {result}",
            self.thread, self.invoke, self.response
        )
    }
}

/// A complete recorded history, sorted by invoke tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// The recorded operations, sorted by [`OpRecord::invoke`].
    pub ops: Vec<OpRecord>,
}

impl History {
    /// Merges per-thread logs into one history sorted by invoke tick.
    pub fn merge(parts: Vec<Vec<OpRecord>>) -> Self {
        let mut ops: Vec<OpRecord> = parts.into_iter().flatten().collect();
        ops.sort_by_key(|op| op.invoke);
        Self { ops }
    }

    /// Every key mentioned anywhere in the history — in arguments or in
    /// results.  This is the key *universe* the checker reasons over: a key
    /// outside it was never touched, so it is absent at every instant.
    pub fn universe(&self) -> std::collections::BTreeSet<u64> {
        let mut keys = std::collections::BTreeSet::new();
        for op in &self.ops {
            match &op.kind {
                OpKind::Insert { key, .. } | OpKind::Delete { key } | OpKind::Get { key } => {
                    keys.insert(*key);
                }
                OpKind::Range { .. } => {}
                OpKind::MGet { keys: batch } => keys.extend(batch.iter().copied()),
                OpKind::MPut { pairs } => keys.extend(pairs.iter().map(|&(k, _)| k)),
            }
            if let OpResult::Entries(entries) = &op.result {
                keys.extend(entries.iter().map(|&(k, _)| k));
            }
        }
        keys
    }

    /// Renders the whole history, one [`OpRecord::render`] line per op.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            out.push_str(&op.render());
            out.push('\n');
        }
        out
    }
}

/// A recording wrapper around any [`MapHandle`] session.
///
/// Implements [`MapHandle`] itself, so a worker built against a generic
/// session type records transparently.  Batched `get_batch`/`insert_batch`
/// calls are recorded as [`OpKind::MGet`]/[`OpKind::MPut`] (one record per
/// batch — the checker decomposes them into per-key observations, which is
/// exactly the batching contract: batches are *not* atomic across keys).
#[derive(Debug)]
pub struct Recorder<H: MapHandle> {
    inner: H,
    thread: u32,
    clock: Arc<Clock>,
    ops: Vec<OpRecord>,
}

impl<H: MapHandle> Recorder<H> {
    /// Wraps `inner`, logging under thread id `thread` against `clock`.
    pub fn new(inner: H, thread: u32, clock: Arc<Clock>) -> Self {
        Self {
            inner,
            thread,
            clock,
            ops: Vec::new(),
        }
    }

    /// Finishes recording, returning this thread's log.
    pub fn finish(self) -> Vec<OpRecord> {
        self.ops
    }

    fn record<R>(
        &mut self,
        kind: OpKind,
        run: impl FnOnce(&mut H) -> R,
        result_of: impl FnOnce(&R) -> OpResult,
    ) -> R {
        let invoke = self.clock.tick();
        let value = run(&mut self.inner);
        let response = self.clock.tick();
        self.ops.push(OpRecord {
            thread: self.thread,
            kind,
            result: result_of(&value),
            invoke,
            response,
        });
        value
    }
}

impl<H: MapHandle> MapHandle for Recorder<H> {
    fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        self.record(
            OpKind::Insert { key, value },
            |h| h.insert(key, value),
            |&r| OpResult::Value(r),
        )
    }

    fn delete(&mut self, key: u64) -> Option<u64> {
        self.record(OpKind::Delete { key }, |h| h.delete(key), |&r| {
            OpResult::Value(r)
        })
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.record(OpKind::Get { key }, |h| h.get(key), |&r| OpResult::Value(r))
    }

    fn range(&mut self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        let invoke = self.clock.tick();
        self.inner.range(lo, hi, out);
        let response = self.clock.tick();
        self.ops.push(OpRecord {
            thread: self.thread,
            kind: OpKind::Range { lo, hi },
            result: OpResult::Entries(out.clone()),
            invoke,
            response,
        });
    }

    fn get_batch(&mut self, keys: &[u64], out: &mut Vec<Option<u64>>) {
        let invoke = self.clock.tick();
        self.inner.get_batch(keys, out);
        let response = self.clock.tick();
        self.ops.push(OpRecord {
            thread: self.thread,
            kind: OpKind::MGet { keys: keys.to_vec() },
            result: OpResult::Values(out.clone()),
            invoke,
            response,
        });
    }

    fn insert_batch(&mut self, pairs: &[(u64, u64)], out: &mut Vec<Option<u64>>) {
        let invoke = self.clock.tick();
        self.inner.insert_batch(pairs, out);
        let response = self.clock.tick();
        self.ops.push(OpRecord {
            thread: self.thread,
            kind: OpKind::MPut {
                pairs: pairs.to_vec(),
            },
            result: OpResult::Values(out.clone()),
            invoke,
            response,
        });
    }

    fn take_scan_buf(&mut self) -> Vec<(u64, u64)> {
        self.inner.take_scan_buf()
    }

    fn put_scan_buf(&mut self, buf: Vec<(u64, u64)>) {
        self.inner.put_scan_buf(buf)
    }
}

/// The kvserve adapter: records a [`ShardRouter`] session's traffic.
///
/// Service semantics map onto history events as: `put` is an
/// insert-if-absent, `scan(lo, len)` is a `Range` over the clamped
/// inclusive window, and `mget`/`mput` are batches.  The service promises
/// no cross-shard atomicity for scans or batches, so the checker is run
/// with per-key (non-snapshot) scan treatment over these histories.
#[derive(Debug)]
pub struct RouterRecorder<'s> {
    inner: ShardRouter<'s>,
    thread: u32,
    clock: Arc<Clock>,
    ops: Vec<OpRecord>,
    scan_buf: Vec<(u64, u64)>,
    batch_buf: Vec<Option<u64>>,
}

impl<'s> RouterRecorder<'s> {
    /// Wraps `router`, logging under thread id `thread` against `clock`.
    pub fn new(router: ShardRouter<'s>, thread: u32, clock: Arc<Clock>) -> Self {
        Self {
            inner: router,
            thread,
            clock,
            ops: Vec::new(),
            scan_buf: Vec::new(),
            batch_buf: Vec::new(),
        }
    }

    /// Finishes recording, returning this thread's log.
    pub fn finish(self) -> Vec<OpRecord> {
        self.ops
    }

    /// Recorded [`ShardRouter::get`].
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let invoke = self.clock.tick();
        let value = self.inner.get(key);
        let response = self.clock.tick();
        self.push(OpKind::Get { key }, OpResult::Value(value), invoke, response);
        value
    }

    /// Recorded [`ShardRouter::put`] (insert-if-absent).
    pub fn put(&mut self, key: u64, value: u64) -> Option<u64> {
        let invoke = self.clock.tick();
        let previous = self.inner.put(key, value);
        let response = self.clock.tick();
        self.push(
            OpKind::Insert { key, value },
            OpResult::Value(previous),
            invoke,
            response,
        );
        previous
    }

    /// Recorded [`ShardRouter::delete`].
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        let invoke = self.clock.tick();
        let removed = self.inner.delete(key);
        let response = self.clock.tick();
        self.push(
            OpKind::Delete { key },
            OpResult::Value(removed),
            invoke,
            response,
        );
        removed
    }

    /// Recorded [`ShardRouter::scan`] of `[lo, lo + len - 1]`.  Zero-length
    /// scans return nothing and record nothing.
    pub fn scan(&mut self, lo: u64, len: u64) -> &[(u64, u64)] {
        // One source of truth for the window bounds: the same rule the
        // router applies, so the recorded `Range` is exactly what was
        // scanned.
        let Some((lo, hi)) = abtree::scan_window(lo, len) else {
            self.scan_buf.clear();
            return &self.scan_buf;
        };
        let invoke = self.clock.tick();
        let mut buf = std::mem::take(&mut self.scan_buf);
        self.inner.scan(lo, len, &mut buf);
        let response = self.clock.tick();
        self.scan_buf = buf;
        self.push(
            OpKind::Range { lo, hi },
            OpResult::Entries(self.scan_buf.clone()),
            invoke,
            response,
        );
        &self.scan_buf
    }

    /// Recorded [`ShardRouter::mget`].
    pub fn mget(&mut self, keys: &[u64]) -> &[Option<u64>] {
        let invoke = self.clock.tick();
        let mut buf = std::mem::take(&mut self.batch_buf);
        self.inner.mget(keys, &mut buf);
        let response = self.clock.tick();
        self.batch_buf = buf;
        self.push(
            OpKind::MGet { keys: keys.to_vec() },
            OpResult::Values(self.batch_buf.clone()),
            invoke,
            response,
        );
        &self.batch_buf
    }

    /// Recorded [`ShardRouter::mput`].
    pub fn mput(&mut self, pairs: &[(u64, u64)]) -> &[Option<u64>] {
        let invoke = self.clock.tick();
        let mut buf = std::mem::take(&mut self.batch_buf);
        self.inner.mput(pairs, &mut buf);
        let response = self.clock.tick();
        self.batch_buf = buf;
        self.push(
            OpKind::MPut {
                pairs: pairs.to_vec(),
            },
            OpResult::Values(self.batch_buf.clone()),
            invoke,
            response,
        );
        &self.batch_buf
    }

    fn push(&mut self, kind: OpKind, result: OpResult, invoke: u64, response: u64) {
        self.ops.push(OpRecord {
            thread: self.thread,
            kind,
            result,
            invoke,
            response,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abtree::ElimABTree;

    #[test]
    fn recorder_logs_ordered_intervals_with_results() {
        let tree: ElimABTree = ElimABTree::new();
        let clock = Clock::new();
        let mut rec = Recorder::new(tree.handle(), 0, Arc::clone(&clock));
        assert_eq!(rec.insert(5, 50), None);
        assert_eq!(rec.insert(5, 51), Some(50));
        assert_eq!(rec.get(5), Some(50));
        let mut out = Vec::new();
        rec.range(0, 10, &mut out);
        assert_eq!(out, vec![(5, 50)]);
        assert_eq!(rec.delete(5), Some(50));
        let mut values = Vec::new();
        rec.get_batch(&[5, 6], &mut values);
        let ops = rec.finish();
        assert_eq!(ops.len(), 6);
        // Intervals are well-formed and non-overlapping on one thread.
        for pair in ops.windows(2) {
            assert!(pair[0].invoke < pair[0].response);
            assert!(pair[0].response < pair[1].invoke);
        }
        assert_eq!(ops[1].result, OpResult::Value(Some(50)));
        assert_eq!(ops[3].kind, OpKind::Range { lo: 0, hi: 10 });
        assert_eq!(ops[3].result, OpResult::Entries(vec![(5, 50)]));
        assert_eq!(ops[5].result, OpResult::Values(vec![None, None]));
    }

    #[test]
    fn history_merge_sorts_and_universe_collects_result_keys() {
        let a = vec![OpRecord {
            thread: 0,
            kind: OpKind::Get { key: 3 },
            result: OpResult::Value(None),
            invoke: 4,
            response: 5,
        }];
        let b = vec![OpRecord {
            thread: 1,
            kind: OpKind::Range { lo: 0, hi: 9 },
            result: OpResult::Entries(vec![(7, 70)]),
            invoke: 0,
            response: 9,
        }];
        let history = History::merge(vec![a, b]);
        assert_eq!(history.ops[0].thread, 1, "sorted by invoke");
        let universe: Vec<u64> = history.universe().into_iter().collect();
        assert_eq!(universe, vec![3, 7], "result-only keys are in the universe");
        let text = history.render();
        assert!(text.contains("t0 [4,5] get(3) -> None"), "{text}");
        assert!(text.contains("range(0..=9)"), "{text}");
    }

    #[test]
    fn router_recorder_round_trips() {
        use kvserve::KvService;
        let service = KvService::new(2, 1, |_| {
            let tree: ElimABTree = ElimABTree::new();
            Box::new(tree)
        });
        let clock = Clock::new();
        let mut rec = RouterRecorder::new(service.router(), 0, clock);
        assert_eq!(rec.put(1, 10), None);
        assert_eq!(rec.mput(&[(2, 20), (1, 99)]), &[None, Some(10)]);
        assert_eq!(rec.mget(&[1, 2, 3]), &[Some(10), Some(20), None]);
        assert_eq!(rec.scan(0, 4), &[(1, 10), (2, 20)]);
        assert!(rec.scan(0, 0).is_empty(), "len-0 scans record nothing");
        assert_eq!(rec.delete(1), Some(10));
        assert_eq!(rec.get(1), None);
        let ops = rec.finish();
        assert_eq!(ops.len(), 6, "the len-0 scan is not recorded");
        assert_eq!(ops[3].kind, OpKind::Range { lo: 0, hi: 3 });
    }
}
