//! Crash-aware recording and durable-linearizability checking for
//! crashkv's durable service.
//!
//! # The welded history
//!
//! A durable run is not one execution but several, separated by crashes:
//! each shard may die and be recovered mid-run.  Because the supervisor
//! heals shards *in place* (same service, same [`Clock`]), the pre- and
//! post-crash operations of every thread land in one event log with one
//! shared tick order — the histories are **welded** at recording time, and
//! the crash instants appear implicitly as the intervals of the operations
//! that aborted.
//!
//! # The durability rule
//!
//! Over a welded history, *durable linearizability* is ordinary
//! linearizability plus one clause about the crash window:
//!
//! * every **acknowledged** write took effect and survives recovery — an
//!   acked operation records its normal result and stays a mandatory
//!   [`crate::checker`] action, so a post-crash read missing an acked
//!   write is a violation;
//! * an **unacknowledged** write (the router returned
//!   [`crashkv::Crashed`]) either linearized at the crash or vanished —
//!   it records [`OpResult::Aborted`] and becomes an *optional* action the
//!   search may apply or discard, but never resurrect after its absence
//!   was observed.
//!
//! [`DurableRecorder`] produces exactly such histories from a
//! [`DurableRouter`] session; [`check_durable`] runs the checker over the
//! weld.

use std::sync::Arc;

use crashkv::{Crashed, DurableRouter};

use crate::checker::{check, CheckConfig, Outcome};
use crate::history::{Clock, History, OpKind, OpRecord, OpResult};

/// A recording wrapper around a crashkv [`DurableRouter`] session.
///
/// Mirrors [`crate::RouterRecorder`] for the durable service: every
/// blocking call is logged with invoke/response ticks from the shared
/// [`Clock`], recording the value on acknowledgement and
/// [`OpResult::Aborted`] when the shard crashed before the covering group
/// fence.  The error is passed back to the caller either way, so workloads
/// can retry.
pub struct DurableRecorder {
    inner: DurableRouter,
    thread: u32,
    clock: Arc<Clock>,
    ops: Vec<OpRecord>,
}

impl DurableRecorder {
    /// Wraps `router`, logging under thread id `thread` against `clock`.
    pub fn new(router: DurableRouter, thread: u32, clock: Arc<Clock>) -> Self {
        Self {
            inner: router,
            thread,
            clock,
            ops: Vec::new(),
        }
    }

    /// Finishes recording, returning this thread's log.
    pub fn finish(self) -> Vec<OpRecord> {
        self.ops
    }

    fn record(
        &mut self,
        kind: OpKind,
        run: impl FnOnce(&mut DurableRouter) -> Result<Option<u64>, Crashed>,
    ) -> Result<Option<u64>, Crashed> {
        let invoke = self.clock.tick();
        let outcome = run(&mut self.inner);
        let response = self.clock.tick();
        let result = match outcome {
            Ok(value) => OpResult::Value(value),
            Err(Crashed) => OpResult::Aborted,
        };
        self.ops.push(OpRecord {
            thread: self.thread,
            kind,
            result,
            invoke,
            response,
        });
        outcome
    }

    /// Recorded durable `get`.
    pub fn get(&mut self, key: u64) -> Result<Option<u64>, Crashed> {
        self.record(OpKind::Get { key }, |r| r.get(key))
    }

    /// Recorded durable `put` (insert-if-absent).
    pub fn put(&mut self, key: u64, value: u64) -> Result<Option<u64>, Crashed> {
        self.record(OpKind::Insert { key, value }, |r| r.put(key, value))
    }

    /// Recorded durable `delete`.
    pub fn delete(&mut self, key: u64) -> Result<Option<u64>, Crashed> {
        self.record(OpKind::Delete { key }, |r| r.delete(key))
    }
}

/// Checks a welded pre/post-crash history for durable linearizability.
///
/// The weld is already in the history (see the module docs), and the
/// crash-window rule is carried by the [`OpResult::Aborted`] records, so
/// this is the ordinary checker run under the point-op configuration the
/// durable service warrants: shards promise no cross-shard atomicity and
/// the durable router exposes no scans, hence non-snapshot semantics.
pub fn check_durable(history: &History, config: &CheckConfig) -> Outcome {
    debug_assert!(
        !config.snapshot_scans,
        "the durable service has no snapshot scans to model"
    );
    check(history, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crashkv::DurableKvService;

    #[test]
    fn durable_recorder_round_trips_and_records() {
        let mut service = DurableKvService::new(2, 4);
        let clock = Clock::new();
        let mut rec = DurableRecorder::new(service.router(), 0, Arc::clone(&clock));
        assert_eq!(rec.put(1, 10), Ok(None));
        assert_eq!(rec.put(1, 11), Ok(Some(10)));
        assert_eq!(rec.get(1), Ok(Some(10)));
        assert_eq!(rec.delete(1), Ok(Some(10)));
        assert_eq!(rec.get(1), Ok(None));
        let ops = rec.finish();
        service.shutdown();
        assert_eq!(ops.len(), 5);
        for pair in ops.windows(2) {
            assert!(pair[0].invoke < pair[0].response);
            assert!(pair[0].response < pair[1].invoke);
        }
        let history = History::merge(vec![ops]);
        assert!(matches!(
            check_durable(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[cfg(not(feature = "lost-ack"))]
    #[test]
    fn crashed_operations_record_aborted_and_still_check() {
        let mut service = DurableKvService::new(1, 1_000);
        service.inject_crash(
            0,
            crashkv::CrashSpec {
                after_boundaries: 0,
                survivor_seed: 3,
                torn_insert: false,
                dirty_link: false,
            },
        );
        let clock = Clock::new();
        let mut rec = DurableRecorder::new(service.router(), 0, Arc::clone(&clock));
        let mut aborted = 0;
        for k in 1..=40u64 {
            if rec.put(k, k).is_err() {
                aborted += 1;
            }
        }
        while service.crash_count(0) == 0 {
            std::thread::yield_now();
        }
        // Post-crash verification reads of every key, recorded in the same
        // welded history.
        for k in 1..=40u64 {
            rec.get(k).unwrap();
        }
        let history = History::merge(vec![rec.finish()]);
        service.shutdown();
        assert!(
            history
                .ops
                .iter()
                .filter(|op| op.result == OpResult::Aborted)
                .count()
                == aborted
        );
        let outcome = check_durable(&history, &CheckConfig::default());
        assert!(
            matches!(outcome, Outcome::Linearizable),
            "{outcome:?}\n{}",
            history.render()
        );
    }
}
