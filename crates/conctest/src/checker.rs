//! The linearizability checker: a Wing–Gong-style search with per-key
//! partitioning, a fast sequential pre-pass, and bounded backtracking.
//!
//! # Model
//!
//! The specification is the engine's dictionary contract
//! ([`abtree::MapHandle`]): `insert` is insert-if-absent returning the
//! pre-existing value, `delete` returns the removed value, `get` returns the
//! current value, and a range scan returns the window's contents.  A history
//! is **linearizable** iff every operation can be assigned a linearization
//! point inside its `[invoke, response]` interval such that executing the
//! operations sequentially in point order yields exactly the recorded
//! results, starting from the empty map (recorded runs always start on a
//! fresh structure).
//!
//! # Decomposition and partitioning
//!
//! Checking linearizability is NP-hard in general, but dictionary histories
//! decompose: point operations on *different keys* never constrain each
//! other, so the history splits into independent per-key sub-histories
//! (Wing & Gong's "P-compositionality"), each checked against a tiny
//! one-key state machine.  Three operation kinds span keys and are handled
//! by contract:
//!
//! * **batches** (`MGet`/`MPut`) promise no cross-key atomicity — each key's
//!   sub-operation is individually linearizable within the batch's interval
//!   — so they decompose into per-key reads/writes carrying the batch's
//!   interval (a superset of the sub-operation's true interval, hence sound:
//!   it can only admit more schedules, never reject a correct one);
//! * **non-snapshot scans** (fallback probing, the skiplist's list-order
//!   walk, kvserve's cross-shard scatter-gather) promise the same per-key
//!   guarantee and decompose identically: one *observation* per universe key
//!   in the window — present with the scanned value, or absent;
//! * **snapshot scans** (the (a,b)-trees' validated scans, see
//!   [`setbench::registry::ScanSupport::Snapshot`]) promise joint atomicity
//!   and stay whole: a single multi-key read that must match the entire
//!   window state at one instant.  Such a scan welds every universe key in
//!   its window into one search component (union-find), at the cost of a
//!   bigger state space — which is why the fuzzer keeps key universes and
//!   scan windows small.
//!
//! # Search
//!
//! Each component is checked in three escalating stages:
//!
//! 1. **Sequential fast path** — if no two operations overlap, the real-time
//!    order is the only candidate linearization; replay it directly.
//! 2. **Provenance pre-pass** — every observed value must have a justifying
//!    successful insert that was invoked before the observation responded.
//!    Linear time, and catches the common failure shapes (stale and phantom
//!    reads) with a crisp message before any search runs.
//! 3. **Wing–Gong search** — depth-first over "linearize one minimal
//!    operation next" choices with undo, memoizing *failed* configurations
//!    (linearized-set + state) so equivalent interleavings are pruned, and
//!    giving up with [`Outcome::Bounded`] after a configurable number of
//!    apply attempts so an adversarial history cannot hang the harness.
//!
//! # Durable histories
//!
//! Histories recorded against crashkv's durable service contain
//! crash-aborted operations ([`OpResult::Aborted`]): the shard crashed
//! before the covering group fence, so the client never got a result.
//! Durable linearizability gives such a write exactly two legal fates —
//! linearize at the crash (inside its recorded interval) or vanish — and
//! forbids flicker (absent, then present).  The checker models this with
//! *optional* actions: an aborted write decomposes to a
//! `Action::MaybeWrite`/`Action::MaybeRemove` the search may either
//! apply or explicitly discard at its linearization slot, while an aborted
//! read decomposes to nothing.  Acked operations stay mandatory, so a
//! recovered image missing an acknowledged write is still a violation —
//! that is precisely the durability contract.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::history::{History, OpKind, OpResult};

/// Checker configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Treat `Range` records as atomic snapshots (joint multi-key reads).
    /// Set from the structure's registry descriptor:
    /// `ScanSupport::Snapshot` structures get `true`, everything else —
    /// including every kvserve history — gets `false`.
    pub snapshot_scans: bool,
    /// Upper bound on specification-apply attempts per component before the
    /// search gives up with [`Outcome::Bounded`].
    pub search_budget: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            snapshot_scans: false,
            search_budget: 5_000_000,
        }
    }
}

impl CheckConfig {
    /// Config for a structure with jointly-linearizable snapshot scans.
    pub fn with_snapshot_scans() -> Self {
        Self {
            snapshot_scans: true,
            ..Self::default()
        }
    }
}

/// Why (and where) a history failed the check.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The keys of the component that could not be linearized.
    pub component_keys: Vec<u64>,
    /// Human-readable explanation of the deepest dead end.
    pub message: String,
}

impl std::fmt::Display for ViolationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "not linearizable over keys {:?}: {}",
            self.component_keys, self.message
        )
    }
}

/// The checker's verdict on a history.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// A valid linearization exists for every component.
    Linearizable,
    /// Some component admits no linearization — a real concurrency bug.
    Violation(ViolationReport),
    /// The search budget ran out before a verdict; inconclusive (treat as a
    /// pass with a warning, or re-run with a bigger
    /// [`CheckConfig::search_budget`] / smaller history).
    Bounded {
        /// Keys of the component whose search was cut off.
        component_keys: Vec<u64>,
    },
}

impl Outcome {
    /// `true` for [`Outcome::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, Outcome::Violation(_))
    }
}

/// A decomposed single- or multi-key specification action.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    /// A successful or refused insert of `key` (refused when `prior` is
    /// `Some`): requires the key's state to match `prior` and, when `prior`
    /// is `None`, installs `value`.
    Write {
        key: u64,
        value: u64,
        prior: Option<u64>,
    },
    /// A delete observing `removed`.
    Remove { key: u64, removed: Option<u64> },
    /// A read (get, batch slot, or non-snapshot scan slot) observing
    /// `value`.
    Read { key: u64, value: Option<u64> },
    /// An atomic snapshot of `[lo, hi]` observing exactly `entries`.
    Snap {
        lo: u64,
        hi: u64,
        entries: Vec<(u64, u64)>,
    },
    /// An **unacknowledged** insert (its shard crashed before the covering
    /// durability fence): it either linearizes at the crash — as an
    /// insert-if-absent whose return nobody saw — or vanishes.  Optional:
    /// the search may leave it unlinearized.
    MaybeWrite { key: u64, value: u64 },
    /// An unacknowledged delete: removes the key if present when (and if)
    /// it linearizes.  Optional, like [`Action::MaybeWrite`].
    MaybeRemove { key: u64 },
}

impl Action {
    fn render(&self) -> String {
        match self {
            Action::Write {
                key,
                value,
                prior,
            } => format!("insert({key}, {value}) -> {prior:?}"),
            Action::Remove { key, removed } => format!("delete({key}) -> {removed:?}"),
            Action::Read { key, value } => format!("read({key}) -> {value:?}"),
            Action::Snap { lo, hi, entries } => format!("snapshot({lo}..={hi}) -> {entries:?}"),
            Action::MaybeWrite { key, value } => {
                format!("unacked insert({key}, {value})")
            }
            Action::MaybeRemove { key } => format!("unacked delete({key})"),
        }
    }

    /// Whether the action **must** linearize.  Unacked crash-window writes
    /// are optional: durable linearizability lets them vanish.
    fn mandatory(&self) -> bool {
        !matches!(self, Action::MaybeWrite { .. } | Action::MaybeRemove { .. })
    }
}

/// One decomposed operation in a component's sub-history.
#[derive(Debug, Clone)]
struct COp {
    action: Action,
    invoke: u64,
    response: u64,
    thread: u32,
}

impl COp {
    fn render(&self) -> String {
        format!(
            "t{} [{},{}] {}",
            self.thread,
            self.invoke,
            self.response,
            self.action.render()
        )
    }
}

/// Memoization key of a search configuration: the linearized-set bitmask
/// plus the flattened state it produced.
type ConfigKey = (Vec<u64>, Vec<(u64, u64)>);

/// Undo token for one applied action.
enum Undo {
    None,
    /// The action inserted `key`; undo removes it.
    Inserted(u64),
    /// The action removed `(key, value)`; undo restores it.
    Removed(u64, u64),
}

/// Applies `action` to `state`, returning an undo token if the action is
/// consistent with the specification, or `None` (leaving `state` unchanged)
/// if not.
fn try_apply(state: &mut BTreeMap<u64, u64>, action: &Action) -> Option<Undo> {
    match action {
        Action::Write { key, value, prior } => match (state.get(key).copied(), prior) {
            (None, None) => {
                state.insert(*key, *value);
                Some(Undo::Inserted(*key))
            }
            (Some(current), Some(expected)) if current == *expected => Some(Undo::None),
            _ => None,
        },
        Action::Remove { key, removed } => match (state.get(key).copied(), removed) {
            (Some(current), Some(expected)) if current == *expected => {
                state.remove(key);
                Some(Undo::Removed(*key, current))
            }
            (None, None) => Some(Undo::None),
            _ => None,
        },
        Action::Read { key, value } => (state.get(key).copied() == *value).then_some(Undo::None),
        // Unacked operations returned nothing to constrain against: when
        // chosen, they apply unconditionally (insert-if-absent / remove-if-
        // present semantics) and always succeed.
        Action::MaybeWrite { key, value } => {
            if state.contains_key(key) {
                Some(Undo::None)
            } else {
                state.insert(*key, *value);
                Some(Undo::Inserted(*key))
            }
        }
        Action::MaybeRemove { key } => match state.remove(key) {
            Some(value) => Some(Undo::Removed(*key, value)),
            None => Some(Undo::None),
        },
        Action::Snap { lo, hi, entries } => {
            let window: Vec<(u64, u64)> = state
                .range(*lo..=*hi)
                .map(|(&k, &v)| (k, v))
                .collect();
            (window == *entries).then_some(Undo::None)
        }
    }
}

fn undo_apply(state: &mut BTreeMap<u64, u64>, undo: Undo) {
    match undo {
        Undo::None => {}
        Undo::Inserted(key) => {
            state.remove(&key);
        }
        Undo::Removed(key, value) => {
            state.insert(key, value);
        }
    }
}

/// Well-formedness of every scan result, checked up front: entries must be
/// strictly sorted by key, and every key inside the requested window.
///
/// This cannot wait for decomposition — the per-key scan treatment reads
/// entries *through* a map (deduplicating) and only compares universe keys
/// inside the window, so a scan returning out-of-window, duplicate or
/// unsorted garbage would otherwise slip past the concurrent checker
/// entirely (the snapshot treatment would reject it, but only with an
/// opaque exhausted-search message).
fn malformed_scan(history: &History) -> Option<ViolationReport> {
    for op in &history.ops {
        let (&OpKind::Range { lo, hi }, OpResult::Entries(entries)) = (&op.kind, &op.result)
        else {
            continue;
        };
        let out_of_window = entries.iter().find(|(k, _)| !(lo..=hi).contains(k));
        let disorder = entries.windows(2).find(|pair| pair[0].0 >= pair[1].0);
        let message = match (out_of_window, disorder) {
            (Some(&(k, _)), _) => format!("scan entry key {k} lies outside the window"),
            (None, Some(pair)) => format!(
                "scan entries out of order or duplicated at keys {} >= {}",
                pair[0].0, pair[1].0
            ),
            (None, None) => continue,
        };
        return Some(ViolationReport {
            component_keys: entries.iter().map(|&(k, _)| k).collect(),
            message: format!("malformed scan result `{}`: {message}", op.render()),
        });
    }
    None
}

/// Checks `history` against the dictionary specification (see the module
/// docs), starting from the empty map.
pub fn check(history: &History, config: &CheckConfig) -> Outcome {
    if let Some(report) = malformed_scan(history) {
        return Outcome::Violation(report);
    }
    let components = decompose(history, config);
    let mut bounded: Option<Vec<u64>> = None;
    for component in components {
        match check_component(&component, config) {
            ComponentOutcome::Ok => {}
            ComponentOutcome::Bounded => {
                bounded.get_or_insert_with(|| component.keys.clone());
            }
            ComponentOutcome::Violation(message) => {
                return Outcome::Violation(ViolationReport {
                    component_keys: component.keys,
                    message,
                });
            }
        }
    }
    match bounded {
        Some(component_keys) => Outcome::Bounded { component_keys },
        None => Outcome::Linearizable,
    }
}

/// One independent search unit: the keys it covers and its sub-history.
struct Component {
    keys: Vec<u64>,
    ops: Vec<COp>,
}

enum ComponentOutcome {
    Ok,
    Bounded,
    Violation(String),
}

/// Union-find over a dense key index.
struct UnionFind(Vec<usize>);

impl UnionFind {
    fn new(n: usize) -> Self {
        Self((0..n).collect())
    }
    fn find(&mut self, i: usize) -> usize {
        if self.0[i] != i {
            let root = self.find(self.0[i]);
            self.0[i] = root;
        }
        self.0[i]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        self.0[ra] = rb;
    }
}

/// Splits a history into independent per-component sub-histories of
/// decomposed actions (see the module docs for the decomposition rules).
fn decompose(history: &History, config: &CheckConfig) -> Vec<Component> {
    let universe: Vec<u64> = history.universe().into_iter().collect();
    let index: HashMap<u64, usize> = universe
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();
    let mut uf = UnionFind::new(universe.len());

    // Pass 1: weld snapshot-scan windows into components.
    if config.snapshot_scans {
        for op in &history.ops {
            if let OpKind::Range { lo, hi } = op.kind {
                let in_window: Vec<usize> = universe
                    .iter()
                    .enumerate()
                    .filter(|&(_, &k)| (lo..=hi).contains(&k))
                    .map(|(i, _)| i)
                    .collect();
                for pair in in_window.windows(2) {
                    uf.union(pair[0], pair[1]);
                }
            }
        }
    }

    // Pass 2: decompose every record into actions and bucket them by
    // component root.
    let mut buckets: HashMap<usize, Vec<COp>> = HashMap::new();
    for op in &history.ops {
        let mut push = |uf: &mut UnionFind, key: u64, action: Action| {
            let root = uf.find(index[&key]);
            buckets.entry(root).or_default().push(COp {
                action,
                invoke: op.invoke,
                response: op.response,
                thread: op.thread,
            });
        };
        match (&op.kind, &op.result) {
            (&OpKind::Insert { key, value }, &OpResult::Value(prior)) => {
                push(&mut uf, key, Action::Write { key, value, prior });
            }
            (&OpKind::Delete { key }, &OpResult::Value(removed)) => {
                push(&mut uf, key, Action::Remove { key, removed });
            }
            (&OpKind::Get { key }, &OpResult::Value(value)) => {
                push(&mut uf, key, Action::Read { key, value });
            }
            (&OpKind::Range { lo, hi }, OpResult::Entries(entries)) => {
                if config.snapshot_scans {
                    // Restrict the window to the universe: keys never
                    // touched are absent throughout and carry no
                    // information (and are not in the component's state).
                    let in_window: Vec<u64> = universe
                        .iter()
                        .copied()
                        .filter(|k| (lo..=hi).contains(k))
                        .collect();
                    match in_window.first() {
                        Some(&k) => push(
                            &mut uf,
                            k,
                            Action::Snap {
                                lo,
                                hi,
                                entries: entries.clone(),
                            },
                        ),
                        // A window with no universe keys carries no
                        // information: its entries are provably empty here,
                        // since `malformed_scan` rejected out-of-window
                        // entries and the universe contains every entry key.
                        None => debug_assert!(
                            entries.is_empty(),
                            "scan entries outside the universe survived malformed_scan"
                        ),
                    }
                } else {
                    let scanned: BTreeMap<u64, u64> = entries.iter().copied().collect();
                    for &key in universe.iter().filter(|k| (lo..=hi).contains(k)) {
                        push(
                            &mut uf,
                            key,
                            Action::Read {
                                key,
                                value: scanned.get(&key).copied(),
                            },
                        );
                    }
                }
            }
            (OpKind::MGet { keys }, OpResult::Values(values)) => {
                for (&key, &value) in keys.iter().zip(values) {
                    push(&mut uf, key, Action::Read { key, value });
                }
            }
            (OpKind::MPut { pairs }, OpResult::Values(values)) => {
                for (&(key, value), &prior) in pairs.iter().zip(values) {
                    push(&mut uf, key, Action::Write { key, value, prior });
                }
            }
            // Crash-aborted operations (durable histories).  An unacked
            // write may have linearized at the crash or vanished — an
            // optional action; an unacked read observed nothing and
            // constrains nothing, so it decomposes to no action at all.
            (&OpKind::Insert { key, value }, &OpResult::Aborted) => {
                push(&mut uf, key, Action::MaybeWrite { key, value });
            }
            (&OpKind::Delete { key }, &OpResult::Aborted) => {
                push(&mut uf, key, Action::MaybeRemove { key });
            }
            (
                OpKind::Get { .. } | OpKind::Range { .. } | OpKind::MGet { .. },
                OpResult::Aborted,
            ) => {}
            // An aborted batch put never reports which slots executed; its
            // per-key slots are all individually optional.
            (OpKind::MPut { pairs }, OpResult::Aborted) => {
                for &(key, value) in pairs {
                    push(&mut uf, key, Action::MaybeWrite { key, value });
                }
            }
            (kind, result) => unreachable!("malformed record: {kind:?} -> {result:?}"),
        }
    }

    let mut components: Vec<Component> = buckets
        .into_values()
        .map(|mut ops| {
            ops.sort_by_key(|op| op.invoke);
            let mut keys: Vec<u64> = ops
                .iter()
                .flat_map(|op| match &op.action {
                    Action::Write { key, .. }
                    | Action::Remove { key, .. }
                    | Action::Read { key, .. }
                    | Action::MaybeWrite { key, .. }
                    | Action::MaybeRemove { key } => vec![*key],
                    Action::Snap { entries, .. } => entries.iter().map(|&(k, _)| k).collect(),
                })
                .collect();
            keys.sort_unstable();
            keys.dedup();
            Component { keys, ops }
        })
        .collect();
    // Deterministic order for deterministic reports.
    components.sort_by_key(|c| c.keys.first().copied());
    components
}

fn check_component(component: &Component, config: &CheckConfig) -> ComponentOutcome {
    let ops = &component.ops;

    // Stage 1: sequential fast path.  With no overlap the real-time order
    // is the only linearization candidate — unless optional (unacked)
    // actions are present: those may also *vanish*, so a straight replay
    // would wrongly force them to take effect.
    let sequential = ops
        .windows(2)
        .all(|pair| pair[0].response < pair[1].invoke)
        && ops.iter().all(|op| op.action.mandatory());
    if sequential {
        let mut state = BTreeMap::new();
        for op in ops {
            if try_apply(&mut state, &op.action).is_none() {
                return ComponentOutcome::Violation(format!(
                    "sequential replay fails at `{}` against state {:?}",
                    op.render(),
                    state
                ));
            }
        }
        return ComponentOutcome::Ok;
    }

    // Stage 2: provenance pre-pass.  Any observed value must have a
    // justifying successful insert invoked before the observation responded.
    for op in ops {
        let observed: Option<(u64, u64)> = match &op.action {
            Action::Read {
                key,
                value: Some(v),
            } => Some((*key, *v)),
            Action::Remove {
                key,
                removed: Some(v),
            } => Some((*key, *v)),
            Action::Write {
                key,
                prior: Some(v),
                ..
            } => Some((*key, *v)),
            _ => None,
        };
        let justify = |key: u64, v: u64, what: &str| -> Option<ComponentOutcome> {
            // An unacked insert is a legitimate provenance source: it may
            // have linearized at the crash even though nobody saw its ack.
            let justified = ops.iter().any(|other| {
                matches!(
                    other.action,
                    Action::Write { key: k, value, prior: None }
                    | Action::MaybeWrite { key: k, value } if k == key && value == v
                ) && other.invoke < op.response
            });
            (!justified).then(|| {
                ComponentOutcome::Violation(format!(
                    "{what} `{}` observes value {v} at key {key}, but no successful \
                     insert of that value was invoked before the observation returned",
                    op.render()
                ))
            })
        };
        if let Some((key, v)) = observed {
            if let Some(violation) = justify(key, v, "operation") {
                return violation;
            }
        }
        if let Action::Snap { entries, .. } = &op.action {
            for &(key, v) in entries {
                if let Some(violation) = justify(key, v, "snapshot slot of") {
                    return violation;
                }
            }
        }
    }

    // Stage 3: Wing-Gong search.
    wing_gong(ops, config.search_budget)
}

/// Exhaustive (budget-bounded) search for a valid linearization of `ops`
/// (sorted by invoke).
fn wing_gong(ops: &[COp], budget: u64) -> ComponentOutcome {
    let n = ops.len();
    let words = n.div_ceil(64);
    // Optional (unacked crash-window) actions may vanish: the search
    // succeeds once every *mandatory* action is linearized, with any
    // leftover optional actions implicitly discarded.
    let mandatory: Vec<bool> = ops.iter().map(|op| op.action.mandatory()).collect();
    let total_mandatory = mandatory.iter().filter(|&&m| m).count();
    if total_mandatory == 0 {
        // Every action may vanish; the empty linearization is valid.
        return ComponentOutcome::Ok;
    }
    let mut linearized = vec![false; n];
    let mut mask = vec![0u64; words];
    let mut state: BTreeMap<u64, u64> = BTreeMap::new();
    let mut done = 0usize;
    let mut spent = 0u64;
    // Configurations proven unlinearizable, keyed by (chosen-set, state).
    let mut failed: HashSet<ConfigKey> = HashSet::new();

    // A move is "handle operation `i` next": apply it (`skip == false`), or
    // — for optional operations only — discard it (`skip == true`, the
    // write vanished in the crash).  Discarding counts as handling, so an
    // optional operation still participates in the real-time candidate
    // window: a vanished write cannot reappear after later operations
    // observed its absence.
    let candidates = |linearized: &[bool]| -> Vec<(usize, bool)> {
        let min_resp = ops
            .iter()
            .enumerate()
            .filter(|&(i, _)| !linearized[i])
            .map(|(_, op)| op.response)
            .min()
            .unwrap_or(u64::MAX);
        let mut moves = Vec::new();
        for i in 0..n {
            if linearized[i] || ops[i].invoke >= min_resp {
                continue;
            }
            moves.push((i, false));
            if !mandatory[i] {
                moves.push((i, true));
            }
        }
        moves
    };

    struct Frame {
        chosen: usize,
        undo: Undo,
        cand: Vec<(usize, bool)>,
        pos: usize,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut cand = candidates(&linearized);
    let mut pos = 0usize;
    // The deepest dead end seen, for the violation message.
    let mut best_done = 0usize;
    let mut best_blocked: Vec<String> = Vec::new();
    let mut best_state: BTreeMap<u64, u64> = BTreeMap::new();

    loop {
        let mut advanced = false;
        while pos < cand.len() {
            let (i, skip) = cand[pos];
            pos += 1;
            spent += 1;
            if spent > budget {
                return ComponentOutcome::Bounded;
            }
            let applied = if skip {
                Some(Undo::None)
            } else {
                try_apply(&mut state, &ops[i].action)
            };
            if let Some(undo) = applied {
                mask[i / 64] |= 1 << (i % 64);
                let config_key = (
                    mask.clone(),
                    state.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
                );
                if failed.contains(&config_key) {
                    // Known dead configuration reached by another order.
                    mask[i / 64] &= !(1 << (i % 64));
                    undo_apply(&mut state, undo);
                    continue;
                }
                linearized[i] = true;
                if mandatory[i] {
                    done += 1;
                    if done == total_mandatory {
                        return ComponentOutcome::Ok;
                    }
                }
                stack.push(Frame {
                    chosen: i,
                    undo,
                    cand: std::mem::take(&mut cand),
                    pos,
                });
                cand = candidates(&linearized);
                pos = 0;
                advanced = true;
                break;
            }
        }
        if advanced {
            continue;
        }
        // Dead end: every candidate failed (or was a known-dead config).
        if done >= best_done {
            best_done = done;
            best_state = state.clone();
            best_blocked = cand
                .iter()
                .filter(|&&(_, skip)| !skip)
                .map(|&(i, _)| ops[i].render())
                .collect();
        }
        failed.insert((
            mask.clone(),
            state.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        ));
        let Some(frame) = stack.pop() else {
            return ComponentOutcome::Violation(format!(
                "search exhausted after linearizing {best_done}/{total_mandatory} \
                 mandatory operations; with state {best_state:?} none of the \
                 eligible operations can be linearized next: [{}]",
                best_blocked.join("; ")
            ));
        };
        let i = frame.chosen;
        mask[i / 64] &= !(1 << (i % 64));
        linearized[i] = false;
        if mandatory[i] {
            done -= 1;
        }
        undo_apply(&mut state, frame.undo);
        cand = frame.cand;
        pos = frame.pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;

    fn rec(thread: u32, kind: OpKind, result: OpResult, invoke: u64, response: u64) -> OpRecord {
        OpRecord {
            thread,
            kind,
            result,
            invoke,
            response,
        }
    }

    fn insert(t: u32, key: u64, value: u64, prior: Option<u64>, iv: u64, rs: u64) -> OpRecord {
        rec(t, OpKind::Insert { key, value }, OpResult::Value(prior), iv, rs)
    }

    fn get(t: u32, key: u64, value: Option<u64>, iv: u64, rs: u64) -> OpRecord {
        rec(t, OpKind::Get { key }, OpResult::Value(value), iv, rs)
    }

    #[test]
    fn sequential_history_passes() {
        let history = History {
            ops: vec![
                insert(0, 1, 10, None, 0, 1),
                get(0, 1, Some(10), 2, 3),
                rec(0, OpKind::Delete { key: 1 }, OpResult::Value(Some(10)), 4, 5),
                get(0, 1, None, 6, 7),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[test]
    fn sequential_stale_read_is_flagged() {
        let history = History {
            ops: vec![
                insert(0, 1, 10, None, 0, 1),
                get(0, 1, None, 2, 3), // stale: 1 is definitely present
            ],
        };
        let outcome = check(&history, &CheckConfig::default());
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    #[test]
    fn overlapping_reads_may_see_either_state() {
        // insert(1) overlaps two gets; one sees the key, one does not —
        // both are fine because the insert may linearize between them.
        let history = History {
            ops: vec![
                get(1, 1, None, 0, 10),
                insert(0, 1, 10, None, 1, 9),
                get(1, 1, Some(10), 11, 12),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[test]
    fn phantom_value_is_flagged_by_provenance() {
        // A concurrent get observes value 99 that no insert ever wrote.
        let history = History {
            ops: vec![
                insert(0, 1, 10, None, 0, 5),
                get(1, 1, Some(99), 1, 4),
            ],
        };
        let outcome = check(&history, &CheckConfig::default());
        match outcome {
            Outcome::Violation(report) => {
                assert!(report.message.contains("99"), "{}", report.message);
                assert_eq!(report.component_keys, vec![1]);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn torn_snapshot_is_flagged_only_under_snapshot_semantics() {
        // Writer (thread 0), strictly sequential: insert(1), delete(1),
        // insert(2).  Key 1 and key 2 are never present simultaneously.
        // A concurrent scan observes both — torn.
        let ops = vec![
            insert(0, 1, 100, None, 0, 1),
            rec(0, OpKind::Delete { key: 1 }, OpResult::Value(Some(100)), 4, 5),
            insert(0, 2, 200, None, 6, 7),
            rec(
                1,
                OpKind::Range { lo: 0, hi: 9 },
                OpResult::Entries(vec![(1, 100), (2, 200)]),
                2,
                8,
            ),
        ];
        let history = History { ops };
        let strict = check(&history, &CheckConfig::with_snapshot_scans());
        assert!(strict.is_violation(), "snapshot semantics: {strict:?}");
        // Under per-key semantics the same history is fine: the scan's key-1
        // slot may linearize early and its key-2 slot late.
        let lax = check(&history, &CheckConfig::default());
        assert!(matches!(lax, Outcome::Linearizable), "{lax:?}");
    }

    #[test]
    fn snapshot_over_untouched_window_must_be_empty() {
        let history = History {
            ops: vec![rec(
                0,
                OpKind::Range { lo: 100, hi: 200 },
                OpResult::Entries(vec![(150, 1)]),
                0,
                1,
            )],
        };
        let outcome = check(&history, &CheckConfig::with_snapshot_scans());
        assert!(outcome.is_violation(), "{outcome:?}");
    }

    #[test]
    fn concurrent_same_key_inserts_linearize_either_way() {
        // Two overlapping inserts of the same key; the recorded results say
        // thread 1 won.  Also a racing failed delete before either insert
        // could have landed... which must therefore linearize first.
        let history = History {
            ops: vec![
                insert(0, 7, 70, Some(71), 0, 10),
                insert(1, 7, 71, None, 1, 9),
                rec(2, OpKind::Delete { key: 7 }, OpResult::Value(None), 2, 3),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[test]
    fn impossible_refusal_order_is_flagged() {
        // Thread 0's insert was refused with value 71, but the insert that
        // wrote 71 was invoked strictly after thread 0's insert returned.
        let history = History {
            ops: vec![
                insert(0, 7, 70, Some(71), 0, 1),
                insert(1, 7, 71, None, 2, 3),
            ],
        };
        assert!(check(&history, &CheckConfig::default()).is_violation());
    }

    #[test]
    fn batches_decompose_per_key() {
        let history = History {
            ops: vec![
                rec(
                    0,
                    OpKind::MPut {
                        pairs: vec![(1, 10), (2, 20)],
                    },
                    OpResult::Values(vec![None, None]),
                    0,
                    1,
                ),
                rec(
                    1,
                    OpKind::MGet { keys: vec![1, 2, 3] },
                    OpResult::Values(vec![Some(10), Some(20), None]),
                    2,
                    3,
                ),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
        // A batch slot observing a never-written value still fails.
        let bad = History {
            ops: vec![rec(
                1,
                OpKind::MGet { keys: vec![1] },
                OpResult::Values(vec![Some(10)]),
                0,
                1,
            )],
        };
        assert!(check(&bad, &CheckConfig::default()).is_violation());
    }

    #[test]
    fn tiny_budget_reports_bounded() {
        // Heavily overlapped ops with a 1-attempt budget cannot conclude.
        let history = History {
            ops: vec![
                insert(0, 1, 10, None, 0, 10),
                get(1, 1, Some(10), 1, 9),
                get(2, 1, None, 2, 8),
            ],
        };
        let outcome = check(
            &history,
            &CheckConfig {
                snapshot_scans: false,
                search_budget: 1,
            },
        );
        assert!(matches!(outcome, Outcome::Bounded { .. }), "{outcome:?}");
    }

    #[test]
    fn malformed_scan_results_are_flagged_under_both_semantics() {
        let cases = [
            // Out-of-window entry.
            (10u64, 20u64, vec![(9u64, 1u64)]),
            // Duplicate key.
            (0, 20, vec![(5, 1), (5, 2)]),
            // Unsorted entries.
            (0, 20, vec![(7, 1), (5, 2)]),
        ];
        for (lo, hi, entries) in cases {
            let history = History {
                ops: vec![
                    insert(0, 5, 1, None, 0, 1),
                    insert(0, 7, 1, None, 2, 3),
                    insert(0, 9, 1, None, 4, 5),
                    rec(1, OpKind::Range { lo, hi }, OpResult::Entries(entries.clone()), 6, 7),
                ],
            };
            for config in [CheckConfig::default(), CheckConfig::with_snapshot_scans()] {
                let outcome = check(&history, &config);
                match outcome {
                    Outcome::Violation(report) => {
                        assert!(report.message.contains("malformed scan"), "{report}")
                    }
                    other => panic!(
                        "malformed entries {entries:?} not flagged (snapshot={}): {other:?}",
                        config.snapshot_scans
                    ),
                }
            }
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        let outcome = check(&History::default(), &CheckConfig::with_snapshot_scans());
        assert!(matches!(outcome, Outcome::Linearizable));
    }

    fn aborted_insert(t: u32, key: u64, value: u64, iv: u64, rs: u64) -> OpRecord {
        rec(t, OpKind::Insert { key, value }, OpResult::Aborted, iv, rs)
    }

    #[test]
    fn unacked_write_may_vanish() {
        // The write crashed before its fence and a later read sees nothing:
        // legal, the write vanished.  (Strictly sequential on purpose — the
        // fast path must not force the aborted write to take effect.)
        let history = History {
            ops: vec![
                aborted_insert(0, 1, 10, 0, 1),
                get(1, 1, None, 2, 3),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[test]
    fn unacked_write_may_survive_the_crash() {
        // The same crashed write observed by a later read: also legal — it
        // linearized at the crash.  Provenance must accept the unacked
        // insert as the value's source.
        let history = History {
            ops: vec![
                aborted_insert(0, 1, 10, 0, 1),
                get(1, 1, Some(10), 2, 3),
                get(1, 1, Some(10), 4, 5),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[test]
    fn unacked_write_cannot_flicker() {
        // Vanish-then-reappear is NOT legal: the crashed write either
        // linearized once or never.
        let history = History {
            ops: vec![
                aborted_insert(0, 1, 10, 0, 1),
                get(1, 1, None, 2, 3),
                get(1, 1, Some(10), 4, 5),
            ],
        };
        assert!(check(&history, &CheckConfig::default()).is_violation());
    }

    #[test]
    fn acked_write_lost_after_crash_is_flagged() {
        // The durability contract crashkv's lost-ack mutant violates: an
        // ACKED write (fenced, by contract) must survive recovery; a
        // strictly-later read seeing nothing is a durability violation.
        let history = History {
            ops: vec![
                insert(0, 1, 10, None, 0, 1),
                rec(0, OpKind::Insert { key: 2, value: 20 }, OpResult::Aborted, 2, 3),
                get(1, 1, None, 4, 5),
            ],
        };
        assert!(check(&history, &CheckConfig::default()).is_violation());
    }

    #[test]
    fn unacked_delete_admits_both_outcomes() {
        for observed in [Some(10), None] {
            let history = History {
                ops: vec![
                    insert(0, 1, 10, None, 0, 1),
                    rec(0, OpKind::Delete { key: 1 }, OpResult::Aborted, 2, 3),
                    get(1, 1, observed, 4, 5),
                ],
            };
            let outcome = check(&history, &CheckConfig::default());
            assert!(
                matches!(outcome, Outcome::Linearizable),
                "observed={observed:?}: {outcome:?}"
            );
        }
    }

    #[test]
    fn aborted_reads_constrain_nothing() {
        let history = History {
            ops: vec![
                rec(0, OpKind::Get { key: 1 }, OpResult::Aborted, 0, 1),
                rec(
                    0,
                    OpKind::Range { lo: 0, hi: 9 },
                    OpResult::Aborted,
                    2,
                    3,
                ),
                rec(
                    0,
                    OpKind::MGet { keys: vec![1, 2] },
                    OpResult::Aborted,
                    4,
                    5,
                ),
                get(1, 1, None, 6, 7),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }

    #[test]
    fn all_optional_component_is_trivially_linearizable() {
        let history = History {
            ops: vec![
                aborted_insert(0, 1, 10, 0, 5),
                aborted_insert(1, 1, 11, 1, 6),
                rec(2, OpKind::Delete { key: 1 }, OpResult::Aborted, 2, 7),
            ],
        };
        assert!(matches!(
            check(&history, &CheckConfig::default()),
            Outcome::Linearizable
        ));
    }
}
