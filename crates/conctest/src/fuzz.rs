//! The differential fuzzer: seeded workload mixes replayed against every
//! registry structure (and the kvserve service) two ways.
//!
//! * **Deterministic differential mode** ([`differential_fuzz`],
//!   [`differential_kvserve`]): a seeded schedule of operations from N
//!   *logical* threads — each owning its own session handle, all executed
//!   interleaved on one OS thread — is replayed against the structure and a
//!   locked `BTreeMap` oracle in lock-step, comparing every result.  Fully
//!   deterministic, so a failing schedule shrinks (ddmin-style, see
//!   [`crate::shrink`]) to a minimal reproducer: the seed plus the surviving
//!   operations.
//! * **Concurrent recorded mode** ([`fuzz_concurrent`]): real OS threads run
//!   seeded per-thread operation streams through [`Recorder`]s on a fresh
//!   structure, and the merged history goes to the
//!   [`checker`](crate::checker).  Violating histories shrink by the same
//!   ddmin loop, re-running only the (pure, deterministic) checker.
//!
//! Key streams support Zipfian skew ([`FuzzConfig::key_skew`]) and, for the
//! service runs, two-level tenant skew via
//! [`workload::TenantKeyDistribution`]; mixes are ordinary
//! [`workload::OperationMix`]s, so YCSB-E-style scan-heavy mixes are one
//! constructor call away.  Every insert in a run carries a **unique value**,
//! which sharpens both the oracle comparison and the checker's provenance
//! pre-pass.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use abtree::MapHandle;
use rand::prelude::*;
use setbench::registry::Benchable;
use workload::{KeyDistribution, Operation, OperationMix, TenantKeyDistribution};

use crate::checker::{check, CheckConfig, Outcome};
use crate::history::{Clock, History, Recorder, RouterRecorder};
use crate::shrink::shrink_schedule;

/// Fuzzing parameters.  Key spaces and windows are deliberately small: the
/// checker's search cost grows with per-key (and per-scan-component)
/// operation counts, and contention — the thing being tested — needs key
/// collisions.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; every derived stream mixes in thread and round ids.
    pub seed: u64,
    /// Logical (deterministic mode) or OS (concurrent mode) threads.
    pub threads: u32,
    /// Operations per thread (per round, in concurrent mode).
    pub ops_per_thread: u32,
    /// Keys are drawn from `[0, key_space)`.
    pub key_space: u64,
    /// Operation mix (shares of insert/delete/find/scan/mget/mput).
    pub mix: OperationMix,
    /// Scan window lengths are drawn from `[1, max_scan_len]`.
    pub max_scan_len: u64,
    /// Batch sizes are drawn from `[1, max_batch]`.
    pub max_batch: usize,
    /// Zipf exponent of the key distribution (0 = uniform).
    pub key_skew: f64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0C7E57,
            threads: 3,
            ops_per_thread: 250,
            key_space: 64,
            // YCSB-E-flavoured service mix: updates, scans and batches all
            // present, finds take the rest.
            mix: OperationMix::from_shares(40, 10, 5, 5),
            max_scan_len: 12,
            max_batch: 6,
            key_skew: 0.8,
        }
    }
}

/// One materialized operation of a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecOp {
    /// `insert(key, value)`.
    Insert(u64, u64),
    /// `delete(key)`.
    Delete(u64),
    /// `get(key)`.
    Get(u64),
    /// Scan of `[start, start + len - 1]`.
    Scan(u64, u64),
    /// Batched multi-get.
    MGet(Vec<u64>),
    /// Batched multi-put.
    MPut(Vec<(u64, u64)>),
}

/// A schedule entry: which logical thread runs which operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Logical thread (session handle index).
    pub thread: u32,
    /// The operation.
    pub op: SpecOp,
}

impl ScheduledOp {
    /// Renders as e.g. `t2 insert(5, 1001)`.
    pub fn render(&self) -> String {
        let op = match &self.op {
            SpecOp::Insert(k, v) => format!("insert({k}, {v})"),
            SpecOp::Delete(k) => format!("delete({k})"),
            SpecOp::Get(k) => format!("get({k})"),
            SpecOp::Scan(lo, len) => format!("scan({lo}, len {len})"),
            SpecOp::MGet(keys) => format!("mget({keys:?})"),
            SpecOp::MPut(pairs) => format!("mput({pairs:?})"),
        };
        format!("t{} {op}", self.thread)
    }
}

/// Key source for schedule generation: flat Zipf/uniform, or two-level
/// tenant skew with namespace-prefixed keys.
enum KeyGen {
    Flat(KeyDistribution),
    Tenant(TenantKeyDistribution),
}

impl KeyGen {
    fn sample(&self, rng: &mut StdRng) -> u64 {
        match self {
            KeyGen::Flat(dist) => dist.sample(rng),
            KeyGen::Tenant(dist) => {
                let (tenant, key) = dist.sample(rng);
                kvserve::Namespace::new(tenant).prefixed(key)
            }
        }
    }
}

fn sample_op(rng: &mut StdRng, cfg: &FuzzConfig, keys: &KeyGen, next_value: &mut u64) -> SpecOp {
    let mut value = || {
        *next_value += 1;
        *next_value
    };
    match cfg.mix.sample(rng) {
        Operation::Insert => SpecOp::Insert(keys.sample(rng), value()),
        Operation::Delete => SpecOp::Delete(keys.sample(rng)),
        Operation::Find => SpecOp::Get(keys.sample(rng)),
        Operation::Scan => SpecOp::Scan(keys.sample(rng), rng.gen_range(1..=cfg.max_scan_len)),
        Operation::MGet => {
            let n = rng.gen_range(1..=cfg.max_batch);
            SpecOp::MGet((0..n).map(|_| keys.sample(rng)).collect())
        }
        Operation::MPut => {
            let n = rng.gen_range(1..=cfg.max_batch);
            SpecOp::MPut((0..n).map(|_| (keys.sample(rng), value())).collect())
        }
    }
}

/// Generates the deterministic-mode schedule: a seeded random interleaving
/// of per-thread operation streams (uniformly random thread per step, so
/// context switches land at every possible boundary over enough seeds).
pub fn generate_schedule(cfg: &FuzzConfig, tenants: Option<(u16, f64)>) -> Vec<ScheduledOp> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let keys = match tenants {
        None => KeyGen::Flat(KeyDistribution::from_zipf_parameter(
            cfg.key_space,
            cfg.key_skew,
        )),
        Some((count, skew)) => KeyGen::Tenant(TenantKeyDistribution::new(
            count,
            skew,
            cfg.key_space,
            cfg.key_skew,
        )),
    };
    let mut next_value = 0u64;
    let total = cfg.threads * cfg.ops_per_thread;
    (0..total)
        .map(|_| ScheduledOp {
            thread: rng.gen_range(0..cfg.threads),
            op: sample_op(&mut rng, cfg, &keys, &mut next_value),
        })
        .collect()
}

/// A deterministic-mode divergence between structure and oracle.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Index into the schedule.
    pub step: usize,
    /// The diverging operation.
    pub op: ScheduledOp,
    /// What the structure returned.
    pub got: String,
    /// What the oracle expected.
    pub want: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: `{}` returned {} but the oracle expected {}",
            self.step,
            self.op.render(),
            self.got,
            self.want
        )
    }
}

/// Session abstraction shared by the two deterministic replay targets: a
/// set of per-logical-thread structure handles, or a set of service
/// routers.
trait ReplayTarget {
    fn insert(&mut self, thread: u32, key: u64, value: u64) -> Option<u64>;
    fn delete(&mut self, thread: u32, key: u64) -> Option<u64>;
    fn get(&mut self, thread: u32, key: u64) -> Option<u64>;
    fn scan(&mut self, thread: u32, lo: u64, len: u64) -> Vec<(u64, u64)>;
    fn mget(&mut self, thread: u32, keys: &[u64]) -> Vec<Option<u64>>;
    fn mput(&mut self, thread: u32, pairs: &[(u64, u64)]) -> Vec<Option<u64>>;
}

struct HandleTarget<'m> {
    handles: Vec<Box<dyn MapHandle + 'm>>,
}

impl ReplayTarget for HandleTarget<'_> {
    fn insert(&mut self, thread: u32, key: u64, value: u64) -> Option<u64> {
        self.handles[thread as usize].insert(key, value)
    }
    fn delete(&mut self, thread: u32, key: u64) -> Option<u64> {
        self.handles[thread as usize].delete(key)
    }
    fn get(&mut self, thread: u32, key: u64) -> Option<u64> {
        self.handles[thread as usize].get(key)
    }
    fn scan(&mut self, thread: u32, lo: u64, len: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        if let Some((lo, hi)) = abtree::scan_window(lo, len) {
            self.handles[thread as usize].range(lo, hi, &mut out);
        }
        out
    }
    fn mget(&mut self, thread: u32, keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        self.handles[thread as usize].get_batch(keys, &mut out);
        out
    }
    fn mput(&mut self, thread: u32, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        self.handles[thread as usize].insert_batch(pairs, &mut out);
        out
    }
}

struct RouterTarget<'s> {
    routers: Vec<kvserve::ShardRouter<'s>>,
}

impl ReplayTarget for RouterTarget<'_> {
    fn insert(&mut self, thread: u32, key: u64, value: u64) -> Option<u64> {
        self.routers[thread as usize].put(key, value)
    }
    fn delete(&mut self, thread: u32, key: u64) -> Option<u64> {
        self.routers[thread as usize].delete(key)
    }
    fn get(&mut self, thread: u32, key: u64) -> Option<u64> {
        self.routers[thread as usize].get(key)
    }
    fn scan(&mut self, thread: u32, lo: u64, len: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        self.routers[thread as usize].scan(lo, len, &mut out);
        out
    }
    fn mget(&mut self, thread: u32, keys: &[u64]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        self.routers[thread as usize].mget(keys, &mut out);
        out
    }
    fn mput(&mut self, thread: u32, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        let mut out = Vec::new();
        self.routers[thread as usize].mput(pairs, &mut out);
        out
    }
}

/// Replays `schedule` against `target` and a locked `BTreeMap` oracle in
/// lock-step (the oracle mutex is taken around each compared operation, the
/// discipline that would make the oracle usable from concurrent replayers
/// too).  Returns the first divergence.
fn replay(target: &mut dyn ReplayTarget, schedule: &[ScheduledOp]) -> Result<(), Mismatch> {
    let oracle: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
    for (step, entry) in schedule.iter().enumerate() {
        let mut oracle = oracle.lock().expect("oracle poisoned");
        let (got, want): (String, String) = match &entry.op {
            &SpecOp::Insert(key, value) => {
                let want = oracle.get(&key).copied();
                if want.is_none() {
                    oracle.insert(key, value);
                }
                let got = target.insert(entry.thread, key, value);
                (format!("{got:?}"), format!("{want:?}"))
            }
            &SpecOp::Delete(key) => {
                let want = oracle.remove(&key);
                let got = target.delete(entry.thread, key);
                (format!("{got:?}"), format!("{want:?}"))
            }
            &SpecOp::Get(key) => {
                let want = oracle.get(&key).copied();
                let got = target.get(entry.thread, key);
                (format!("{got:?}"), format!("{want:?}"))
            }
            &SpecOp::Scan(lo, len) => {
                let got = target.scan(entry.thread, lo, len);
                let want: Vec<(u64, u64)> = match abtree::scan_window(lo, len) {
                    None => Vec::new(),
                    Some((lo, hi)) => oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect(),
                };
                (format!("{got:?}"), format!("{want:?}"))
            }
            SpecOp::MGet(keys) => {
                let got = target.mget(entry.thread, keys);
                let want: Vec<Option<u64>> =
                    keys.iter().map(|k| oracle.get(k).copied()).collect();
                (format!("{got:?}"), format!("{want:?}"))
            }
            SpecOp::MPut(pairs) => {
                let want: Vec<Option<u64>> = pairs
                    .iter()
                    .map(|&(k, v)| {
                        let prior = oracle.get(&k).copied();
                        if prior.is_none() {
                            oracle.insert(k, v);
                        }
                        prior
                    })
                    .collect();
                let got = target.mput(entry.thread, pairs);
                (format!("{got:?}"), format!("{want:?}"))
            }
        };
        if got != want {
            return Err(Mismatch {
                step,
                op: entry.clone(),
                got,
                want,
            });
        }
    }
    Ok(())
}

/// Replays a schedule against a fresh structure from `factory` (handles for
/// `threads` logical threads) and the oracle.  Exposed for the shrinker,
/// which re-runs candidate sub-schedules.
pub fn replay_structure(
    factory: &dyn Fn() -> Box<dyn Benchable>,
    threads: u32,
    schedule: &[ScheduledOp],
) -> Result<(), Mismatch> {
    let map = factory();
    let mut target = HandleTarget {
        handles: (0..threads).map(|_| map.handle()).collect(),
    };
    replay(&mut target, schedule)
}

/// Replays a schedule against a fresh kvserve service from `factory`
/// (routers for `threads` logical threads) and the oracle.
pub fn replay_service(
    factory: &dyn Fn() -> kvserve::KvService,
    threads: u32,
    schedule: &[ScheduledOp],
) -> Result<(), Mismatch> {
    let service = factory();
    let mut target = RouterTarget {
        routers: (0..threads).map(|_| service.router()).collect(),
    };
    replay(&mut target, schedule)
}

/// A shrunk deterministic-mode failure: the reproducer is the seed plus the
/// minimal schedule.
#[derive(Debug)]
pub struct DiffFailure {
    /// Seed the original schedule was generated from.
    pub seed: u64,
    /// The first divergence observed on the minimal schedule.
    pub mismatch: Mismatch,
    /// Minimal failing schedule (every remaining op is necessary).
    pub minimal: Vec<ScheduledOp>,
}

impl DiffFailure {
    /// Full reproducer text: seed, divergence, and the minimal schedule.
    pub fn render(&self) -> String {
        let mut out = format!(
            "differential failure (seed {:#x}): {}\nminimal schedule ({} ops):\n",
            self.seed,
            self.mismatch,
            self.minimal.len()
        );
        for op in &self.minimal {
            out.push_str("  ");
            out.push_str(&op.render());
            out.push('\n');
        }
        out
    }
}

/// The one copy of the differential run-or-shrink step: replay the full
/// schedule; on divergence, shrink it and package the reproducer.
fn differential_outcome(
    seed: u64,
    schedule: &[ScheduledOp],
    run: &dyn Fn(&[ScheduledOp]) -> Result<(), Mismatch>,
) -> Result<usize, Box<DiffFailure>> {
    match run(schedule) {
        Ok(()) => Ok(schedule.len()),
        Err(_) => {
            let minimal = shrink_schedule(schedule, run);
            let mismatch = run(&minimal).expect_err("shrunk schedule must still fail");
            Err(Box::new(DiffFailure {
                seed,
                mismatch,
                minimal,
            }))
        }
    }
}

/// Deterministic differential fuzz of one structure: generate a schedule,
/// replay against structure + oracle, and shrink any divergence to a
/// minimal reproducer.
pub fn differential_fuzz(
    factory: &dyn Fn() -> Box<dyn Benchable>,
    cfg: &FuzzConfig,
) -> Result<usize, Box<DiffFailure>> {
    let schedule = generate_schedule(cfg, None);
    differential_outcome(cfg.seed, &schedule, &|s| {
        replay_structure(factory, cfg.threads, s)
    })
}

/// Deterministic differential fuzz of a kvserve service (tenant-skewed
/// keys, batched ops routed across `shards` shards of registry structure
/// `structure`).
pub fn differential_kvserve(
    structure: &'static str,
    shards: usize,
    tenants: (u16, f64),
    cfg: &FuzzConfig,
) -> Result<usize, Box<DiffFailure>> {
    let factory = move || {
        kvserve::KvService::new(shards, tenants.0 as usize, |_| {
            Box::new(setbench::registry::make_structure(structure))
        })
    };
    let schedule = generate_schedule(cfg, Some(tenants));
    differential_outcome(cfg.seed, &schedule, &|s| {
        replay_service(&factory, cfg.threads, s)
    })
}

/// A per-thread recorded session in concurrent mode: how one materialized
/// op executes and how the event log is recovered afterwards.  Bridges the
/// two recorders (structure handles vs service routers) so the threaded
/// round loop — scoped spawn, per-thread seeding, value uniquing, op
/// dispatch — exists exactly once, in [`record_round`].
trait RecordSession {
    fn apply(&mut self, op: &SpecOp);
    fn finish(self) -> Vec<crate::history::OpRecord>;
}

/// Structure-session recording: a [`Recorder`] over a boxed [`MapHandle`]
/// plus reusable scratch buffers.
struct MapSession<'m> {
    rec: Recorder<Box<dyn MapHandle + 'm>>,
    entries: Vec<(u64, u64)>,
    values: Vec<Option<u64>>,
}

impl RecordSession for MapSession<'_> {
    fn apply(&mut self, op: &SpecOp) {
        match op {
            &SpecOp::Insert(k, v) => {
                self.rec.insert(k, v);
            }
            &SpecOp::Delete(k) => {
                self.rec.delete(k);
            }
            &SpecOp::Get(k) => {
                self.rec.get(k);
            }
            &SpecOp::Scan(lo, len) => {
                if let Some((lo, hi)) = abtree::scan_window(lo, len) {
                    self.rec.range(lo, hi, &mut self.entries);
                }
            }
            SpecOp::MGet(keys) => self.rec.get_batch(keys, &mut self.values),
            SpecOp::MPut(pairs) => self.rec.insert_batch(pairs, &mut self.values),
        }
    }

    fn finish(self) -> Vec<crate::history::OpRecord> {
        self.rec.finish()
    }
}

/// Service-session recording: a [`RouterRecorder`] over a [`ShardRouter`].
struct RouterSession<'s> {
    rec: RouterRecorder<'s>,
}

impl RecordSession for RouterSession<'_> {
    fn apply(&mut self, op: &SpecOp) {
        match op {
            &SpecOp::Insert(k, v) => {
                self.rec.put(k, v);
            }
            &SpecOp::Delete(k) => {
                self.rec.delete(k);
            }
            &SpecOp::Get(k) => {
                self.rec.get(k);
            }
            &SpecOp::Scan(lo, len) => {
                self.rec.scan(lo, len);
            }
            SpecOp::MGet(keys) => {
                self.rec.mget(keys);
            }
            SpecOp::MPut(pairs) => {
                self.rec.mput(pairs);
            }
        }
    }

    fn finish(self) -> Vec<crate::history::OpRecord> {
        self.rec.finish()
    }
}

/// The one copy of the concurrent recording loop: `cfg.threads` OS threads,
/// each opening a session through `open`, running `cfg.ops_per_thread`
/// seeded operations (keys from the shared `keys` source, unique values
/// with thread-tagged high bits), and the merged [`History`] returned.
fn record_round<S: RecordSession>(
    open: &(dyn Fn(u32, Arc<Clock>) -> S + Sync),
    keys: &KeyGen,
    cfg: &FuzzConfig,
    round: u64,
) -> History {
    let clock = Clock::new();
    let parts: Vec<Vec<crate::history::OpRecord>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cfg.threads)
            .map(|t| {
                let clock = Arc::clone(&clock);
                scope.spawn(move || {
                    let mut session = open(t, clock);
                    let mut rng =
                        StdRng::seed_from_u64(cfg.seed ^ round.rotate_left(17) ^ (t as u64) << 32);
                    let mut next_value = (t as u64 + 1) << 40;
                    for _ in 0..cfg.ops_per_thread {
                        let op = sample_op(&mut rng, cfg, keys, &mut next_value);
                        session.apply(&op);
                    }
                    session.finish()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("fuzz worker panicked"))
            .collect()
    });
    History::merge(parts)
}

/// Records one concurrent round: `cfg.threads` OS threads each run
/// `cfg.ops_per_thread` seeded operations through a [`Recorder`] over a
/// session on `map`, and the merged [`History`] is returned.  `map` must be
/// fresh (the checker assumes the initial state is empty).
pub fn record_concurrent(map: &dyn Benchable, cfg: &FuzzConfig, round: u64) -> History {
    let keys = KeyGen::Flat(KeyDistribution::from_zipf_parameter(
        cfg.key_space,
        cfg.key_skew,
    ));
    record_round(
        &|t, clock| MapSession {
            rec: Recorder::new(map.handle(), t, clock),
            entries: Vec::new(),
            values: Vec::new(),
        },
        &keys,
        cfg,
        round,
    )
}

/// A concurrent-mode failure: the round that produced it and the shrunk
/// history.
#[derive(Debug)]
pub struct ConcFailure {
    /// Round index (mixes into the per-thread seeds).
    pub round: u64,
    /// The checker's report on the shrunk history.
    pub report: crate::checker::ViolationReport,
    /// Minimal failing history (every remaining event is necessary).
    pub minimal: History,
}

impl ConcFailure {
    /// Full reproducer text: seed/round, violation, and the minimal
    /// history.
    pub fn render(&self, cfg: &FuzzConfig) -> String {
        format!(
            "concurrent violation (seed {:#x}, round {}, {} threads): {}\n\
             minimal failing history ({} events):\n{}",
            cfg.seed,
            self.round,
            cfg.threads,
            self.report,
            self.minimal.ops.len(),
            self.minimal.render()
        )
    }
}

/// Summary of a clean concurrent fuzz.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcReport {
    /// Rounds checked.
    pub rounds: u32,
    /// Total events across all histories.
    pub events: usize,
    /// Rounds whose search hit the budget (inconclusive, counted as
    /// passes).
    pub bounded_rounds: u32,
}

/// The shared round/check/shrink loop behind both concurrent fuzz entry
/// points: records one history per round with `record_round` (fresh state
/// each time), checks it, and on a violation shrinks and fails.  Bounded
/// (budget-exhausted) rounds count as passes but are reported.
fn fuzz_rounds(
    record_round: &dyn Fn(u64) -> History,
    check_cfg: &CheckConfig,
    rounds: u32,
) -> Result<ConcReport, Box<ConcFailure>> {
    let mut report = ConcReport::default();
    for round in 0..rounds as u64 {
        let history = record_round(round);
        report.rounds += 1;
        report.events += history.ops.len();
        match check(&history, check_cfg) {
            Outcome::Linearizable => {}
            Outcome::Bounded { .. } => report.bounded_rounds += 1,
            Outcome::Violation(report) => {
                // Shrink from the report already in hand: re-checking the
                // full violating history repeats its worst-case exhausted
                // search.
                let minimal = crate::shrink::shrink_history_from(&history, &report, check_cfg);
                let Outcome::Violation(violation) = check(&minimal, check_cfg) else {
                    unreachable!("shrunk history must still violate")
                };
                return Err(Box::new(ConcFailure {
                    round,
                    report: violation,
                    minimal,
                }));
            }
        }
    }
    Ok(report)
}

/// Runs `rounds` concurrent recorded rounds, each on a fresh structure from
/// `factory`, checking every history.  On a violation the history is shrunk
/// and returned as a [`ConcFailure`].
pub fn fuzz_concurrent(
    factory: &dyn Fn() -> Box<dyn Benchable>,
    cfg: &FuzzConfig,
    check_cfg: &CheckConfig,
    rounds: u32,
) -> Result<ConcReport, Box<ConcFailure>> {
    fuzz_rounds(
        &|round| {
            let map = factory();
            record_concurrent(&*map, cfg, round)
        },
        check_cfg,
        rounds,
    )
}

/// Records one concurrent kvserve round: OS-thread routers under
/// [`RouterRecorder`]s over a fresh service, tenant-skewed traffic.
fn record_kvserve_round(
    structure: &'static str,
    shards: usize,
    tenants: (u16, f64),
    cfg: &FuzzConfig,
    round: u64,
) -> History {
    let service = kvserve::KvService::new(shards, tenants.0 as usize, |_| {
        Box::new(setbench::registry::make_structure(structure))
    });
    let keys = KeyGen::Tenant(TenantKeyDistribution::new(
        tenants.0,
        tenants.1,
        cfg.key_space,
        cfg.key_skew,
    ));
    record_round(
        &|t, clock| RouterSession {
            rec: RouterRecorder::new(service.router(), t, clock),
        },
        &keys,
        cfg,
        round,
    )
}

/// Concurrent recorded fuzz of a kvserve service: OS-thread routers with
/// tenant-skewed traffic, checked with per-key semantics (the service
/// promises no cross-shard atomicity).
pub fn fuzz_kvserve_concurrent(
    structure: &'static str,
    shards: usize,
    tenants: (u16, f64),
    cfg: &FuzzConfig,
    check_cfg: &CheckConfig,
    rounds: u32,
) -> Result<ConcReport, Box<ConcFailure>> {
    assert!(
        !check_cfg.snapshot_scans,
        "kvserve scans are scatter-gather, never atomic snapshots"
    );
    fuzz_rounds(
        &|round| record_kvserve_round(structure, shards, tenants, cfg, round),
        check_cfg,
        rounds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_values_unique() {
        let cfg = FuzzConfig::default();
        let a = generate_schedule(&cfg, None);
        let b = generate_schedule(&cfg, None);
        assert_eq!(a, b, "same seed, same schedule");
        let c = generate_schedule(
            &FuzzConfig {
                seed: cfg.seed + 1,
                ..cfg.clone()
            },
            None,
        );
        assert_ne!(a, c, "different seed, different schedule");
        let mut values = std::collections::HashSet::new();
        for entry in &a {
            match &entry.op {
                SpecOp::Insert(_, v) => assert!(values.insert(*v), "duplicate value {v}"),
                SpecOp::MPut(pairs) => {
                    for (_, v) in pairs {
                        assert!(values.insert(*v), "duplicate value {v}");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn differential_fuzz_passes_on_a_correct_structure() {
        let descriptor = setbench::registry::descriptor("elim-abtree").unwrap();
        let cfg = FuzzConfig {
            ops_per_thread: 150,
            ..FuzzConfig::default()
        };
        let build = || (descriptor.factory)(Default::default());
        let ops = differential_fuzz(&build, &cfg).expect("elim-abtree is correct");
        assert_eq!(ops, 450);
    }

    #[test]
    fn concurrent_fuzz_passes_on_a_correct_structure() {
        let descriptor = setbench::registry::descriptor("occ-abtree").unwrap();
        let cfg = FuzzConfig {
            threads: 2,
            ops_per_thread: 120,
            ..FuzzConfig::default()
        };
        let build = || (descriptor.factory)(Default::default());
        let report = fuzz_concurrent(&build, &cfg, &CheckConfig::with_snapshot_scans(), 2)
        .expect("occ-abtree is linearizable");
        assert_eq!(report.rounds, 2);
        assert!(report.events > 0);
    }

    #[test]
    fn kvserve_differential_passes() {
        let cfg = FuzzConfig {
            ops_per_thread: 120,
            key_space: 40,
            ..FuzzConfig::default()
        };
        differential_kvserve("elim-abtree", 3, (4, 1.0), &cfg).expect("service is correct");
    }
}
