//! Reproducer shrinking: ddmin-style minimization of failing schedules and
//! histories.
//!
//! # Schedules
//!
//! Deterministic-mode schedules shrink with plain delta debugging
//! ([`shrink_schedule`]): try deleting chunks, keep a deletion when the
//! replay — re-executed for real against a fresh structure — still
//! diverges from the oracle, halve the chunk size when a sweep removes
//! nothing.  Sound by construction, because every candidate is re-run.
//!
//! # Histories
//!
//! Recorded histories cannot be re-run, and deleting arbitrary events from
//! a history is **unsound**: removing a successful `insert(k, v)` whose
//! value some read observed leaves that read impossible, so a perfectly
//! linearizable history can "shrink" into a violating one — a fake
//! reproducer.  [`shrink_history`] therefore only applies reduction moves
//! that provably preserve genuineness (if the shrunk history is violating,
//! so was the original):
//!
//! * **key projection** — restrict to the violating component's keys
//!   (filtering those keys out of scan results too); components are
//!   checked independently, so the component's violation survives intact;
//! * **pure-read removal** — dropping an operation that changed no state
//!   (get, scan, refused insert, missed delete, all-refused multi-put)
//!   only removes constraints: a witness for the original restricts to a
//!   witness for the candidate, so a violating candidate implies a
//!   violating original;
//! * **write-episode removal** — a successful `insert(k, v)` together with
//!   the delete that removed exactly `v`, removable only when no surviving
//!   operation observes `v`: in any witness the pair brackets a span where
//!   nothing else touched `k`, so cutting both leaves the witness valid.
//!
//! The moves iterate to a fixpoint.  The result is not guaranteed
//! 1-minimal in the ddmin sense, but it is small, and every event it keeps
//! is genuine evidence.

use std::collections::BTreeSet;

use crate::checker::{check, CheckConfig, Outcome};
use crate::fuzz::{Mismatch, ScheduledOp};
use crate::history::{History, OpKind, OpRecord, OpResult};

/// Generic ddmin over a vector: keeps deleting chunks while `fails` holds.
fn ddmin<T: Clone>(items: &[T], fails: &dyn Fn(&[T]) -> bool) -> Vec<T> {
    debug_assert!(fails(items), "ddmin needs a failing input");
    let mut current = items.to_vec();
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                removed_any = true;
                // Re-test from the same offset: the chunk now holds new
                // elements.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !removed_any {
            return current;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

/// Minimizes a failing schedule.  `run` replays a candidate schedule from a
/// fresh structure/service and reports the first divergence.
pub fn shrink_schedule(
    schedule: &[ScheduledOp],
    run: &dyn Fn(&[ScheduledOp]) -> Result<(), Mismatch>,
) -> Vec<ScheduledOp> {
    ddmin(schedule, &|candidate| run(candidate).is_err())
}

/// Whether an operation changed no state (see the module docs: pure reads
/// are removable without risking a fake violation).
fn is_pure_read(op: &OpRecord) -> bool {
    match (&op.kind, &op.result) {
        (OpKind::Get { .. }, _) | (OpKind::Range { .. }, _) | (OpKind::MGet { .. }, _) => true,
        (OpKind::Insert { .. }, OpResult::Value(prior)) => prior.is_some(),
        (OpKind::Delete { .. }, OpResult::Value(removed)) => removed.is_none(),
        (OpKind::MPut { .. }, OpResult::Values(results)) => {
            results.iter().all(|prior| prior.is_some())
        }
        _ => false,
    }
}

/// Projects a history onto `keys`: ops on other keys are dropped, batch
/// slots and scan entries on other keys are filtered out.
fn project(history: &History, keys: &BTreeSet<u64>) -> History {
    let ops = history
        .ops
        .iter()
        .filter_map(|op| {
            let mut op = op.clone();
            match (&mut op.kind, &mut op.result) {
                (
                    OpKind::Insert { key, .. } | OpKind::Delete { key } | OpKind::Get { key },
                    _,
                ) if !keys.contains(key) => return None,
                (OpKind::Range { .. }, OpResult::Entries(entries)) => {
                    entries.retain(|(k, _)| keys.contains(k));
                }
                (OpKind::MGet { keys: batch }, OpResult::Values(values)) => {
                    let kept: Vec<(u64, Option<u64>)> = batch
                        .iter()
                        .zip(values.iter())
                        .filter(|(k, _)| keys.contains(k))
                        .map(|(&k, &v)| (k, v))
                        .collect();
                    if kept.is_empty() {
                        return None;
                    }
                    *batch = kept.iter().map(|&(k, _)| k).collect();
                    *values = kept.iter().map(|&(_, v)| v).collect();
                }
                (OpKind::MPut { pairs }, OpResult::Values(values)) => {
                    let kept: Vec<((u64, u64), Option<u64>)> = pairs
                        .iter()
                        .zip(values.iter())
                        .filter(|((k, _), _)| keys.contains(k))
                        .map(|(&pair, &prior)| (pair, prior))
                        .collect();
                    if kept.is_empty() {
                        return None;
                    }
                    *pairs = kept.iter().map(|&(pair, _)| pair).collect();
                    *values = kept.iter().map(|&(_, prior)| prior).collect();
                }
                _ => {}
            }
            Some(op)
        })
        .collect();
    History { ops }
}

/// Whether any op in `ops` (other than the indices in `except`) observes
/// value `value` at `key`.
fn value_observed(ops: &[OpRecord], key: u64, value: u64, except: &[usize]) -> bool {
    ops.iter().enumerate().any(|(i, op)| {
        if except.contains(&i) {
            return false;
        }
        match (&op.kind, &op.result) {
            (&OpKind::Get { key: k }, &OpResult::Value(v)) => k == key && v == Some(value),
            (&OpKind::Insert { key: k, .. }, &OpResult::Value(prior)) => {
                k == key && prior == Some(value)
            }
            (&OpKind::Delete { key: k }, &OpResult::Value(removed)) => {
                k == key && removed == Some(value)
            }
            (OpKind::Range { .. }, OpResult::Entries(entries)) => {
                entries.contains(&(key, value))
            }
            (OpKind::MGet { keys }, OpResult::Values(values)) => keys
                .iter()
                .zip(values)
                .any(|(&k, &v)| k == key && v == Some(value)),
            (OpKind::MPut { pairs }, OpResult::Values(results)) => pairs
                .iter()
                .zip(results)
                .any(|(&(k, _), &prior)| k == key && prior == Some(value)),
            _ => false,
        }
    })
}

/// Finds one removable write episode: a successful single-key insert of
/// `(k, v)` plus the delete that removed exactly `v` (if any), such that no
/// other op observes `v`.  Returns the op indices to drop.
fn find_removable_episode(ops: &[OpRecord], skip: &BTreeSet<usize>) -> Option<Vec<usize>> {
    for (i, op) in ops.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let (&OpKind::Insert { key, value }, &OpResult::Value(None)) = (&op.kind, &op.result)
        else {
            continue;
        };
        let deletes: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, other)| {
                matches!(
                    (&other.kind, &other.result),
                    (&OpKind::Delete { key: k }, &OpResult::Value(Some(v)))
                        if k == key && v == value
                )
            })
            .map(|(j, _)| j)
            .collect();
        if deletes.len() > 1 {
            continue; // ambiguous pairing (duplicate values); be conservative
        }
        let mut episode = vec![i];
        episode.extend(&deletes);
        if !value_observed(ops, key, value, &episode) {
            return Some(episode);
        }
    }
    None
}

/// Minimizes a violating history using only genuineness-preserving moves
/// (see the module docs).  The returned history still fails `check`.
///
/// Re-checks `history` to find the violating component; callers that just
/// ran the checker (whose failure path is the worst case — a violating
/// component exhausts its search) should pass their report to
/// [`shrink_history_from`] instead of paying for that check twice.
pub fn shrink_history(history: &History, config: &CheckConfig) -> History {
    let Outcome::Violation(report) = check(history, config) else {
        panic!("shrink_history needs a violating input");
    };
    shrink_history_from(history, &report, config)
}

/// [`shrink_history`] with the original history's already-computed
/// violation report.
pub fn shrink_history_from(
    history: &History,
    report: &crate::checker::ViolationReport,
    config: &CheckConfig,
) -> History {
    let violating = |h: &History| matches!(check(h, config), Outcome::Violation(_));

    // Move 1: project onto the violating component's keys.
    let mut current = if report.component_keys.is_empty() {
        history.clone()
    } else {
        let keys: BTreeSet<u64> = report.component_keys.iter().copied().collect();
        let projected = project(history, &keys);
        if violating(&projected) {
            projected
        } else {
            history.clone()
        }
    };

    loop {
        let before = current.ops.len();

        // Move 2: ddmin over the pure reads (writes stay put).
        let reads: Vec<usize> = (0..current.ops.len())
            .filter(|&i| is_pure_read(&current.ops[i]))
            .collect();
        if !reads.is_empty() {
            let with_reads = |kept: &[usize]| -> History {
                let kept: BTreeSet<usize> = kept.iter().copied().collect();
                History {
                    ops: current
                        .ops
                        .iter()
                        .enumerate()
                        .filter(|(i, op)| !is_pure_read(op) || kept.contains(i))
                        .map(|(_, op)| op.clone())
                        .collect(),
                }
            };
            if violating(&with_reads(&[])) {
                current = with_reads(&[]);
            } else {
                let minimal_reads = ddmin(&reads, &|kept| violating(&with_reads(kept)));
                current = with_reads(&minimal_reads);
            }
        }

        // Move 3: remove write episodes while the violation survives.
        let mut skip: BTreeSet<usize> = BTreeSet::new();
        while let Some(episode) = find_removable_episode(&current.ops, &skip) {
            let candidate = History {
                ops: current
                    .ops
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !episode.contains(i))
                    .map(|(_, op)| op.clone())
                    .collect(),
            };
            if violating(&candidate) {
                current = candidate;
                skip.clear();
            } else {
                // Keep this episode; remember it so the search advances.
                skip.insert(episode[0]);
            }
        }

        if current.ops.len() == before {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::SpecOp;

    #[test]
    fn ddmin_reaches_a_1_minimal_subset() {
        // Failure predicate: contains both 3 and 7.
        let items: Vec<u32> = (0..50).collect();
        let fails = |s: &[u32]| s.contains(&3) && s.contains(&7);
        let minimal = ddmin(&items, &fails);
        assert_eq!(minimal, vec![3, 7]);
    }

    #[test]
    fn shrink_schedule_drops_irrelevant_ops() {
        // A synthetic replay that fails iff the schedule inserts key 5 and
        // later deletes key 5.
        let mut schedule: Vec<ScheduledOp> = (0..20)
            .map(|i| ScheduledOp {
                thread: 0,
                op: SpecOp::Get(i),
            })
            .collect();
        schedule.insert(
            4,
            ScheduledOp {
                thread: 0,
                op: SpecOp::Insert(5, 1),
            },
        );
        schedule.push(ScheduledOp {
            thread: 1,
            op: SpecOp::Delete(5),
        });
        let run = |s: &[ScheduledOp]| -> Result<(), Mismatch> {
            let inserted = s
                .iter()
                .position(|e| matches!(e.op, SpecOp::Insert(5, _)));
            let deleted = s.iter().position(|e| matches!(e.op, SpecOp::Delete(5)));
            match (inserted, deleted) {
                (Some(i), Some(d)) if i < d => Err(Mismatch {
                    step: d,
                    op: s[d].clone(),
                    got: "Some(1)".into(),
                    want: "None".into(),
                }),
                _ => Ok(()),
            }
        };
        let minimal = shrink_schedule(&schedule, &run);
        assert_eq!(minimal.len(), 2, "{minimal:?}");
        assert!(matches!(minimal[0].op, SpecOp::Insert(5, _)));
        assert!(matches!(minimal[1].op, SpecOp::Delete(5)));
    }

    fn record(
        thread: u32,
        kind: OpKind,
        result: OpResult,
        invoke: u64,
        response: u64,
    ) -> OpRecord {
        OpRecord {
            thread,
            kind,
            result,
            invoke,
            response,
        }
    }

    #[test]
    fn shrink_history_keeps_the_contradiction_and_its_justification() {
        // Noise writes on other keys around a genuine violation: a get that
        // observes value 42 strictly before the insert of 42 was invoked.
        let mut ops = Vec::new();
        for i in 0..10u64 {
            ops.push(record(
                0,
                OpKind::Insert {
                    key: 100 + i,
                    value: i,
                },
                OpResult::Value(None),
                i * 4,
                i * 4 + 1,
            ));
        }
        ops.push(record(
            1,
            OpKind::Get { key: 5 },
            OpResult::Value(Some(42)),
            50,
            51,
        ));
        ops.push(record(
            0,
            OpKind::Insert { key: 5, value: 42 },
            OpResult::Value(None),
            52,
            53,
        ));
        let history = History::merge(vec![ops]);
        let config = CheckConfig::default();
        assert!(check(&history, &config).is_violation());
        let minimal = shrink_history(&history, &config);
        // The insert of 42 must survive: without it the early get would be
        // a *different* (fake) violation — a phantom value.  Sound moves
        // keep both sides of the contradiction.
        assert_eq!(minimal.ops.len(), 2, "{}", minimal.render());
        assert!(matches!(minimal.ops[0].kind, OpKind::Get { key: 5 }));
        assert!(matches!(
            minimal.ops[1].kind,
            OpKind::Insert { key: 5, value: 42 }
        ));
        assert!(check(&minimal, &config).is_violation());
    }

    #[test]
    fn shrink_history_never_strips_an_observed_write() {
        // A violating history where a read observes a value whose write and
        // delete bracket it; the episode must not be removed even though a
        // naive ddmin would try.
        let ops = vec![
            record(
                0,
                OpKind::Insert { key: 1, value: 7 },
                OpResult::Value(None),
                0,
                1,
            ),
            record(
                0,
                OpKind::Delete { key: 1 },
                OpResult::Value(Some(7)),
                2,
                3,
            ),
            // Violation: observes 7 *after* the delete completed.
            record(1, OpKind::Get { key: 1 }, OpResult::Value(Some(7)), 4, 5),
        ];
        let history = History::merge(vec![ops]);
        let config = CheckConfig::default();
        assert!(check(&history, &config).is_violation());
        let minimal = shrink_history(&history, &config);
        assert_eq!(minimal.ops.len(), 3, "{}", minimal.render());
        assert!(check(&minimal, &config).is_violation());
    }

    #[test]
    fn projection_filters_batches_and_scans() {
        let keys: BTreeSet<u64> = [1, 2].into_iter().collect();
        let history = History {
            ops: vec![
                record(
                    0,
                    OpKind::MGet {
                        keys: vec![1, 9, 2],
                    },
                    OpResult::Values(vec![Some(10), None, None]),
                    0,
                    1,
                ),
                record(
                    0,
                    OpKind::Range { lo: 0, hi: 20 },
                    OpResult::Entries(vec![(1, 10), (9, 90)]),
                    2,
                    3,
                ),
                record(0, OpKind::Get { key: 9 }, OpResult::Value(Some(90)), 4, 5),
            ],
        };
        let projected = project(&history, &keys);
        assert_eq!(projected.ops.len(), 2, "the key-9 get is dropped");
        assert_eq!(
            projected.ops[0].kind,
            OpKind::MGet { keys: vec![1, 2] }
        );
        assert_eq!(
            projected.ops[0].result,
            OpResult::Values(vec![Some(10), None])
        );
        assert_eq!(
            projected.ops[1].result,
            OpResult::Entries(vec![(1, 10)]),
            "scan entries are filtered to the kept keys"
        );
    }
}
