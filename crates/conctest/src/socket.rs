//! Recording kvserve traffic **through a real socket**: a
//! [`ClientRecorder`] wraps a [`netserve::Client`] the way
//! [`RouterRecorder`](crate::history::RouterRecorder) wraps an in-process
//! [`kvserve::ShardRouter`], producing the same [`OpRecord`] stream for the
//! linearizability checker.  The recorded window covers the full wire path
//! — encode, TCP, the reactor's frame reassembly, the shard lanes, and the
//! response trip back — so a reordering anywhere in the netserve stack
//! shows up as a per-key linearizability violation.
//!
//! Two recording modes:
//! - the blocking calls ([`get`](ClientRecorder::get),
//!   [`put`](ClientRecorder::put), ...) round-trip one frame per op, like
//!   the in-process recorder;
//! - the pipelined pair [`send_point`](ClientRecorder::send_point) /
//!   [`collect_point`](ClientRecorder::collect_point) keeps several point
//!   frames in flight per connection, which is the regime the reactor's
//!   per-connection state machine actually serves.  Invoke ticks are taken
//!   at send time and response ticks at receive time, so in-flight ops
//!   overlap in the recorded history exactly as they did on the wire.
//!
//! [`Response::Overloaded`] means the service *refused* the request (it
//! never executed), so refused ops are not recorded; the blocking calls
//! retry them, bounded by [`OVERLOAD_RETRIES`].

use std::io;
use std::net::ToSocketAddrs;
use std::sync::Arc;

use kvserve::{Request, Response};
use netserve::Client;

use crate::history::{Clock, OpKind, OpRecord, OpResult};

/// Attempts per blocking op before an `Overloaded` answer becomes a panic.
/// A single-request frame can only be refused while the same session has a
/// full lane in flight, so hitting this bound means the service is wedged,
/// not busy.
pub const OVERLOAD_RETRIES: usize = 1000;

/// Records one socket session's operations for the checker.
#[derive(Debug)]
pub struct ClientRecorder {
    inner: Client,
    thread: u32,
    clock: Arc<Clock>,
    ops: Vec<OpRecord>,
    /// Invocations sent but not yet collected, in frame order.
    in_flight: std::collections::VecDeque<(OpKind, u64)>,
}

impl ClientRecorder {
    /// Connects to a netserve server and records under `thread` / `clock`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        thread: u32,
        clock: Arc<Clock>,
    ) -> io::Result<Self> {
        Ok(Self::from_client(Client::connect(addr)?, thread, clock))
    }

    /// Wraps an already-connected client.
    pub fn from_client(client: Client, thread: u32, clock: Arc<Clock>) -> Self {
        Self {
            inner: client,
            thread,
            clock,
            ops: Vec::new(),
            in_flight: std::collections::VecDeque::new(),
        }
    }

    /// Finishes recording, returning this session's log.
    ///
    /// # Panics
    ///
    /// Panics if pipelined sends were never collected: their results are
    /// unknown, so the history would be missing completed operations.
    pub fn finish(self) -> Vec<OpRecord> {
        assert!(
            self.in_flight.is_empty(),
            "finish() with {} uncollected pipelined ops",
            self.in_flight.len()
        );
        self.ops
    }

    /// One blocking round trip; retries refused (`Overloaded`) requests.
    /// Responses come back in frame order, so the pipelined window must be
    /// collected first — otherwise this call would read some older point
    /// op's answer as its own.
    fn call_one(&mut self, request: Request, kind: OpKind) -> Response {
        while !self.in_flight.is_empty() {
            self.collect_point();
        }
        for _ in 0..OVERLOAD_RETRIES {
            let invoke = self.clock.tick();
            let mut replies = self
                .inner
                .call(std::slice::from_ref(&request))
                .expect("socket round trip");
            let response = self.clock.tick();
            assert_eq!(replies.len(), 1, "one reply to a one-request frame");
            let reply = replies.pop().expect("checked length");
            if matches!(reply, Response::Overloaded) {
                continue; // refused, not executed: nothing to record
            }
            self.ops.push(OpRecord {
                thread: self.thread,
                kind,
                result: result_of(&reply),
                invoke,
                response,
            });
            return reply;
        }
        panic!("request refused {OVERLOAD_RETRIES} times: {request:?}");
    }

    /// Recorded `Get` round trip.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        match self.call_one(Request::Get { key }, OpKind::Get { key }) {
            Response::Value(v) => v,
            other => panic!("get answered {other:?}"),
        }
    }

    /// Recorded `Put` (insert-if-absent) round trip.
    pub fn put(&mut self, key: u64, value: u64) -> Option<u64> {
        match self.call_one(
            Request::Put { key, value },
            OpKind::Insert { key, value },
        ) {
            Response::Value(v) => v,
            other => panic!("put answered {other:?}"),
        }
    }

    /// Recorded `Delete` round trip.
    pub fn delete(&mut self, key: u64) -> Option<u64> {
        match self.call_one(Request::Delete { key }, OpKind::Delete { key }) {
            Response::Value(v) => v,
            other => panic!("delete answered {other:?}"),
        }
    }

    /// Recorded `Scan` of `[lo, lo + len - 1]`.  Zero-length scans return
    /// nothing and record nothing.
    pub fn scan(&mut self, lo: u64, len: u64) -> Vec<(u64, u64)> {
        let Some((lo_clamped, hi)) = abtree::scan_window(lo, len) else {
            return Vec::new();
        };
        match self.call_one(
            Request::Scan { lo, len },
            OpKind::Range {
                lo: lo_clamped,
                hi,
            },
        ) {
            Response::Entries(entries) => entries,
            other => panic!("scan answered {other:?}"),
        }
    }

    /// Recorded `MGet` round trip.
    pub fn mget(&mut self, keys: &[u64]) -> Vec<Option<u64>> {
        match self.call_one(
            Request::MGet { keys: keys.to_vec() },
            OpKind::MGet { keys: keys.to_vec() },
        ) {
            Response::Values(values) => values,
            other => panic!("mget answered {other:?}"),
        }
    }

    /// Recorded `MPut` round trip.
    pub fn mput(&mut self, pairs: &[(u64, u64)]) -> Vec<Option<u64>> {
        match self.call_one(
            Request::MPut { pairs: pairs.to_vec() },
            OpKind::MPut { pairs: pairs.to_vec() },
        ) {
            Response::Values(values) => values,
            other => panic!("mput answered {other:?}"),
        }
    }

    /// Sends one point request as its own frame without waiting for the
    /// answer; pair with [`collect_point`](Self::collect_point).
    pub fn send_point(&mut self, request: Request) {
        let kind = match &request {
            Request::Get { key } => OpKind::Get { key: *key },
            Request::Put { key, value } => OpKind::Insert {
                key: *key,
                value: *value,
            },
            Request::Delete { key } => OpKind::Delete { key: *key },
            other => panic!("send_point takes point requests, got {other:?}"),
        };
        let invoke = self.clock.tick();
        self.inner
            .send(std::slice::from_ref(&request))
            .expect("socket send");
        self.in_flight.push_back((kind, invoke));
    }

    /// Ops sent with [`send_point`](Self::send_point) and not yet collected.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Receives the oldest in-flight point answer and records it.  Refused
    /// (`Overloaded`) ops never executed and are dropped from the record;
    /// the return value says whether this collect produced a record.
    pub fn collect_point(&mut self) -> bool {
        let (kind, invoke) = self
            .in_flight
            .pop_front()
            .expect("collect_point with nothing in flight");
        let mut replies = self.inner.recv().expect("socket reply");
        let response = self.clock.tick();
        assert_eq!(replies.len(), 1, "one reply to a one-request frame");
        let reply = replies.pop().expect("checked length");
        if matches!(reply, Response::Overloaded) {
            return false;
        }
        self.ops.push(OpRecord {
            thread: self.thread,
            kind,
            result: result_of(&reply),
            invoke,
            response,
        });
        true
    }
}

fn result_of(reply: &Response) -> OpResult {
    match reply {
        Response::Value(v) => OpResult::Value(*v),
        Response::Values(values) => OpResult::Values(values.clone()),
        Response::Entries(entries) => OpResult::Entries(entries.clone()),
        Response::Overloaded => unreachable!("refused ops are never recorded"),
        Response::Error { code } => panic!("server answered protocol error {code}"),
        Response::Stats(_) => unreachable!("the history harness never scrapes stats"),
    }
}
