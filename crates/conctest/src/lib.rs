//! `conctest`: linearizability checking and differential stress testing for
//! every structure in the registry, and for the `kvserve` service layer.
//!
//! The paper's claims are about *correct concurrent behavior under
//! contention* — elimination linearizes same-key operations against leaf
//! records, rebalancing marks before unlinking, scans validate leaf
//! versions.  The rest of the test suite spot-checks invariants (key sums,
//! structural validity); this crate checks the actual contract: **recorded
//! concurrent histories must be linearizable**.
//!
//! Three layers, each usable on its own:
//!
//! 1. **Recording** ([`history`]): wrap any per-thread session
//!    ([`Recorder`] over a [`abtree::MapHandle`], [`RouterRecorder`] over a
//!    kvserve `ShardRouter`) and get a timestamped invoke/response event
//!    log.
//! 2. **Checking** ([`checker`]): a Wing–Gong-style linearizability search
//!    over the recorded history — per-key partitioned, with a sequential
//!    fast path, a provenance pre-pass for crisp common-case messages, an
//!    atomic-snapshot scan model for the structures that promise one
//!    (`ScanSupport::Snapshot` in the registry), and a search budget so
//!    pathological histories return [`Outcome::Bounded`] instead of
//!    hanging.
//! 3. **Fuzzing + shrinking** ([`fuzz`], [`shrink`]): seeded
//!    [`workload::OperationMix`] streams (Zipf and tenant skew, YCSB-E
//!    style scans, batches) replayed deterministically against a locked
//!    `BTreeMap` oracle, and concurrently under the checker; failures
//!    shrink ddmin-style to a minimal reproducer — a seed plus a schedule,
//!    or a minimal event history.
//!
//! A fourth layer rides on the first two: **durable-linearizability
//! checking** ([`durable`]) for crashkv's crash-injected persistent
//! service.  [`DurableRecorder`] logs a `DurableRouter` session including
//! crash-aborted operations ([`OpResult::Aborted`]); the checker treats an
//! unacked crash-window write as *optional* (it linearized at the crash or
//! vanished) while acked writes stay mandatory, so losing an acknowledged
//! write is flagged as a violation.
//!
//! The `conctest` binary sweeps all of this over every registry structure
//! (`--smoke` for the CI-sized run).  The harness proves it can catch real
//! bugs by mutation: with `--features torn-scan`, an intentionally broken
//! wrapper whose scans read the window in two halves must be flagged by the
//! checker (`tests/mutation.rs`); with `--features lost-ack`, a crashkv
//! shard owner that releases acks before their covering fence must be
//! flagged by the durable checker (`tests/lost_ack.rs`).
//!
//! Environment knobs: `AB_FORCE_PARALLEL` (see [`abtree::par`]) opens the
//! parallelism-gated tests on single-CPU machines; `CONCTEST_ARTIFACT_DIR`
//! redirects where failing reproducers are written (default
//! `target/conctest/`).

#![warn(missing_docs)]

pub mod checker;
pub mod durable;
pub mod fuzz;
pub mod history;
#[cfg(feature = "torn-scan")]
pub mod mutant;
pub mod shrink;
pub mod socket;

pub use checker::{check, CheckConfig, Outcome, ViolationReport};
pub use durable::{check_durable, DurableRecorder};
pub use fuzz::{
    differential_fuzz, differential_kvserve, fuzz_concurrent, fuzz_kvserve_concurrent,
    record_concurrent, ConcFailure, ConcReport, DiffFailure, FuzzConfig, ScheduledOp, SpecOp,
};
pub use history::{Clock, History, OpKind, OpRecord, OpResult, Recorder, RouterRecorder};
#[cfg(feature = "torn-scan")]
pub use mutant::TornScan;
pub use shrink::{shrink_history, shrink_history_from, shrink_schedule};
pub use socket::ClientRecorder;

use std::io::Write as _;
use std::path::PathBuf;

/// Directory failing reproducers are written to: `$CONCTEST_ARTIFACT_DIR`,
/// or `target/conctest/` relative to the working directory.
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("CONCTEST_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/conctest"))
}

/// Writes a reproducer to `<artifact_dir>/<name>` (best effort: IO errors
/// are reported to stderr, not panicked on, so artifact writing can never
/// mask the real failure) and returns the path it tried.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let dir = artifact_dir();
    let path = dir.join(name);
    let result = std::fs::create_dir_all(&dir)
        .and_then(|()| std::fs::File::create(&path))
        .and_then(|mut file| file.write_all(contents.as_bytes()));
    if let Err(error) = result {
        eprintln!("conctest: could not write artifact {}: {error}", path.display());
    }
    path
}
