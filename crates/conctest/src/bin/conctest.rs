//! `conctest` driver: sweeps the differential fuzzer and the concurrent
//! linearizability checker over every registry structure, plus the kvserve
//! service layer, from one seeded configuration.
//!
//! ```text
//! conctest [--smoke] [--seed N] [--structure NAME] [--threads N]
//!          [--ops N] [--rounds N] [--smr ebr|hp]
//! ```
//!
//! `--smr` selects the reclamation backend the registry mounts each
//! structure on (default `ebr`), so CI can sweep the same schedules over
//! the hazard-pointer backend.
//!
//! Per structure, two passes run:
//!
//! * `diff` — the deterministic differential mode: a seeded interleaved
//!   schedule replayed against the structure and a locked `BTreeMap`
//!   oracle (logical threads, one OS thread);
//! * `conc` — the concurrent recorded mode: OS threads under recorders,
//!   every round's history checked for linearizability (snapshot-scan
//!   semantics exactly for the registry's `Snapshot` structures).
//!
//! Then the same two passes run over kvserve services (tenant-skewed keys,
//! batched ops) for a sample of shard counts and structures.
//!
//! Any failure prints the shrunk reproducer, writes it to the artifact
//! directory (`CONCTEST_ARTIFACT_DIR`, default `target/conctest/`) for CI
//! upload, and exits non-zero.  `--smoke` is the CI-sized run with a fixed
//! default seed, so the sweep is deterministic in the deterministic mode
//! and reproducibly seeded in the concurrent one.

use conctest::{
    differential_fuzz, differential_kvserve, fuzz_concurrent, fuzz_kvserve_concurrent,
    write_artifact, CheckConfig, FuzzConfig,
};
use abebr::SmrPolicy;
use setbench::registry::{self, ScanSupport};

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| {
            let s = s.trim();
            match s.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => s.parse().ok(),
            }
        })
}

struct Cell {
    target: String,
    mode: &'static str,
    detail: String,
    failed: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = flag_value(&args, "--seed").unwrap_or(0x5EED_C0C7);
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--structure")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let smr: SmrPolicy = match args
        .iter()
        .position(|a| a == "--smr")
        .and_then(|i| args.get(i + 1))
    {
        None => SmrPolicy::default(),
        Some(name) => match name.parse() {
            Ok(policy) => policy,
            Err(e) => {
                eprintln!("conctest: --smr {name}: {e}");
                std::process::exit(2);
            }
        },
    };
    let threads = flag_value(&args, "--threads").unwrap_or(if smoke { 2 } else { 3 }) as u32;
    let ops = flag_value(&args, "--ops").unwrap_or(if smoke { 150 } else { 400 }) as u32;
    let rounds = flag_value(&args, "--rounds").unwrap_or(if smoke { 2 } else { 5 }) as u32;

    let cfg = FuzzConfig {
        seed,
        threads,
        ops_per_thread: ops,
        ..FuzzConfig::default()
    };
    println!(
        "conctest sweep: seed {seed:#x}, {threads} threads x {ops} ops, {rounds} concurrent \
         rounds, smr {smr}{}",
        if smoke { " (smoke)" } else { "" }
    );
    println!("{:<28} {:>5} {:>34}", "target", "mode", "result");

    let mut cells: Vec<Cell> = Vec::new();
    let mut fail_text: Option<String> = None;

    // Registry structures.
    for descriptor in registry::STRUCTURES {
        if only.as_deref().is_some_and(|o| o != descriptor.name) {
            continue;
        }
        let build = move |policy: SmrPolicy| move || (descriptor.factory)(policy);
        let diff = match differential_fuzz(&build(smr), &cfg) {
            Ok(total) => Cell {
                target: descriptor.name.into(),
                mode: "diff",
                detail: format!("ok ({total} ops vs oracle)"),
                failed: false,
            },
            Err(failure) => {
                fail_text.get_or_insert_with(|| {
                    format!("[{} diff]\n{}", descriptor.name, failure.render())
                });
                Cell {
                    target: descriptor.name.into(),
                    mode: "diff",
                    detail: format!("FAIL ({} op reproducer)", failure.minimal.len()),
                    failed: true,
                }
            }
        };
        cells.push(diff);

        let check_cfg = if descriptor.scan == ScanSupport::Snapshot {
            CheckConfig::with_snapshot_scans()
        } else {
            CheckConfig::default()
        };
        let conc = match fuzz_concurrent(&build(smr), &cfg, &check_cfg, rounds) {
            Ok(report) => Cell {
                target: descriptor.name.into(),
                mode: "conc",
                detail: format!(
                    "ok ({} events, {} rounds{})",
                    report.events,
                    report.rounds,
                    if report.bounded_rounds > 0 {
                        format!(", {} bounded", report.bounded_rounds)
                    } else {
                        String::new()
                    }
                ),
                failed: false,
            },
            Err(failure) => {
                fail_text.get_or_insert_with(|| {
                    format!("[{} conc]\n{}", descriptor.name, failure.render(&cfg))
                });
                Cell {
                    target: descriptor.name.into(),
                    mode: "conc",
                    detail: format!("FAIL ({} event reproducer)", failure.minimal.ops.len()),
                    failed: true,
                }
            }
        };
        cells.push(conc);
    }

    // kvserve services: tenant-skewed traffic over sharded registry
    // structures; scans are scatter-gather, so per-key semantics.
    let tenants = (4u16, 1.0);
    let service_cells: &[(&'static str, usize)] = if smoke {
        &[("elim-abtree", 3)]
    } else {
        &[("elim-abtree", 1), ("elim-abtree", 3), ("skiplist-lazy", 3)]
    };
    for &(structure, shards) in service_cells {
        if only.as_deref().is_some_and(|o| o != structure) {
            continue;
        }
        let target = format!("kvserve/{structure}x{shards}");
        let diff = match differential_kvserve(structure, shards, tenants, &cfg) {
            Ok(total) => Cell {
                target: target.clone(),
                mode: "diff",
                detail: format!("ok ({total} ops vs oracle)"),
                failed: false,
            },
            Err(failure) => {
                fail_text
                    .get_or_insert_with(|| format!("[{target} diff]\n{}", failure.render()));
                Cell {
                    target: target.clone(),
                    mode: "diff",
                    detail: format!("FAIL ({} op reproducer)", failure.minimal.len()),
                    failed: true,
                }
            }
        };
        cells.push(diff);
        let conc = match fuzz_kvserve_concurrent(
            structure,
            shards,
            tenants,
            &cfg,
            &CheckConfig::default(),
            rounds,
        ) {
            Ok(report) => Cell {
                target: target.clone(),
                mode: "conc",
                detail: format!(
                    "ok ({} events, {} rounds{})",
                    report.events,
                    report.rounds,
                    if report.bounded_rounds > 0 {
                        format!(", {} bounded", report.bounded_rounds)
                    } else {
                        String::new()
                    }
                ),
                failed: false,
            },
            Err(failure) => {
                fail_text
                    .get_or_insert_with(|| format!("[{target} conc]\n{}", failure.render(&cfg)));
                Cell {
                    target,
                    mode: "conc",
                    detail: format!("FAIL ({} event reproducer)", failure.minimal.ops.len()),
                    failed: true,
                }
            }
        };
        cells.push(conc);
    }

    let mut any_failed = false;
    for cell in &cells {
        println!("{:<28} {:>5} {:>34}", cell.target, cell.mode, cell.detail);
        any_failed |= cell.failed;
    }
    if cells.is_empty() {
        eprintln!("no targets matched {only:?}");
        std::process::exit(2);
    }
    if any_failed {
        let text = fail_text.expect("a failed cell recorded its reproducer");
        let path = write_artifact("shrunk-history.txt", &text);
        eprintln!("\n{text}\nreproducer written to {}", path.display());
        std::process::exit(1);
    }
    println!(
        "all {} cells clean: every history linearizable, every replay matched the oracle",
        cells.len()
    );
}
