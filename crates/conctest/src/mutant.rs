//! The intentionally broken "torn scan" mutant (feature `torn-scan` only).
//!
//! [`TornScan`] wraps any correct structure and sabotages exactly one
//! guarantee: its range scans read the window in two halves with a
//! deliberate scheduling gap between them, so a concurrent writer can
//! mutate the window in the middle and the scan returns a state that never
//! existed — a *torn* scan.  Each half is individually correct (it is the
//! inner structure's own validated scan), which is what makes the tear the
//! interesting mutation: per-key checking cannot see it, only joint
//! snapshot checking can.
//!
//! This is the harness's proof of work: a checker that cannot flag
//! `TornScan<ElimABTree>` under the standard fuzz mix would be testing
//! nothing.  The mutation-detection test lives in `tests/mutation.rs` and
//! runs in CI as a dedicated `--features torn-scan` job; the feature gate
//! keeps the mutant out of every production dependency graph.

use abtree::{ConcurrentMap, KeySum, MapHandle};

/// A wrapper whose `range` is torn in the middle (see the module docs).
#[derive(Debug, Default)]
pub struct TornScan<M> {
    inner: M,
}

impl<M> TornScan<M> {
    /// Wraps `inner`, breaking its scans.
    pub fn new(inner: M) -> Self {
        Self { inner }
    }
}

impl<M: ConcurrentMap> ConcurrentMap for TornScan<M> {
    fn handle(&self) -> Box<dyn MapHandle + '_> {
        Box::new(TornHandle {
            inner: self.inner.handle(),
        })
    }

    fn name(&self) -> &'static str {
        "torn-scan"
    }

    fn ebr_stats(&self) -> Option<abebr::CollectorStats> {
        self.inner.ebr_stats()
    }
}

impl<M: KeySum> KeySum for TornScan<M> {
    fn key_sum(&self) -> u128 {
        self.inner.key_sum()
    }
}

struct TornHandle<'m> {
    inner: Box<dyn MapHandle + 'm>,
}

impl MapHandle for TornHandle<'_> {
    fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        self.inner.insert(key, value)
    }

    fn delete(&mut self, key: u64) -> Option<u64> {
        self.inner.delete(key)
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.inner.get(key)
    }

    fn range(&mut self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        if lo >= hi {
            return self.inner.range(lo, hi, out);
        }
        // Two individually-correct half-window scans with a scheduling gap
        // between them.  The sleep guarantees the tear window opens even on
        // a single hardware thread, where a bare yield may return
        // immediately.
        let mid = lo + (hi - lo) / 2;
        self.inner.range(lo, mid, out);
        let low_half = std::mem::take(out);
        std::thread::yield_now();
        std::thread::sleep(std::time::Duration::from_micros(100));
        self.inner.range(mid + 1, hi, out);
        let mut merged = low_half;
        merged.append(out);
        *out = merged;
    }

    fn take_scan_buf(&mut self) -> Vec<(u64, u64)> {
        self.inner.take_scan_buf()
    }

    fn put_scan_buf(&mut self, buf: Vec<(u64, u64)>) {
        self.inner.put_scan_buf(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abtree::ElimABTree;

    #[test]
    fn torn_scans_are_sequentially_correct() {
        // Single-threaded the tear is invisible — that is the point: only
        // the concurrent checker can catch it.
        let torn = TornScan::new(ElimABTree::new() as ElimABTree);
        let mut session = torn.handle();
        for k in 0..50u64 {
            session.insert(k, k);
        }
        let mut out = Vec::new();
        session.range(10, 30, &mut out);
        assert_eq!(out.len(), 21);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        drop(session);
        assert_eq!(torn.name(), "torn-scan");
        assert_eq!(torn.key_sum(), (0..50u128).sum());
    }
}
