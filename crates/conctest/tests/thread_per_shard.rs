//! Conctest coverage for the thread-per-shard kvserve architecture: every
//! recorded operation now crosses an SPSC lane to a shard-owner thread (or
//! is answered by the router's hot-key read cache), and the histories that
//! come back through the queues must still be linearizable per key.
//!
//! The cached-read path is the delicate part — a stale cache hit is a
//! textbook linearizability violation (a read returning a value some
//! earlier-completed write already replaced) — so these tests pin the key
//! space small and the skew high to force both real cache hits and heavy
//! write traffic over the same keys, and then assert the cache actually
//! served reads, so a silently dead cache cannot pass the suite.

use std::sync::Arc;

use conctest::{
    check, differential_kvserve, fuzz_kvserve_concurrent, CheckConfig, Clock, FuzzConfig, History,
    Outcome, RouterRecorder,
};
use kvserve::KvService;

/// Tiny, hot key space: a dozen keys under Zipf skew means every router's
/// direct-mapped cache holds most of the universe and writes invalidate it
/// constantly — the regime where a version-check bug would surface.
fn hot_key_cfg() -> FuzzConfig {
    FuzzConfig {
        seed: 0x5EED_CAFE,
        threads: 2,
        ops_per_thread: 160,
        key_space: 12,
        key_skew: 1.2,
        ..FuzzConfig::default()
    }
}

fn elim_service(shards: usize) -> KvService {
    KvService::new(shards, 1, |_| {
        Box::new(setbench::registry::make_structure("elim-abtree"))
    })
}

/// Differential mode: the thread-per-shard router (queues, shard owners,
/// cache and all) must agree op-for-op with the locked `BTreeMap` oracle
/// under hot-key traffic, across shard counts.
#[test]
fn differential_matches_the_oracle_through_the_lanes() {
    let cfg = hot_key_cfg();
    for &shards in &[1usize, 4] {
        differential_kvserve("elim-abtree", shards, (3, 1.0), &cfg)
            .unwrap_or_else(|failure| panic!("shards={shards}: {}", failure.render()));
    }
}

/// Concurrent mode: OS-thread routers hammering the shard owners through
/// the lanes, with the recorded histories checked per key across rounds.
#[test]
fn concurrent_stress_passes_over_the_thread_per_shard_router() {
    let cfg = hot_key_cfg();
    let report =
        fuzz_kvserve_concurrent("elim-abtree", 4, (3, 1.0), &cfg, &CheckConfig::default(), 2)
            .unwrap_or_else(|failure| panic!("{}", failure.render(&cfg)));
    assert_eq!(report.rounds, 2);
    assert!(report.events >= 2 * 2 * 160);
}

/// Direct recorded stress with a cache-hit witness: concurrent
/// `RouterRecorder` sessions over a tiny hot key range, checked for per-key
/// linearizability, with the service stats proving the hot-key cache
/// actually answered reads inside the recorded (checked) traffic.
///
/// Gated on [`abtree::par::test_parallelism`]: on a 1-CPU box without the
/// `AB_FORCE_PARALLEL` override, OS-thread interleaving is cooperative-only
/// and the test would stress nothing.
#[test]
fn cached_reads_stay_linearizable_under_concurrent_writes() {
    if abtree::par::test_parallelism() < 2 {
        eprintln!("skipping: needs >= 2 threads (set AB_FORCE_PARALLEL=1 to override)");
        return;
    }
    const THREADS: u32 = 3;
    const OPS: u64 = 400;
    const HOT_KEYS: u64 = 8;

    let service = Arc::new(elim_service(4));
    let clock = Clock::new();
    let mut logs: Vec<Vec<conctest::OpRecord>> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for thread in 0..THREADS {
            let service = Arc::clone(&service);
            let clock = Arc::clone(&clock);
            joins.push(scope.spawn(move || {
                let mut rec = RouterRecorder::new(service.router(), thread, clock);
                // Read-heavy deterministic mix over the hot range: ~70%
                // gets (the cache-hit fodder) against a churn of puts and
                // deletes that keeps every entry's version moving.
                let mut state = 0x9E37_79B9u64
                    .wrapping_mul(thread as u64 + 1)
                    .wrapping_add(0x5EED);
                for op in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 33) % HOT_KEYS;
                    match (state >> 13) % 10 {
                        0 | 1 => {
                            // Unique values so the checker can match reads
                            // to the exact write they observed.
                            rec.put(key, (thread as u64) << 32 | op);
                        }
                        2 => {
                            rec.delete(key);
                        }
                        _ => {
                            rec.get(key);
                        }
                    }
                }
                rec.finish()
            }));
        }
        for join in joins {
            logs.push(join.join().expect("recorder thread panicked"));
        }
    });

    let history = History::merge(logs);
    assert_eq!(history.ops.len(), (THREADS as usize) * OPS as usize);
    match check(&history, &CheckConfig::default()) {
        Outcome::Linearizable | Outcome::Bounded { .. } => {}
        Outcome::Violation(report) => panic!("cached reads broke linearizability: {report}"),
    }
    // The witness: with 8 keys across 4 shards and 70% reads, a correct
    // cache serves plenty of hits inside the checked history.  A cache
    // that never hits would make this test silently vacuous.
    assert!(
        service.stats().cache_hits() > 0,
        "hot-key cache served no reads; the cached path went unexercised"
    );
}
