//! Mutation detection for the durability contract: with crashkv's
//! `lost-ack` feature, the shard owner releases write acknowledgements the
//! moment they execute — **before** the covering group fence — so a crash
//! at the next boundary rolls back writes the client already saw succeed.
//! The durable-linearizability checker must flag that, or the durability
//! side of the harness is testing nothing.
//!
//! The scenario forces the window open deterministically: a pipelined wave
//! of puts keeps the shard owner busy (boundaries only happen when the
//! lane drains), the crash is armed mid-serve, and the drain boundary then
//! kills the whole unfenced group — whose acks the mutant has already
//! released.  With `survivor_seed: 0` every unfenced write rolls back, so
//! at least one acknowledged write vanishes and the post-heal verification
//! reads expose it.
//!
//! The negative control for this test is `tests/crash_stress.rs`: the
//! identical checker over the *unmutated* owner (default features) must
//! stay clean.
#![cfg(feature = "lost-ack")]

use std::sync::Arc;

use conctest::{
    check_durable, shrink_history, CheckConfig, Clock, DurableRecorder, History, Outcome,
};
use crashkv::{CrashSpec, DurableKvService, DurableOp};

const KEYS: u64 = 40;

/// One round: wave of puts, crash armed mid-serve, verification reads.
/// Returns the welded history and how many puts were acknowledged.
fn record_round() -> (History, usize) {
    let mut service = DurableKvService::new(1, 1_000_000);
    let clock = Clock::new();
    let mut router = service.router();
    // Pipelined wave: fill the owner's lane so no drain boundary (and
    // hence no fence) happens while the crash is being armed.
    let mut submitted = 0u64;
    while submitted < KEYS {
        match router.submit(DurableOp::Put {
            key: submitted + 1,
            value: (submitted + 1) * 100,
        }) {
            Ok(()) => submitted += 1,
            Err(_) => break,
        }
    }
    service.inject_crash(
        0,
        CrashSpec {
            after_boundaries: 0,
            survivor_seed: 0, // everything unfenced rolls back
            torn_insert: false,
            dirty_link: false,
        },
    );
    let mut acked = Vec::new();
    for key in 1..=submitted {
        if let Ok(prior) = router.collect_one().expect("one reply per submitted op") {
            assert_eq!(prior, None, "fresh key {key}");
            acked.push(key);
        }
    }
    while service.crash_count(0) == 0 {
        std::thread::yield_now();
    }
    drop(router);

    // Weld the acked wave into a history: the puts the client saw succeed,
    // then post-heal reads of every key.
    let mut rec = DurableRecorder::new(service.router(), 0, Arc::clone(&clock));
    // Re-record the acked puts as history facts via a recording router is
    // impossible after the fact, so the wave is logged directly: each
    // acked put is a mandatory insert with its observed result.
    let mut ops: Vec<conctest::OpRecord> = Vec::new();
    for &key in &acked {
        let invoke = clock.tick();
        let response = clock.tick();
        ops.push(conctest::OpRecord {
            thread: 1,
            kind: conctest::OpKind::Insert {
                key,
                value: key * 100,
            },
            result: conctest::OpResult::Value(None),
            invoke,
            response,
        });
    }
    for key in 1..=KEYS {
        rec.get(key).expect("no crash armed during verification");
    }
    let history = History::merge(vec![ops, rec.finish()]);
    service.shutdown();
    (history, acked.len())
}

#[test]
fn lost_ack_mutant_is_flagged_by_the_durable_checker() {
    let config = CheckConfig::default();
    let mut caught: Option<History> = None;
    // The race (owner draining the wave before the crash is armed) is
    // heavily biased toward detection; a few rounds make it certain.
    for _ in 0..25 {
        let (history, acked) = record_round();
        if acked == 0 {
            continue; // crash won before any ack escaped; try again
        }
        if check_durable(&history, &config).is_violation() {
            caught = Some(history);
            break;
        }
    }
    let history = caught.expect(
        "the lost-ack mutant survived every round: the durable checker \
         cannot detect acknowledged writes lost by a crash",
    );

    let minimal = shrink_history(&history, &config);
    let outcome = check_durable(&minimal, &config);
    // Write the reproducer *before* asserting over it, so a failing
    // assertion below still leaves the artifact for CI to upload.
    let artifact = format!(
        "lost-ack mutation caught ({} events, shrunk from {}): {}\nminimal welded history:\n{}",
        minimal.ops.len(),
        history.ops.len(),
        match &outcome {
            Outcome::Violation(report) => report.to_string(),
            other => format!("shrunk outcome unexpectedly {other:?}"),
        },
        minimal.render()
    );
    conctest::write_artifact("lost-ack-caught.txt", &artifact);
    println!("{artifact}");

    assert!(outcome.is_violation(), "shrunk history must still violate");
    assert!(
        minimal.ops.len() <= 4,
        "expected a tight reproducer (one lost acked write plus the read \
         exposing it), got {} events:\n{}",
        minimal.ops.len(),
        minimal.render()
    );
}
