//! Conctest coverage for the netserve socket front end: concurrent
//! [`ClientRecorder`] sessions over real loopback connections, with the
//! recorded histories — whose windows span encode, TCP, frame reassembly,
//! the shard lanes, and the reply trip — checked for per-key
//! linearizability.  Plus a malicious-client case: garbage, oversized
//! length prefixes, and truncated frames must each earn an error frame (or
//! a plain close) without taking the server down for anyone else.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use conctest::{check, CheckConfig, ClientRecorder, Clock, History, Outcome};
use kvserve::{KvService, Request, Response};
use netserve::{Client, Server, ServerConfig, ERR_BAD_FRAME, ERR_FRAME_TOO_LARGE};

fn elim_service(shards: usize) -> KvService {
    KvService::new(shards, 1, |_| {
        Box::new(setbench::registry::make_structure("elim-abtree"))
    })
}

/// Concurrent recorded stress over the socket: client threads hammer a hot
/// key space through real loopback connections, mixing blocking round
/// trips with pipelined point frames, and the merged history must be
/// linearizable per key.
///
/// Gated on [`abtree::par::test_parallelism`]: on a 1-CPU box without the
/// `AB_FORCE_PARALLEL` override, OS-thread interleaving is cooperative-only
/// and the test would stress nothing.
#[test]
fn socket_histories_stay_linearizable() {
    if abtree::par::test_parallelism() < 2 {
        eprintln!("skipping: needs >= 2 threads (set AB_FORCE_PARALLEL=1 to override)");
        return;
    }
    const CLIENTS: u32 = 4;
    const OPS: u64 = 300;
    const HOT_KEYS: u64 = 10;
    const PIPELINE: usize = 6;

    let service = Arc::new(elim_service(4));
    let mut server = Server::start(
        ServerConfig {
            reactors: 2,
            ..ServerConfig::default()
        },
        Arc::clone(&service),
    )
    .unwrap();
    let addr = server.local_addr();
    let clock = Clock::new();

    let mut logs: Vec<Vec<conctest::OpRecord>> = Vec::new();
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for thread in 0..CLIENTS {
            let clock = Arc::clone(&clock);
            joins.push(scope.spawn(move || {
                let mut rec = ClientRecorder::connect(addr, thread, clock).expect("connect");
                let mut state = 0x9E37_79B9u64
                    .wrapping_mul(thread as u64 + 1)
                    .wrapping_add(0xBEEF);
                for op in 0..OPS {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let key = (state >> 33) % HOT_KEYS;
                    // Unique values let the checker match each read to the
                    // exact write it observed.
                    let value = (thread as u64) << 32 | op;
                    match (state >> 13) % 10 {
                        // Pipelined point traffic: the reactor regime.
                        0..=5 => {
                            let request = match (state >> 7) % 3 {
                                0 => Request::Put { key, value },
                                1 => Request::Delete { key },
                                _ => Request::Get { key },
                            };
                            rec.send_point(request);
                            while rec.in_flight() >= PIPELINE {
                                rec.collect_point();
                            }
                        }
                        // Blocking round trips, including multi-key ops.
                        6 => {
                            rec.scan(0, HOT_KEYS);
                        }
                        7 => {
                            rec.mput(&[(key, value), ((key + 1) % HOT_KEYS, value)]);
                        }
                        8 => {
                            rec.mget(&[key, (key + 3) % HOT_KEYS]);
                        }
                        _ => {
                            rec.get(key);
                        }
                    }
                }
                while rec.in_flight() > 0 {
                    rec.collect_point();
                }
                rec.finish()
            }));
        }
        for join in joins {
            logs.push(join.join().expect("client thread panicked"));
        }
    });

    let history = History::merge(logs);
    assert!(
        history.ops.len() >= (CLIENTS as usize) * (OPS as usize) / 2,
        "most ops should be recorded (got {})",
        history.ops.len()
    );
    match check(&history, &CheckConfig::default()) {
        Outcome::Linearizable | Outcome::Bounded { .. } => {}
        Outcome::Violation(report) => {
            panic!("socket path broke linearizability: {report}")
        }
    }

    server.shutdown();
    assert_eq!(server.stats().protocol_errors(), 0);
    assert_eq!(server.stats().open_connections(), 0);
}

/// Reads frames until the server closes the connection, returning the
/// decoded responses of the final frame (if any).
fn read_until_close(stream: &mut TcpStream) -> Vec<Vec<Response>> {
    use std::io::Read;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut decoder = netserve::FrameDecoder::new(64 << 20);
    let mut frames = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => decoder.push(&buf[..n], &mut frames).expect("well-framed reply"),
            Err(e) => panic!("read: {e}"),
        }
    }
    frames
        .iter()
        .map(|f| kvserve::decode_response_batch(f).expect("decodable reply"))
        .collect()
}

fn eventually(what: &str, mut predicate: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !predicate() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Malicious clients: each attack earns a protocol error frame (or a plain
/// close for a truncated frame, which is indistinguishable from a client
/// that gave up) and its connection is closed — while the server keeps
/// serving well-behaved clients throughout.
#[test]
fn malicious_clients_are_closed_and_the_server_survives() {
    let service = Arc::new(elim_service(2));
    let mut server =
        Server::start(ServerConfig::default(), Arc::clone(&service)).unwrap();
    let addr = server.local_addr();

    let mut honest = Client::connect(addr).unwrap();
    let replies = honest
        .call(&[Request::Put { key: 1, value: 11 }])
        .unwrap();
    assert_eq!(replies, vec![Response::Value(None)]);

    // Attack 1: garbage bytes — a frame whose payload is not a batch.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        netserve::frame::write_frame(&mut wire, &[0xFF, 0xAA, 0x55, 0x00, 0x13, 0x37]);
        stream.write_all(&wire).unwrap();
        let batches = read_until_close(&mut stream);
        let last = batches.last().expect("an error frame before the close");
        assert!(
            matches!(last.as_slice(), [Response::Error { .. }]),
            "garbage earned {last:?}"
        );
    }

    // Attack 2: an oversized length prefix, rejected before any payload is
    // buffered.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        kvserve::codec::write_varint(&mut wire, 1 << 40); // "a terabyte follows"
        stream.write_all(&wire).unwrap();
        let batches = read_until_close(&mut stream);
        let last = batches.last().expect("an error frame before the close");
        assert_eq!(
            last.as_slice(),
            [Response::Error { code: ERR_FRAME_TOO_LARGE }],
            "oversized prefix earned {last:?}"
        );
    }

    // Attack 3: an overlong varint header (a malformed length that never
    // terminates).
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(&[0xFF; 10]).unwrap();
        let batches = read_until_close(&mut stream);
        let last = batches.last().expect("an error frame before the close");
        assert_eq!(
            last.as_slice(),
            [Response::Error { code: ERR_BAD_FRAME }],
            "overlong varint earned {last:?}"
        );
    }

    // Attack 4: a truncated frame — promise 100 bytes, send 3, hang up.
    // Nothing decodable ever arrives, so the server just closes.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut wire = Vec::new();
        kvserve::codec::write_varint(&mut wire, 100);
        wire.extend_from_slice(&[1, 2, 3]);
        stream.write_all(&wire).unwrap();
        drop(stream);
    }

    // Every attack was tallied, every attacker reaped — and the honest
    // client never noticed.
    assert!(server.stats().protocol_errors() >= 3);
    eventually("attack connections to be reaped", || {
        server.stats().open_connections() == 1
    });
    let replies = honest.call(&[Request::Get { key: 1 }]).unwrap();
    assert_eq!(replies, vec![Response::Value(Some(11))]);

    drop(honest);
    server.shutdown();
    assert_eq!(server.stats().open_connections(), 0);
}
