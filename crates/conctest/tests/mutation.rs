//! Mutation detection: the harness must flag the intentionally broken
//! `TornScan` wrapper (feature `torn-scan`), or it is testing nothing.
//!
//! The torn window opens between the mutant's two half-window reads, so a
//! writer that is never "in" an impossible state — it cycles key `a`
//! present / nothing / key `b` present, with `a` in the low half and `b` in
//! the high half — exposes the tear: a scan observing `a` *and* `b`
//! together saw a state that never existed, which only the joint
//! snapshot-scan check can reject.  The mutant sleeps in its gap and the
//! writer paces itself with short sleeps, so the interleaving happens even
//! on a single hardware thread (no parallelism gate needed) and each
//! round's history stays small enough for the checker's search.
#![cfg(feature = "torn-scan")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use abtree::{ConcurrentMap, ElimABTree, MapHandle};
use conctest::{
    check, shrink_history, CheckConfig, Clock, History, Outcome, Recorder, TornScan,
};

/// Low and high halves of the scanned window `[0, 3]`.
const A: u64 = 1;
const B: u64 = 2;

/// One recorded round of `scans` torn-window scans against a paced
/// flip-flop writer (at most `writer_ops` operations).
fn record_round(map: &dyn ConcurrentMap, scans: u32, writer_ops: u32) -> History {
    let clock = Clock::new();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = {
            let clock = std::sync::Arc::clone(&clock);
            let stop = &stop;
            scope.spawn(move || {
                let mut rec = Recorder::new(map.handle(), 0, clock);
                let mut value = 0u64;
                for i in 0..writer_ops {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // One step of the {A} -> {} -> {B} -> {} cycle per
                    // iteration, paced so the cycle advances a few steps
                    // inside each torn-scan gap rather than burning through
                    // the op budget in one scheduling quantum.
                    match i % 4 {
                        0 => {
                            value += 1;
                            rec.insert(A, value);
                        }
                        1 => {
                            rec.delete(A);
                        }
                        2 => {
                            value += 1;
                            rec.insert(B, value);
                        }
                        _ => {
                            rec.delete(B);
                        }
                    }
                    std::thread::sleep(Duration::from_micros(25));
                }
                rec.finish()
            })
        };
        let scanner = {
            let clock = std::sync::Arc::clone(&clock);
            scope.spawn(move || {
                let mut rec = Recorder::new(map.handle(), 1, clock);
                let mut out = Vec::new();
                for _ in 0..scans {
                    rec.range(0, 3, &mut out);
                }
                rec.finish()
            })
        };
        let scan_log = scanner.join().expect("scanner panicked");
        stop.store(true, Ordering::Relaxed);
        let write_log = writer.join().expect("writer panicked");
        History::merge(vec![write_log, scan_log])
    })
}

/// Runs rounds until the checker flags one (or the round budget runs out).
fn hunt_tear(rounds: u32) -> Option<History> {
    for _ in 0..rounds {
        let torn = TornScan::new(ElimABTree::new() as ElimABTree);
        let history = record_round(&torn, 40, 600);
        // The mutant wraps a Snapshot-scan structure, so joint atomicity is
        // the contract being checked.
        if check(&history, &CheckConfig::with_snapshot_scans()).is_violation() {
            return Some(history);
        }
    }
    None
}

#[test]
fn torn_scan_mutant_is_flagged_and_shrinks() {
    let history = hunt_tear(50).expect(
        "the torn-scan mutant survived every round: the checker cannot \
         detect non-atomic scans",
    );

    // Shrink to a minimal reproducer and make sure it still violates; the
    // minimal history needs only a handful of events (one torn scan plus
    // the writer ops proving the observed combination never existed).
    let config = CheckConfig::with_snapshot_scans();
    let minimal = shrink_history(&history, &config);
    let outcome = check(&minimal, &config);

    // Write the reproducer *before* asserting over it, so a failing
    // assertion below still leaves the artifact for CI to upload.
    let artifact = format!(
        "torn-scan mutation caught ({} events, shrunk from {}): {}\nminimal history:\n{}",
        minimal.ops.len(),
        history.ops.len(),
        match &outcome {
            Outcome::Violation(report) => report.to_string(),
            other => format!("shrunk outcome unexpectedly {other:?}"),
        },
        minimal.render()
    );
    conctest::write_artifact("torn-scan-caught.txt", &artifact);
    println!("{artifact}");

    assert!(outcome.is_violation(), "shrunk history must still violate");
    assert!(
        minimal.ops.len() < history.ops.len(),
        "shrinking removed nothing ({} events)",
        history.ops.len()
    );
    assert!(
        minimal.ops.len() <= 10,
        "expected a tight reproducer, got {} events:\n{}",
        minimal.ops.len(),
        minimal.render()
    );
}

/// Negative control: the identical hunt over the *unbroken* structure must
/// stay clean — otherwise the detection above could be a checker false
/// positive rather than a caught mutation.
#[test]
fn unbroken_structure_survives_the_same_hunt() {
    for _ in 0..8 {
        let tree: ElimABTree = ElimABTree::new();
        let history = record_round(&tree, 40, 300);
        let outcome = check(&history, &CheckConfig::with_snapshot_scans());
        assert!(
            !outcome.is_violation(),
            "false positive on the correct structure: {outcome:?}"
        );
    }
}
