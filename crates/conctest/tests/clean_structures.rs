//! Tier-1 conctest coverage: every registry structure (and the sharded
//! service) must pass both fuzz modes under a seeded mixed workload with
//! scans, and the checker must demonstrably reject hand-built torn and
//! stale histories — so the "all clean" verdict above it means something.

use conctest::{
    check, differential_fuzz, differential_kvserve, fuzz_concurrent, fuzz_kvserve_concurrent,
    shrink_history, CheckConfig, FuzzConfig, History, OpKind, OpRecord, OpResult, Outcome,
};
use abebr::SmrPolicy;
use setbench::registry::{self, ScanSupport};

fn small_cfg() -> FuzzConfig {
    FuzzConfig {
        seed: 0xA11_C1EA4,
        threads: 2,
        ops_per_thread: 120,
        ..FuzzConfig::default()
    }
}

/// Acceptance headline: the checker passes clean on every registry
/// structure under a seeded mixed workload including scans — differential
/// mode against the locked `BTreeMap` oracle, concurrent mode under the
/// linearizability checker (snapshot-scan semantics exactly where the
/// registry promises them) — under **both** reclamation backends.
#[test]
fn every_registry_structure_passes_both_fuzz_modes() {
    let cfg = small_cfg();
    for policy in SmrPolicy::ALL {
        for descriptor in registry::STRUCTURES {
            let build = || (descriptor.factory)(policy);
            differential_fuzz(&build, &cfg).unwrap_or_else(|failure| {
                panic!("{}/{policy}: {}", descriptor.name, failure.render())
            });
            let check_cfg = if descriptor.scan == ScanSupport::Snapshot {
                CheckConfig::with_snapshot_scans()
            } else {
                CheckConfig::default()
            };
            let report = fuzz_concurrent(&build, &cfg, &check_cfg, 2).unwrap_or_else(|failure| {
                panic!("{}/{policy}: {}", descriptor.name, failure.render(&cfg))
            });
            assert_eq!(report.rounds, 2, "{}/{policy}", descriptor.name);
            assert!(report.events >= 2 * 2 * 120, "{}/{policy}", descriptor.name);
        }
    }
}

/// The sharded service passes both modes too (tenant-skewed keys, batched
/// ops, scatter-gather scans checked per key).
#[test]
fn kvserve_passes_both_fuzz_modes() {
    let cfg = FuzzConfig {
        key_space: 48,
        ..small_cfg()
    };
    for &(structure, shards) in &[("elim-abtree", 1), ("elim-abtree", 3), ("skiplist-lazy", 2)] {
        differential_kvserve(structure, shards, (4, 1.0), &cfg)
            .unwrap_or_else(|failure| panic!("{structure}x{shards}: {}", failure.render()));
        fuzz_kvserve_concurrent(structure, shards, (4, 1.0), &cfg, &CheckConfig::default(), 2)
            .unwrap_or_else(|failure| panic!("{structure}x{shards}: {}", failure.render(&cfg)));
    }
}

fn record(thread: u32, kind: OpKind, result: OpResult, invoke: u64, response: u64) -> OpRecord {
    OpRecord {
        thread,
        kind,
        result,
        invoke,
        response,
    }
}

/// Deterministic mutation-shaped coverage that runs in every `cargo test`
/// (the live mutant needs `--features torn-scan`): a hand-built torn-scan
/// history — the exact event shape the mutant produces — must be flagged
/// under snapshot semantics, accepted under per-key semantics, and shrink
/// to a tight reproducer that still fails.
#[test]
fn hand_built_torn_scan_history_is_flagged_and_shrinks() {
    // Writer cycles {1} -> {} -> {2}; noise ops on key 9 ride along.  The
    // scan claims to have seen keys 1 and 2 simultaneously.
    let ops = vec![
        record(0, OpKind::Insert { key: 1, value: 10 }, OpResult::Value(None), 0, 1),
        record(0, OpKind::Insert { key: 9, value: 90 }, OpResult::Value(None), 2, 3),
        record(
            1,
            OpKind::Range { lo: 0, hi: 5 },
            OpResult::Entries(vec![(1, 10), (2, 20)]),
            4,
            11,
        ),
        record(0, OpKind::Delete { key: 1 }, OpResult::Value(Some(10)), 5, 6),
        record(0, OpKind::Insert { key: 2, value: 20 }, OpResult::Value(None), 7, 8),
        record(0, OpKind::Get { key: 9 }, OpResult::Value(Some(90)), 9, 10),
    ];
    let history = History::merge(vec![ops]);

    let strict = CheckConfig::with_snapshot_scans();
    let outcome = check(&history, &strict);
    let Outcome::Violation(report) = &outcome else {
        panic!("torn scan not flagged: {outcome:?}");
    };
    assert!(
        report.component_keys.contains(&1) && report.component_keys.contains(&2),
        "{report}"
    );

    // Per-key semantics must accept it — the tear is invisible without the
    // snapshot guarantee, which is why ScanSupport::Snapshot drives the
    // config.
    assert!(matches!(
        check(&history, &CheckConfig::default()),
        Outcome::Linearizable
    ));

    // Shrinking keeps a genuine, still-failing core and drops the key-9
    // noise.
    let minimal = shrink_history(&history, &strict);
    assert!(check(&minimal, &strict).is_violation());
    assert!(minimal.ops.len() <= 4, "{}", minimal.render());
    assert!(minimal
        .ops
        .iter()
        .all(|op| !matches!(op.kind, OpKind::Insert { key: 9, .. } | OpKind::Get { key: 9 })));
}

/// A stale-read history (read misses a definitely-completed insert) is the
/// other canonical bug shape; the checker must flag it in both semantics.
#[test]
fn stale_read_history_is_flagged() {
    let ops = vec![
        record(0, OpKind::Insert { key: 3, value: 30 }, OpResult::Value(None), 0, 1),
        record(1, OpKind::Get { key: 3 }, OpResult::Value(None), 2, 3),
    ];
    let history = History::merge(vec![ops]);
    assert!(check(&history, &CheckConfig::default()).is_violation());
    assert!(check(&history, &CheckConfig::with_snapshot_scans()).is_violation());
}

/// End-to-end artifact plumbing used by CI on failure.
#[test]
fn artifacts_are_written_to_the_artifact_dir() {
    let dir = std::env::temp_dir().join(format!("conctest-artifacts-{}", std::process::id()));
    std::env::set_var("CONCTEST_ARTIFACT_DIR", &dir);
    let path = conctest::write_artifact("probe.txt", "probe contents\n");
    std::env::remove_var("CONCTEST_ARTIFACT_DIR");
    assert_eq!(path, dir.join("probe.txt"));
    assert_eq!(
        std::fs::read_to_string(&path).expect("artifact written"),
        "probe contents\n"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
