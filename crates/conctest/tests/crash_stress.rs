//! Durable-linearizability stress test: seeded concurrent load over the
//! crash-injected durable service, killing and recovering **every** shard
//! at least once mid-load, then checking the welded pre/post-crash history.
//!
//! This is the tentpole acceptance run: workers hammer a small key universe
//! through recording routers while the main thread walks the shards with
//! crash directives (torn partial inserts and dirty link-and-persist marks
//! included).  After the last heal, a verification pass reads every
//! universe key into the same history, pinning the final recovered state
//! with mandatory reads.  The merged history must be durably linearizable:
//! every acknowledged write survives; unacked crash-window writes may
//! linearize at the crash or vanish, but never flicker.
//!
//! Excluded under `lost-ack`: that feature compiles the mutant that
//! *should* fail this check (see `tests/lost_ack.rs`), and doubles as this
//! test's negative-control counterpart.
#![cfg(not(feature = "lost-ack"))]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use conctest::{
    check_durable, shrink_history, CheckConfig, Clock, DurableRecorder, History, OpResult,
    Outcome,
};
use crashkv::{CrashSpec, DurableKvService};

const SEED: u64 = 0x5EED_D00D;
const SHARDS: usize = 3;
const WORKERS: u32 = 4;
const UNIVERSE: u64 = 48;

/// Deterministic per-thread xorshift op stream (the schedule itself is of
/// course nondeterministic — that is the point of the stress test).
fn step(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

#[test]
fn every_shard_crashes_and_the_welded_history_checks() {
    let mut service = DurableKvService::new(SHARDS, 8);
    let clock = Clock::new();
    let stop = AtomicBool::new(false);

    let mut logs = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..WORKERS)
            .map(|t| {
                let mut rec = DurableRecorder::new(service.router(), t, Arc::clone(&clock));
                let stop = &stop;
                scope.spawn(move || {
                    let mut s = SEED ^ (u64::from(t) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let mut seq = 0u64;
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let r = step(&mut s);
                        let key = 1 + r % UNIVERSE;
                        match r % 8 {
                            0..=4 => {
                                // Globally unique values keep provenance
                                // failures crisp in violation reports.
                                seq += 1;
                                let value = (u64::from(t) + 1) << 32 | seq;
                                let _ = rec.put(key, value);
                            }
                            5..=6 => {
                                let _ = rec.delete(key);
                            }
                            _ => {
                                let _ = rec.get(key);
                            }
                        }
                        ops += 1;
                        if ops.is_multiple_of(8) {
                            // Pace the load so the recorded history stays
                            // within the checker's comfortable range.
                            std::thread::sleep(Duration::from_micros(20));
                        }
                    }
                    rec.finish()
                })
            })
            .collect();

        // Walk the shards: kill each one mid-load and wait for the heal.
        for shard in 0..SHARDS {
            service.inject_crash(
                shard,
                CrashSpec {
                    after_boundaries: 2,
                    survivor_seed: SEED ^ shard as u64,
                    torn_insert: shard % 2 == 0,
                    dirty_link: true,
                },
            );
            while service.crash_count(shard) == 0 {
                std::thread::yield_now();
            }
        }
        // A little post-heal load on every shard.
        std::thread::sleep(Duration::from_millis(5));
        stop.store(true, Ordering::Relaxed);
        workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect::<Vec<_>>()
    });

    // Verification pass: read back the whole universe into the same welded
    // history; these reads are mandatory and pin the recovered state.
    let mut verifier = DurableRecorder::new(service.router(), WORKERS, Arc::clone(&clock));
    for key in 1..=UNIVERSE {
        verifier
            .get(key)
            .expect("no crash is armed during verification");
    }
    logs.push(verifier.finish());
    let history = History::merge(logs);
    service.shutdown();

    // Every shard crashed exactly once and recovered with a consistent
    // report and repaired damage.
    let reports = service.crash_reports();
    assert_eq!(reports.len(), SHARDS);
    for shard in 0..SHARDS {
        assert_eq!(service.crash_count(shard), 1, "shard {shard} must crash once");
    }
    for report in &reports {
        assert_eq!(report.survived + report.rolled_back, report.unfenced);
        assert!(report.dirty_link);
    }
    service.check_invariants().unwrap();

    let aborted = history
        .ops
        .iter()
        .filter(|op| op.result == OpResult::Aborted)
        .count();
    println!(
        "welded history: {} ops ({aborted} crash-aborted), {} crash cycles",
        history.ops.len(),
        reports.len()
    );

    let config = CheckConfig {
        snapshot_scans: false,
        search_budget: 50_000_000,
    };
    match check_durable(&history, &config) {
        Outcome::Linearizable => {}
        Outcome::Bounded { component_keys } => {
            panic!("durable check inconclusive over keys {component_keys:?}")
        }
        Outcome::Violation(report) => {
            // Shrink and persist the welded reproducer before failing, so
            // CI uploads it as an artifact.
            let minimal = shrink_history(&history, &config);
            let artifact = format!(
                "durable-linearizability violation ({} ops, shrunk to {}):\n{report}\n\
                 minimal welded history:\n{}",
                history.ops.len(),
                minimal.ops.len(),
                minimal.render()
            );
            let path = conctest::write_artifact("crash-stress-violation.txt", &artifact);
            panic!(
                "durable-linearizability violation (reproducer at {}):\n{report}",
                path.display()
            );
        }
    }
}
