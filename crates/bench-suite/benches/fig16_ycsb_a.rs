//! fig16: YCSB Workload A (50% reads / 50% row updates through the index,
//! request Zipf 0.5).  The paper uses 100M records; the bench loads 1M so the
//! suite stays fast — run the `fig16_ycsb` driver binary for larger loads.

use std::time::Duration;

use bench_suite::{bench_structures, bench_threads, configure, OPS_PER_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setbench::{YcsbConfig, YcsbInstance};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_ycsb_a");
    configure(&mut group);
    group.throughput(Throughput::Elements(OPS_PER_BATCH));
    for structure in bench_structures() {
        for &threads in &bench_threads() {
            let instance = YcsbInstance::new(YcsbConfig {
                structure: structure.to_string(),
                records: 1_000_000,
                zipf: 0.5,
                threads,
                duration: Duration::from_millis(0),
                seed: 99,
            });
            group.bench_function(BenchmarkId::new(structure, threads), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += instance.run_ops(OPS_PER_BATCH);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
