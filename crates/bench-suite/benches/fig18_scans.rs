//! fig18: YCSB Workload E (95% range scans / 5% inserts, request Zipf 0.5),
//! scan lengths uniform 1..=100.  Structures with a native `range` walk
//! their own layout; the others pay one point lookup per key in the window,
//! which is the contrast this figure shows.  The bench loads 100k records so
//! the suite stays fast — run the `fig18_scans` driver binary for the
//! full-methodology sweep.

use std::time::Duration;

use bench_suite::{bench_structures, bench_threads, configure, OPS_PER_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setbench::{YcsbConfig, YcsbInstance};
use workload::YcsbWorkloadKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_scans");
    configure(&mut group);
    // Scans dominate the batch, so batches are smaller than the point-op
    // figures to keep per-iteration time comparable.
    let ops = OPS_PER_BATCH / 10;
    group.throughput(Throughput::Elements(ops));
    for structure in bench_structures() {
        for &threads in &bench_threads() {
            let instance = YcsbInstance::new(YcsbConfig {
                structure: structure.to_string(),
                kind: YcsbWorkloadKind::E,
                records: 100_000,
                zipf: 0.5,
                max_scan_len: 100,
                threads,
                duration: Duration::from_millis(0),
                seed: 77,
                ..Default::default()
            });
            group.bench_function(BenchmarkId::new(structure, threads), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += instance.run_ops(ops);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
