//! Ablation (paper §4/§6): publishing elimination on vs off (Elim-ABtree vs
//! OCC-ABtree) as the access skew increases on an update-only workload.

use std::sync::Arc;
use std::time::Duration;

use abtree::{ElimABTree, OccABTree};
use bench_suite::{configure, prefill_map, run_fixed_ops, OPS_PER_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workload::{KeyDistribution, OperationMix};

fn bench(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let key_range = 10_000u64;
    let mix = OperationMix::from_update_percent(100);
    let mut group = c.benchmark_group("ablation_elimination");
    configure(&mut group);
    group.throughput(Throughput::Elements(OPS_PER_BATCH));

    for &zipf in &[0.0, 0.75, 1.0, 1.25] {
        let dist = KeyDistribution::from_zipf_parameter(key_range, zipf);

        let elim: Arc<ElimABTree> = Arc::new(ElimABTree::new());
        prefill_map(&*elim, key_range);
        group.bench_function(BenchmarkId::new("elim-abtree", format!("zipf{zipf}")), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_fixed_ops(&elim, &dist, mix, threads, OPS_PER_BATCH);
                }
                total
            })
        });

        let occ: Arc<OccABTree> = Arc::new(OccABTree::new());
        prefill_map(&*occ, key_range);
        group.bench_function(BenchmarkId::new("occ-abtree", format!("zipf{zipf}")), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_fixed_ops(&occ, &dist, mix, threads, OPS_PER_BATCH);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
