//! table1: throughput change upon enabling persistence — volatile OCC/Elim
//! vs durable p-OCC/p-Elim at the maximum thread count, 1M keys, update rates
//! {100, 50, 10}%, uniform and Zipf(1).  Criterion reports the throughput of
//! each cell; the relative overhead table itself is printed by the
//! `table1_overhead` driver binary.

use bench_suite::{configure, OPS_PER_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setbench::{default_thread_counts, MicrobenchConfig, MicrobenchInstance};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let threads = *default_thread_counts().last().unwrap();
    let mut group = c.benchmark_group("table1_persistence_overhead");
    configure(&mut group);
    group.throughput(Throughput::Elements(OPS_PER_BATCH));
    for &zipf in &[0.0, 1.0] {
        for &update_percent in &[100u32, 50, 10] {
            for (structure, durable) in [
                ("occ-abtree", false),
                ("p-occ-abtree", true),
                ("elim-abtree", false),
                ("p-elim-abtree", true),
            ] {
                abpmem::set_mode(if durable {
                    abpmem::PersistMode::Real
                } else {
                    abpmem::PersistMode::NoOp
                });
                let instance = MicrobenchInstance::new(MicrobenchConfig {
                    structure: structure.to_string(),
                    key_range: 1_000_000,
                    update_percent,
                    zipf,
                    threads,
                    duration: Duration::from_millis(0),
                    seed: 11,
                    ..Default::default()
                });
                let label = format!(
                    "{structure}/u{update_percent}/{}",
                    if zipf == 0.0 { "uniform" } else { "zipf1" }
                );
                group.bench_function(BenchmarkId::new(label, threads), |b| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            total += instance.run_ops(OPS_PER_BATCH);
                        }
                        total
                    })
                });
            }
        }
    }
    group.finish();
    abpmem::set_mode(abpmem::PersistMode::CountOnly);
}

criterion_group!(benches, bench);
criterion_main!(benches);
