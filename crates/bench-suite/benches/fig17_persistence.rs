//! fig17: persistent trees (p-OCC-ABtree, p-Elim-ABtree, FPTree-like) with 1M
//! keys and 50% updates, uniform and Zipf(1) access, real flush instructions.

use bench_suite::{bench_threads, configure, OPS_PER_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use setbench::{MicrobenchConfig, MicrobenchInstance};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    abpmem::set_mode(abpmem::PersistMode::Real);
    let mut group = c.benchmark_group("fig17_persistence");
    configure(&mut group);
    group.throughput(Throughput::Elements(OPS_PER_BATCH));
    for &zipf in &[0.0, 1.0] {
        for structure in setbench::persistent_structures() {
            for &threads in &bench_threads() {
                let instance = MicrobenchInstance::new(MicrobenchConfig {
                    structure: structure.to_string(),
                    key_range: 1_000_000,
                    update_percent: 50,
                    zipf,
                    threads,
                    duration: Duration::from_millis(0),
                    seed: 5,
                    ..Default::default()
                });
                let label = format!(
                    "{structure}/{}",
                    if zipf == 0.0 { "uniform" } else { "zipf1" }
                );
                group.bench_function(BenchmarkId::new(label, threads), |b| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            total += instance.run_ops(OPS_PER_BATCH);
                        }
                        total
                    })
                });
            }
        }
    }
    group.finish();
    abpmem::set_mode(abpmem::PersistMode::CountOnly);
}

criterion_group!(benches, bench);
criterion_main!(benches);
