//! Ablation (paper §7): MCS node locks vs test-and-test-and-set node locks in
//! the OCC-ABtree, under a contended update-only workload.

use std::sync::Arc;
use std::time::Duration;

use abtree::AbTree;
use absync::{McsLock, TatasLock};
use bench_suite::{configure, prefill_map, run_fixed_ops, OPS_PER_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use workload::{KeyDistribution, OperationMix};

fn bench(c: &mut Criterion) {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let key_range = 10_000u64;
    let mut group = c.benchmark_group("ablation_locks");
    configure(&mut group);
    group.throughput(Throughput::Elements(OPS_PER_BATCH));
    let dist = KeyDistribution::zipfian(key_range, 1.0);
    let mix = OperationMix::from_update_percent(100);

    let mcs: Arc<AbTree<false, McsLock>> = Arc::new(AbTree::new());
    prefill_map(&*mcs, key_range);
    group.bench_function(BenchmarkId::new("occ-abtree/mcs", threads), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_fixed_ops(&mcs, &dist, mix, threads, OPS_PER_BATCH);
            }
            total
        })
    });

    let tatas: Arc<AbTree<false, TatasLock>> = Arc::new(AbTree::new());
    prefill_map(&*tatas, key_range);
    group.bench_function(BenchmarkId::new("occ-abtree/tatas", threads), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += run_fixed_ops(&tatas, &dist, mix, threads, OPS_PER_BATCH);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
