//! fig13: SetBench microbenchmark with 100,000 keys (update-heavy row shown;
//! the full update-rate grid is produced by the `fig12_15` driver binary).

use bench_suite::{bench_microbench_figure, bench_structures};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let structures = bench_structures();
    bench_microbench_figure(c, "fig13_u100", 100_000, 100, &structures);
    bench_microbench_figure(c, "fig13_u5", 100_000, 5, &structures);
}

criterion_group!(benches, bench);
criterion_main!(benches);
