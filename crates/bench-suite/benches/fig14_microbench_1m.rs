//! fig14: SetBench microbenchmark with 1,000,000 keys (update-heavy row shown;
//! the full update-rate grid is produced by the `fig12_15` driver binary).

use bench_suite::{bench_microbench_figure, bench_structures};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let structures = bench_structures();
    bench_microbench_figure(c, "fig14_u100", 1_000_000, 100, &structures);
    bench_microbench_figure(c, "fig14_u5", 1_000_000, 5, &structures);
}

criterion_group!(benches, bench);
criterion_main!(benches);
