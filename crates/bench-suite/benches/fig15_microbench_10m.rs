//! fig15: SetBench microbenchmark with 10M keys.  The prefill for 10M keys is
//! expensive, so only the headline structures are benched here; the full
//! sweep is produced by `cargo run -p setbench --release --bin fig12_15 -- 10000000`.

use bench_suite::bench_microbench_figure;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let structures = vec!["elim-abtree", "catree"];
    bench_microbench_figure(c, "fig15_u100", 10_000_000, 100, &structures);
}

criterion_group!(benches, bench);
criterion_main!(benches);
