//! Shared helpers for the Criterion benchmark suite.
//!
//! Every figure and table of the paper's evaluation has a corresponding bench
//! target in `benches/` (see `DESIGN.md` §5 for the experiment index).  The
//! benches measure the wall-clock time to complete a fixed batch of
//! operations across a configured thread count, which Criterion reports as a
//! throughput (elements = operations per second); the full-duration sweeps
//! with the paper's exact methodology live in the `setbench` driver binaries.
//!
//! Grids are kept small by default so `cargo bench` completes in minutes; set
//! `SETBENCH_BENCH_FULL=1` to sweep every structure and thread count.

use std::sync::Arc;
use std::time::{Duration, Instant};

use abtree::{MapHandle as _, SessionMap};
use criterion::{BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use setbench::{default_thread_counts, MicrobenchConfig, MicrobenchInstance};
use workload::{KeyDistribution, Operation, OperationMix};

/// Operations per measurement batch.
pub const OPS_PER_BATCH: u64 = 50_000;

/// Whether the full grid was requested via `SETBENCH_BENCH_FULL=1`.
pub fn full_grid() -> bool {
    std::env::var("SETBENCH_BENCH_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Structures benched by default (the paper's trees plus their closest
/// competitor); the full grid covers every registered structure.
pub fn bench_structures() -> Vec<&'static str> {
    if full_grid() {
        setbench::volatile_structures()
    } else {
        vec!["elim-abtree", "occ-abtree", "catree"]
    }
}

/// Thread counts benched by default: single-threaded and the machine maximum.
pub fn bench_threads() -> Vec<usize> {
    if full_grid() {
        default_thread_counts()
    } else {
        let max = *default_thread_counts().last().unwrap();
        vec![max]
    }
}

/// Standard Criterion group configuration: short warm-up / measurement so the
/// whole suite finishes quickly.
pub fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_millis(900));
    group.sample_size(10);
}

/// Registers one microbenchmark figure: `key_range` keys, the given update
/// rate, uniform and Zipf(1) access, over [`bench_structures`] and
/// [`bench_threads`].
pub fn bench_microbench_figure(
    c: &mut Criterion,
    figure: &str,
    key_range: u64,
    update_percent: u32,
    structures: &[&str],
) {
    let mut group = c.benchmark_group(figure);
    configure(&mut group);
    group.throughput(Throughput::Elements(OPS_PER_BATCH));
    for &zipf in &[0.0, 1.0] {
        for &structure in structures {
            for &threads in &bench_threads() {
                let id = BenchmarkId::new(
                    format!("{structure}/{}", if zipf == 0.0 { "uniform" } else { "zipf1" }),
                    threads,
                );
                let instance = MicrobenchInstance::new(MicrobenchConfig {
                    structure: structure.to_string(),
                    key_range,
                    update_percent,
                    zipf,
                    threads,
                    duration: Duration::from_millis(0),
                    seed: 42,
                    ..Default::default()
                });
                group.bench_function(id, |b| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            total += instance.run_ops(OPS_PER_BATCH);
                        }
                        total
                    })
                });
            }
        }
    }
    group.finish();
}

/// Runs `total_ops` operations over `map` from `threads` threads with the
/// given distribution/mix; returns the elapsed time.  Used by the ablation
/// benches, which construct tree variants not exposed through the registry.
/// Each worker opens one statically-dispatched session
/// ([`SessionMap::session`]) for its whole batch, so the measured loop is
/// monomorphized — no per-op virtual call.
pub fn run_fixed_ops<M: SessionMap + 'static>(
    map: &Arc<M>,
    dist: &KeyDistribution,
    mix: OperationMix,
    threads: usize,
    total_ops: u64,
) -> Duration {
    let per_thread = total_ops / threads.max(1) as u64;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let map = Arc::clone(map);
            let dist = dist.clone();
            scope.spawn(move || {
                let mut session = map.session();
                let mut rng = StdRng::seed_from_u64(0xA11CE ^ t as u64);
                let mut scan_buf: Vec<(u64, u64)> = Vec::new();
                let mut batch = setbench::BatchScratch::default();
                for _ in 0..per_thread {
                    let key = dist.sample(&mut rng);
                    match mix.sample(&mut rng) {
                        Operation::Insert => {
                            std::hint::black_box(session.insert(key, key));
                        }
                        Operation::Delete => {
                            std::hint::black_box(session.delete(key));
                        }
                        Operation::Find => {
                            std::hint::black_box(session.get(key));
                        }
                        Operation::Scan => {
                            let len = rng.gen_range(1..=workload::DEFAULT_MAX_SCAN_LEN);
                            session.range(key, key.saturating_add(len - 1), &mut scan_buf);
                            std::hint::black_box(scan_buf.len());
                        }
                        Operation::MGet => {
                            batch.mget(&mut session, &dist, key, &mut rng);
                        }
                        Operation::MPut => {
                            std::hint::black_box(batch.mput(&mut session, &dist, key, &mut rng));
                        }
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// Prefills `map` to half of `key_range` through a single session.
pub fn prefill_map<M: SessionMap>(map: &M, key_range: u64) {
    let mut session = map.session();
    let mut rng = StdRng::seed_from_u64(7);
    let mut inserted = 0;
    while inserted < key_range / 2 {
        if session.insert(rng.gen_range(0..key_range), 0).is_none() {
            inserted += 1;
        }
    }
}
