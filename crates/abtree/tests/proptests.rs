//! Property-based tests: the trees must behave exactly like a sequential
//! ordered map for any sequence of operations, and their structural
//! invariants must hold after any such sequence.

use std::collections::BTreeMap;

use abtree::{ElimABTree, OccABTree};
use proptest::prelude::*;

/// An operation in a generated workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Get(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Delete),
        (0..key_space).prop_map(Op::Get),
    ]
}

/// Applies `ops` to both the tree under test and a `BTreeMap` oracle,
/// asserting identical observable behaviour, then checks invariants.
macro_rules! oracle_test {
    ($tree:expr, $ops:expr) => {{
        let tree = $tree;
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        for op in $ops {
            match *op {
                Op::Insert(k, v) => {
                    let expected = match oracle.get(&k) {
                        Some(&old) => Some(old),
                        None => {
                            oracle.insert(k, v);
                            None
                        }
                    };
                    prop_assert_eq!(tree.insert(k, v), expected, "insert({}, {})", k, v);
                }
                Op::Delete(k) => {
                    let expected = oracle.remove(&k);
                    prop_assert_eq!(tree.delete(k), expected, "delete({})", k);
                }
                Op::Get(k) => {
                    let expected = oracle.get(&k).copied();
                    prop_assert_eq!(tree.get(k), expected, "get({})", k);
                }
            }
        }
        prop_assert!(tree.check_invariants().is_ok(), "invariants violated");
        let collected = tree.collect();
        let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
        prop_assert_eq!(collected, expected, "final contents differ from oracle");
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Small key space: lots of duplicate inserts/deletes of the same key,
    /// exercising the "already present"/"already absent" paths and the
    /// elimination record logic.
    #[test]
    fn occ_matches_btreemap_small_keyspace(ops in proptest::collection::vec(op_strategy(32), 1..600)) {
        let tree: OccABTree = OccABTree::new();
        oracle_test!(&tree, ops.iter());
    }

    #[test]
    fn elim_matches_btreemap_small_keyspace(ops in proptest::collection::vec(op_strategy(32), 1..600)) {
        let tree: ElimABTree = ElimABTree::new();
        oracle_test!(&tree, ops.iter());
    }

    /// Larger key space: the tree grows several levels, exercising splitting
    /// inserts, fixTagged and fixUnderfull along random shapes.
    #[test]
    fn occ_matches_btreemap_large_keyspace(ops in proptest::collection::vec(op_strategy(10_000), 1..1_000)) {
        let tree: OccABTree = OccABTree::new();
        oracle_test!(&tree, ops.iter());
    }

    #[test]
    fn elim_matches_btreemap_large_keyspace(ops in proptest::collection::vec(op_strategy(10_000), 1..1_000)) {
        let tree: ElimABTree = ElimABTree::new();
        oracle_test!(&tree, ops.iter());
    }

    /// Insert-then-delete-everything must always return to an empty tree with
    /// a single root leaf.
    #[test]
    fn insert_all_delete_all_returns_to_empty(keys in proptest::collection::btree_set(0u64..100_000, 1..800)) {
        let tree: ElimABTree = ElimABTree::new();
        for &k in &keys {
            prop_assert_eq!(tree.insert(k, k ^ 0xdead), None);
        }
        prop_assert_eq!(tree.len(), keys.len());
        prop_assert!(tree.check_invariants().is_ok());
        for &k in &keys {
            prop_assert_eq!(tree.delete(k), Some(k ^ 0xdead));
        }
        prop_assert!(tree.is_empty());
        prop_assert!(tree.check_invariants().is_ok());
        let stats = tree.stats();
        prop_assert_eq!(stats.height, 1);
        prop_assert_eq!(stats.leaves, 1);
    }

    /// The key-sum validation used by the benchmark harness agrees with the
    /// actual contents for arbitrary workloads.
    #[test]
    fn key_sum_matches_contents(ops in proptest::collection::vec(op_strategy(4_000), 1..800)) {
        let tree: OccABTree = OccABTree::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => { tree.insert(k, v); }
                Op::Delete(k) => { tree.delete(k); }
                Op::Get(k) => { tree.get(k); }
            }
        }
        let expected: u128 = tree.collect().iter().map(|&(k, _)| k as u128).sum();
        prop_assert_eq!(tree.key_sum(), expected);
    }
}
