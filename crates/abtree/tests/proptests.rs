//! Randomized oracle tests: the trees must behave exactly like a sequential
//! ordered map for any sequence of operations, and their structural
//! invariants must hold after any such sequence.
//!
//! These were originally `proptest` properties; the offline build cannot use
//! the `proptest` crate, so the same properties are driven by seeded
//! pseudo-random workloads (64 cases each, like the original
//! `ProptestConfig::with_cases(64)`).  Every failure message includes the
//! case seed, so a failing workload can be replayed deterministically.

use std::collections::{BTreeMap, BTreeSet};

use abtree::{ConcurrentMap, ElimABTree, OccABTree};
use rand::prelude::*;

const CASES: u64 = 64;

/// An operation in a generated workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Get(u64),
}

fn random_ops(rng: &mut StdRng, key_space: u64, max_len: usize) -> Vec<Op> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            let k = rng.gen_range(0..key_space);
            match rng.gen_range(0..3u32) {
                0 => Op::Insert(k, rng.gen::<u64>()),
                1 => Op::Delete(k),
                _ => Op::Get(k),
            }
        })
        .collect()
}

/// Applies `ops` (through a per-thread session handle, as real callers do)
/// to both the tree under test and a `BTreeMap` oracle, asserting identical
/// observable behaviour, then checks invariants.
fn oracle_test<M>(tree: &M, ops: &[Op], collect: impl Fn(&M) -> Vec<(u64, u64)>, seed: u64)
where
    M: ConcurrentMap,
{
    let mut session = tree.handle();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for op in ops {
        match *op {
            Op::Insert(k, v) => {
                let expected = match oracle.get(&k) {
                    Some(&old) => Some(old),
                    None => {
                        oracle.insert(k, v);
                        None
                    }
                };
                assert_eq!(session.insert(k, v), expected, "insert({k}, {v}) [seed {seed}]");
            }
            Op::Delete(k) => {
                let expected = oracle.remove(&k);
                assert_eq!(session.delete(k), expected, "delete({k}) [seed {seed}]");
            }
            Op::Get(k) => {
                let expected = oracle.get(&k).copied();
                assert_eq!(session.get(k), expected, "get({k}) [seed {seed}]");
            }
        }
    }
    drop(session);
    let collected = collect(tree);
    let expected: Vec<(u64, u64)> = oracle.into_iter().collect();
    assert_eq!(collected, expected, "final contents differ from oracle [seed {seed}]");
}

/// Small key space: lots of duplicate inserts/deletes of the same key,
/// exercising the "already present"/"already absent" paths and the
/// elimination record logic.
#[test]
fn occ_matches_btreemap_small_keyspace() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0CC_0001 ^ seed);
        let ops = random_ops(&mut rng, 32, 600);
        let tree: OccABTree = OccABTree::new();
        oracle_test(&tree, &ops, |t| t.collect(), seed);
        tree.check_invariants().unwrap_or_else(|e| panic!("invariants [seed {seed}]: {e:?}"));
    }
}

#[test]
fn elim_matches_btreemap_small_keyspace() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE11_0001 ^ seed);
        let ops = random_ops(&mut rng, 32, 600);
        let tree: ElimABTree = ElimABTree::new();
        oracle_test(&tree, &ops, |t| t.collect(), seed);
        tree.check_invariants().unwrap_or_else(|e| panic!("invariants [seed {seed}]: {e:?}"));
    }
}

/// Larger key space: the tree grows several levels, exercising splitting
/// inserts, fixTagged and fixUnderfull along random shapes.
#[test]
fn occ_matches_btreemap_large_keyspace() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0CC_0002 ^ seed);
        let ops = random_ops(&mut rng, 10_000, 1_000);
        let tree: OccABTree = OccABTree::new();
        oracle_test(&tree, &ops, |t| t.collect(), seed);
        tree.check_invariants().unwrap_or_else(|e| panic!("invariants [seed {seed}]: {e:?}"));
    }
}

#[test]
fn elim_matches_btreemap_large_keyspace() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE11_0002 ^ seed);
        let ops = random_ops(&mut rng, 10_000, 1_000);
        let tree: ElimABTree = ElimABTree::new();
        oracle_test(&tree, &ops, |t| t.collect(), seed);
        tree.check_invariants().unwrap_or_else(|e| panic!("invariants [seed {seed}]: {e:?}"));
    }
}

/// Insert-then-delete-everything must always return to an empty tree with
/// a single root leaf.
#[test]
fn insert_all_delete_all_returns_to_empty() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xDE1_0003 ^ seed);
        let len = rng.gen_range(1..800usize);
        let keys: BTreeSet<u64> = (0..len).map(|_| rng.gen_range(0..100_000u64)).collect();

        let tree: ElimABTree = ElimABTree::new();
        let mut tree = tree.handle();
        for &k in &keys {
            assert_eq!(tree.insert(k, k ^ 0xdead), None, "[seed {seed}]");
        }
        assert_eq!(tree.len(), keys.len(), "[seed {seed}]");
        assert!(tree.check_invariants().is_ok(), "[seed {seed}]");
        for &k in &keys {
            assert_eq!(tree.delete(k), Some(k ^ 0xdead), "[seed {seed}]");
        }
        assert!(tree.is_empty(), "[seed {seed}]");
        assert!(tree.check_invariants().is_ok(), "[seed {seed}]");
        let stats = tree.stats();
        assert_eq!(stats.height, 1, "[seed {seed}]");
        assert_eq!(stats.leaves, 1, "[seed {seed}]");
    }
}

/// The native leaf-walking `range` agrees with a `BTreeMap` oracle at every
/// point of a randomized insert/delete interleaving, across window shapes:
/// random `[lo, hi]` windows, single points, inverted bounds (`lo > hi`),
/// and the whole key space (which spans every leaf boundary).
#[test]
fn native_range_matches_btreemap_oracle() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5CA_0005 ^ seed);
        // Alternate between a dense small key space (leaves churn through
        // splits and merges) and a sparse large one.
        let key_space: u64 = if seed % 2 == 0 { 64 } else { 20_000 };
        let tree: ElimABTree = ElimABTree::new();
        let mut tree = tree.handle();
        let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
        let mut out = Vec::new();
        for step in 0..800 {
            let k = rng.gen_range(0..key_space);
            if rng.gen_bool(0.6) {
                if tree.insert(k, k ^ seed).is_none() {
                    oracle.insert(k, k ^ seed);
                }
            } else {
                assert_eq!(tree.delete(k), oracle.remove(&k), "[seed {seed}]");
            }
            if step % 16 != 0 {
                continue;
            }
            let (lo, hi) = match rng.gen_range(0..4u32) {
                0 => {
                    let a = rng.gen_range(0..key_space);
                    let b = rng.gen_range(0..key_space);
                    (a.min(b), a.max(b))
                }
                1 => {
                    let a = rng.gen_range(0..key_space);
                    (a, a) // single point
                }
                2 => {
                    let a = rng.gen_range(1..key_space);
                    (a, a - 1) // inverted: must come back empty
                }
                _ => (0, u64::MAX - 1), // whole key space
            };
            tree.range(lo, hi, &mut out);
            let expected: Vec<(u64, u64)> = if lo > hi {
                Vec::new()
            } else {
                oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
            };
            assert_eq!(out, expected, "range({lo}, {hi}) [seed {seed}]");
            if lo <= hi {
                assert_eq!(
                    tree.scan_len(lo, hi - lo + 1),
                    expected.len(),
                    "scan_len({lo}, {}) [seed {seed}]",
                    hi - lo + 1
                );
            }
        }
    }
}

/// Deterministic leaf-boundary sweep: with contiguous keys the tree packs
/// leaves tightly, so stepping windows across the space crosses every leaf
/// boundary; deleting a band afterwards moves the boundaries and the windows
/// must still agree with the oracle.
#[test]
fn range_windows_across_leaf_boundaries() {
    fn check(
        tree: &mut abtree::TreeHandle<'_, false>,
        oracle: &BTreeMap<u64, u64>,
        out: &mut Vec<(u64, u64)>,
    ) {
        for lo in (0..1_000u64).step_by(37) {
            for width in [0u64, 1, 10, 150] {
                let hi = lo + width;
                tree.range(lo, hi, out);
                let expected: Vec<(u64, u64)> =
                    oracle.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(*out, expected, "range({lo}, {hi})");
            }
        }
    }

    let tree: OccABTree = OccABTree::new();
    let mut tree = tree.handle();
    let mut oracle: BTreeMap<u64, u64> = BTreeMap::new();
    for k in 0..1_000u64 {
        tree.insert(k, k * 3);
        oracle.insert(k, k * 3);
    }
    let mut out = Vec::new();
    check(&mut tree, &oracle, &mut out);
    // Delete a band in the middle (forces merges/redistributions) and a
    // comb pattern elsewhere, then sweep again.
    for k in 400..600u64 {
        tree.delete(k);
        oracle.remove(&k);
    }
    for k in (0..400u64).step_by(3) {
        tree.delete(k);
        oracle.remove(&k);
    }
    tree.check_invariants().unwrap();
    check(&mut tree, &oracle, &mut out);
}

/// The key-sum validation used by the benchmark harness agrees with the
/// actual contents for arbitrary workloads.
#[test]
fn key_sum_matches_contents() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5F3_0004 ^ seed);
        let ops = random_ops(&mut rng, 4_000, 800);
        let tree: OccABTree = OccABTree::new();
        let mut tree = tree.handle();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    tree.insert(k, v);
                }
                Op::Delete(k) => {
                    tree.delete(k);
                }
                Op::Get(k) => {
                    tree.get(k);
                }
            }
        }
        let expected: u128 = tree.collect().iter().map(|&(k, _)| k as u128).sum();
        assert_eq!(tree.key_sum(), expected, "[seed {seed}]");
    }
}
