//! Multi-threaded stress tests for the OCC-ABtree and Elim-ABtree.
//!
//! The key validation technique mirrors the paper's §6 "Validation": every
//! thread tracks the sum of keys it successfully inserted and deleted; at the
//! end, (sum inserted - sum deleted) across all threads must equal the sum of
//! keys remaining in the tree.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use abtree::{AbTree, ElimABTree, OccABTree};
use absync::RawNodeLock;
use rand::prelude::*;

fn thread_count() -> usize {
    abtree::par::test_parallelism().clamp(2, 8)
}

/// Runs a mixed insert/delete/find workload and validates the key-sum
/// invariant plus the structural invariants.
fn run_mixed_workload<const ELIM: bool, L: RawNodeLock>(
    tree: Arc<AbTree<ELIM, L>>,
    key_range: u64,
    ops_per_thread: usize,
    update_percent: u32,
) {
    let threads = thread_count();
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        handles.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
            let mut inserted_sum: i128 = 0;
            let mut deleted_sum: i128 = 0;
            for _ in 0..ops_per_thread {
                let key = rng.gen_range(0..key_range);
                let p = rng.gen_range(0..100u32);
                if p < update_percent / 2 {
                    if tree.insert(key, key.wrapping_mul(31)).is_none() {
                        inserted_sum += key as i128;
                    }
                } else if p < update_percent {
                    if tree.delete(key).is_some() {
                        deleted_sum += key as i128;
                    }
                } else {
                    // Reads must observe only values we actually store.
                    if let Some(v) = tree.get(key) {
                        assert_eq!(v, key.wrapping_mul(31), "corrupt value for {key}");
                    }
                }
            }
            inserted_sum - deleted_sum
        }));
    }
    let mut net: i128 = 0;
    for h in handles {
        net += h.join().unwrap();
    }
    tree.check_invariants().expect("invariants violated");
    assert_eq!(
        tree.key_sum() as i128,
        net,
        "key-sum validation failed (paper §6 validation scheme)"
    );
}

#[test]
fn occ_uniform_update_heavy() {
    let tree: Arc<OccABTree> = Arc::new(OccABTree::new());
    run_mixed_workload(tree, 10_000, 40_000, 100);
}

#[test]
fn occ_uniform_mixed() {
    let tree: Arc<OccABTree> = Arc::new(OccABTree::new());
    run_mixed_workload(tree, 50_000, 40_000, 40);
}

#[test]
fn elim_uniform_update_heavy() {
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    run_mixed_workload(tree, 10_000, 40_000, 100);
}

#[test]
fn elim_high_contention_few_keys() {
    // A tiny key range concentrates all updates on one or two leaves, which
    // is exactly the regime where publishing elimination fires.
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    run_mixed_workload(tree, 16, 60_000, 100);
}

#[test]
fn occ_high_contention_few_keys() {
    let tree: Arc<OccABTree> = Arc::new(OccABTree::new());
    run_mixed_workload(tree, 16, 60_000, 100);
}

#[test]
fn elim_single_hot_key() {
    // Every thread repeatedly inserts/deletes the *same* key: the most
    // extreme elimination scenario (paper Fig. 11's setting).
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let mut main_session = tree.handle();
    // Surround the hot key so the leaf never becomes the root-only case.
    for k in 0..8u64 {
        main_session.insert(k * 100, 0);
    }
    let threads = thread_count();
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        handles.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut rng = StdRng::seed_from_u64(t as u64);
            let mut net = 0i64;
            for _ in 0..50_000 {
                if rng.gen_bool(0.5) {
                    if tree.insert(42, 4242).is_none() {
                        net += 1;
                    }
                } else if tree.delete(42).is_some() {
                    net -= 1;
                }
            }
            net
        }));
    }
    let mut net = 0i64;
    for h in handles {
        net += h.join().unwrap();
    }
    tree.check_invariants().unwrap();
    let present = main_session.get(42).is_some();
    assert_eq!(net, if present { 1 } else { 0 });
    // The value, when present, must be the one every inserter writes.
    if present {
        assert_eq!(main_session.get(42), Some(4242));
    }
}

#[test]
fn concurrent_readers_never_see_phantoms() {
    // Writers insert keys from a fixed "legal" set; readers assert that any
    // key they observe maps to the writer's value function.
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    for t in 0..thread_count() / 2 {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut rng = StdRng::seed_from_u64(77 + t as u64);
            while !stop.load(Ordering::Relaxed) {
                let k = rng.gen_range(0..2_000u64);
                if rng.gen_bool(0.5) {
                    tree.insert(k, k + 1);
                } else {
                    tree.delete(k);
                }
            }
        }));
    }
    let mut readers = Vec::new();
    for t in 0..thread_count() / 2 {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut rng = StdRng::seed_from_u64(999 + t as u64);
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = rng.gen_range(0..2_000u64);
                if let Some(v) = tree.get(k) {
                    assert_eq!(v, k + 1, "reader observed a value never written");
                    observed += 1;
                }
            }
            observed
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    for r in readers {
        r.join().unwrap();
    }
    tree.check_invariants().unwrap();
}

/// Scanners racing inserters must only ever observe atomic snapshots.
///
/// Each writer inserts the keys of a disjoint block in **ascending** order,
/// so any linearization of the execution leaves each block's present keys a
/// contiguous prefix of the block.  A non-atomic scan can observe a key
/// while missing an earlier-inserted (smaller) key of the same block; the
/// validated leaf-walking scan must never do so, and consequently each
/// block's observed key-sum must be one a linearization permits (the sum of
/// a prefix).  Needs real parallelism to race; skips on single-core
/// machines like the other contention tests.
#[test]
fn scans_racing_inserters_observe_only_linearizable_snapshots() {
    if abtree::par::test_parallelism() < 2 {
        eprintln!("skipping scan race test: needs >= 2 hardware threads (or AB_FORCE_PARALLEL=1)");
        return;
    }
    const WRITERS: u64 = 3;
    const BLOCK: u64 = 4_000;
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let stop = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for w in 0..WRITERS {
        let tree = Arc::clone(&tree);
        writers.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            for i in 0..BLOCK {
                let k = w * BLOCK + i;
                assert_eq!(tree.insert(k, k), None);
            }
        }));
    }

    let mut scanners = Vec::new();
    for s in 0..2 {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        scanners.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut rng = StdRng::seed_from_u64(0x5CA + s as u64);
            let mut out = Vec::new();
            let mut scans = 0u64;
            loop {
                let done = stop.load(Ordering::Acquire);
                // Mix whole-space scans with random sub-windows.
                let (lo, hi) = if rng.gen_bool(0.5) {
                    (0, WRITERS * BLOCK - 1)
                } else {
                    let a = rng.gen_range(0..WRITERS * BLOCK);
                    let b = rng.gen_range(0..WRITERS * BLOCK);
                    (a.min(b), a.max(b))
                };
                tree.range(lo, hi, &mut out);
                assert!(
                    out.windows(2).all(|w| w[0].0 < w[1].0),
                    "scan output must be sorted and duplicate-free"
                );
                for w in 0..WRITERS {
                    let base = w * BLOCK;
                    // Keys of block `w` inside the scanned window, in order.
                    let observed: Vec<u64> = out
                        .iter()
                        .map(|e| e.0)
                        .filter(|&k| k >= base && k < base + BLOCK)
                        .collect();
                    // The window clips the block to [from, ..]; an atomic
                    // snapshot must contain a *contiguous run* starting at
                    // the clip point: key `k` present implies every earlier-
                    // inserted key of the block (down to the clip) present.
                    let from = lo.max(base);
                    for (i, &k) in observed.iter().enumerate() {
                        assert_eq!(
                            k,
                            from + i as u64,
                            "scan saw key {k} but missed an earlier-inserted \
                             key of block {w}: not an atomic snapshot"
                        );
                    }
                    let n = observed.len() as u64;
                    let lin_sum = n * from + n.saturating_sub(1) * n / 2;
                    assert_eq!(
                        observed.iter().sum::<u64>(),
                        lin_sum,
                        "block {w} key-sum is one no linearization permits"
                    );
                }
                scans += 1;
                if done {
                    return scans;
                }
            }
        }));
    }

    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    for s in scanners {
        assert!(s.join().unwrap() > 0, "scanner never completed a scan");
    }
    // After the race, a scan sees exactly everything.
    let mut out = Vec::new();
    tree.handle().range(0, WRITERS * BLOCK - 1, &mut out);
    assert_eq!(out.len() as u64, WRITERS * BLOCK);
    tree.check_invariants().unwrap();
}

#[test]
fn grow_concurrently_then_verify_contents() {
    // Threads insert disjoint key ranges; afterwards every key must be
    // present exactly once with its own value.
    let tree: Arc<OccABTree> = Arc::new(OccABTree::new());
    let per_thread = 20_000u64;
    let threads = thread_count() as u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        handles.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let base = t * per_thread;
            for k in base..base + per_thread {
                assert_eq!(tree.insert(k, !k), None);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    tree.check_invariants().unwrap();
    assert_eq!(tree.len() as u64, threads * per_thread);
    let mut rng = StdRng::seed_from_u64(3);
    let mut session = tree.handle();
    for _ in 0..10_000 {
        let k = rng.gen_range(0..threads * per_thread);
        assert_eq!(session.get(k), Some(!k));
    }
}

#[test]
fn concurrent_deletes_shrink_to_empty() {
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let n = 50_000u64;
    let mut prefill = tree.handle();
    for k in 0..n {
        prefill.insert(k, k);
    }
    drop(prefill);
    let threads = thread_count() as u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        handles.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut deleted = 0u64;
            let mut k = t;
            while k < n {
                if tree.delete(k).is_some() {
                    deleted += 1;
                }
                k += threads;
            }
            deleted
        }));
    }
    let mut total = 0u64;
    for h in handles {
        total += h.join().unwrap();
    }
    assert_eq!(total, n);
    tree.check_invariants().unwrap();
    assert!(tree.is_empty());
}

#[test]
fn contended_inserts_of_same_keys_agree() {
    // All threads try to insert the same key set with different values; for
    // each key exactly one thread must win, and the stored value must be the
    // winner's.
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let threads = thread_count() as u64;
    let keys = 5_000u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        handles.push(std::thread::spawn(move || {
            let mut tree = tree.handle();
            let mut wins = Vec::new();
            for k in 0..keys {
                if tree.insert(k, t).is_none() {
                    wins.push(k);
                }
            }
            wins
        }));
    }
    let mut all_wins = vec![0u32; keys as usize];
    let mut winner_of = vec![u64::MAX; keys as usize];
    for (t, h) in handles.into_iter().enumerate() {
        for k in h.join().unwrap() {
            all_wins[k as usize] += 1;
            winner_of[k as usize] = t as u64;
        }
    }
    assert!(all_wins.iter().all(|&c| c == 1), "every key has one winner");
    let mut session = tree.handle();
    for k in 0..keys {
        assert_eq!(session.get(k), Some(winner_of[k as usize]));
    }
    tree.check_invariants().unwrap();
}
