//! The trees under the hazard-pointer reclamation backend, plus the
//! stalled-reader separation the backend exists for.
//!
//! `abebr` offers two SMR policies behind one `Collector` facade: DEBRA-style
//! epochs (the default used everywhere else in the test suite) and hazard
//! pointers (`Collector::new_hp`).  These tests re-run the key-sum stress
//! validation with the trees mounted on an HP collector — exercising the
//! fine-mode protect/validate descent and the escalation on structural
//! updates — and then demonstrate the bounded-garbage property: a reader
//! parked inside a pinned region freezes reclamation tree-wide under EBR,
//! while under HP (fine mode) everyone else keeps reclaiming.

use std::sync::Arc;

use abebr::{Collector, SmrPolicy};
use abtree::AbTree;
use rand::prelude::*;

type ElimTree = AbTree<true>;
type OccTree = AbTree<false>;

fn thread_count() -> usize {
    abtree::par::test_parallelism().clamp(2, 8)
}

/// Mixed insert/delete/get churn with per-thread key-sum bookkeeping; the
/// final key sum of the tree must equal the net sum of successful updates.
fn run_mixed_workload<const ELIM: bool>(tree: Arc<AbTree<ELIM>>, ops_per_thread: usize) {
    let threads = thread_count();
    let mut workers = Vec::new();
    for t in 0..threads {
        let tree = Arc::clone(&tree);
        workers.push(std::thread::spawn(move || {
            let mut h = tree.handle();
            let mut rng = StdRng::seed_from_u64(0x5158 + t as u64);
            let mut net: i128 = 0;
            for _ in 0..ops_per_thread {
                let key = rng.gen_range(1..2048u64);
                match rng.gen_range(0..100u32) {
                    0..=39 => {
                        if h.insert(key, key ^ 0xF00D).is_none() {
                            net += key as i128;
                        }
                    }
                    40..=79 => {
                        if h.delete(key).is_some() {
                            net -= key as i128;
                        }
                    }
                    _ => {
                        if let Some(v) = h.get(key) {
                            assert_eq!(v, key ^ 0xF00D, "corrupt value for key {key}");
                        }
                    }
                }
            }
            net
        }));
    }
    let expected: i128 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(tree.key_sum() as i128, expected, "key-sum validation failed");
    tree.check_invariants().unwrap();
}

#[test]
fn elim_abtree_key_sum_under_hazard_pointers() {
    let tree: Arc<ElimTree> = Arc::new(AbTree::with_collector(Collector::new_hp()));
    assert_eq!(tree.collector().policy(), SmrPolicy::Hp);
    run_mixed_workload(tree, 20_000);
}

#[test]
fn occ_abtree_key_sum_under_hazard_pointers() {
    let tree: Arc<OccTree> = Arc::new(AbTree::with_collector(Collector::new_hp()));
    run_mixed_workload(tree, 20_000);
}

#[test]
fn range_scans_are_consistent_under_hazard_pointers() {
    // Range scans take the coarse pin path; interleave them with point
    // updates and check every snapshot is a sane sorted window.
    let tree: Arc<ElimTree> = Arc::new(AbTree::with_collector(Collector::new_hp()));
    {
        let mut h = tree.handle();
        for k in (1..4096u64).step_by(2) {
            h.insert(k, k);
        }
    }
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let tree = Arc::clone(&tree);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut h = tree.handle();
            let mut rng = StdRng::seed_from_u64(7);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let k = rng.gen_range(1..4096u64) | 1; // keep keys odd
                if rng.gen_bool(0.5) {
                    h.insert(k, k);
                } else {
                    h.delete(k);
                }
            }
        })
    };
    let mut h = tree.handle();
    let mut out = Vec::new();
    for lo in (1..3000u64).step_by(97) {
        h.range(lo, lo + 200, &mut out);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "unsorted snapshot");
        for &(k, v) in &out {
            assert!(k >= lo && k <= lo + 200 && k % 2 == 1, "key {k} out of window");
            assert_eq!(v, k);
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

/// The acceptance scenario from the paper's §6 discussion of reclamation:
/// one reader parks inside a pinned region while a writer churns the tree.
/// Under EBR the parked pin freezes the epoch and garbage accumulates
/// without bound; under hazard pointers a parked *fine-mode* reader names
/// no nodes, so the writer's garbage keeps being reclaimed.
#[test]
fn stalled_reader_garbage_is_bounded_under_hp_not_ebr() {
    if abtree::par::test_parallelism() < 2 {
        eprintln!("skipping stalled-reader test: single hardware thread (set AB_FORCE_PARALLEL)");
        return;
    }

    // Churn one tree per backend with a parked reader and report the
    // unreclaimed gauge at the end of the churn.
    fn churn_with_stalled_reader(policy: SmrPolicy) -> u64 {
        let tree: Arc<ElimTree> = Arc::new(AbTree::with_collector(Collector::with_policy(policy)));
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let reader = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                let local = tree.collector().register();
                // Fine mode: under HP this names nothing (no watermark, no
                // hazards); under EBR it is an ordinary epoch pin.
                let guard = local.pin_fine();
                ready_tx.send(()).unwrap();
                park_rx.recv().unwrap(); // ...parked while pinned...
                drop(guard);
            })
        };
        ready_rx.recv().unwrap();

        {
            let mut h = tree.handle();
            for round in 0..3 {
                for k in 1..4096u64 {
                    h.insert(k, round);
                }
                for k in 1..4096u64 {
                    h.delete(k);
                }
            }
        }
        let unreclaimed = tree.collector().stats().unreclaimed;
        park_tx.send(()).unwrap();
        reader.join().unwrap();
        unreclaimed
    }

    let ebr = churn_with_stalled_reader(SmrPolicy::Ebr);
    let hp = churn_with_stalled_reader(SmrPolicy::Hp);
    eprintln!("stalled reader: unreclaimed ebr={ebr} hp={hp}");

    assert!(
        ebr >= 1_000,
        "EBR should accumulate garbage behind a stalled reader (unreclaimed = {ebr})"
    );
    assert!(
        hp <= 256,
        "HP garbage must stay bounded with a stalled fine-mode reader (unreclaimed = {hp})"
    );
    assert!(hp < ebr, "backends should separate (ebr={ebr}, hp={hp})");
}
