//! Lifecycle and pin-accounting tests for the per-thread session handles.
//!
//! The acceptance bar for the handle API: a handle-driven workload must
//! interact with the reclamation collector's thread registry ~once per
//! thread (at `handle()` acquisition), never per operation — verified
//! through `abebr::CollectorStats` — and handles must be safe through the
//! awkward parts of their lifecycle (drop while a guard is live, several
//! handles on one thread, handles outliving a completed run).

use std::sync::Arc;

use abtree::{ConcurrentMap, ElimABTree, KeySum, OccABTree};
use rand::prelude::*;

/// A handle-driven workload pays ~1 registry interaction per thread, not
/// one per operation.  This is the `CollectorStats`-backed check that no
/// `Collector::pin()` (registry-lookup pin) remains on the per-operation
/// paths of the trees.
#[test]
fn handle_workload_registers_once_per_thread() {
    const THREADS: u64 = 4;
    const OPS: u64 = 2_000;
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let baseline = tree.collector().stats();

    let mut workers = Vec::new();
    for t in 0..THREADS {
        let tree = Arc::clone(&tree);
        workers.push(std::thread::spawn(move || {
            let mut session = tree.handle();
            let mut rng = StdRng::seed_from_u64(t);
            let mut scan_buf = Vec::new();
            for i in 0..OPS {
                let k = rng.gen_range(0..512u64);
                match i % 4 {
                    0 => {
                        session.insert(k, k);
                    }
                    1 => {
                        session.delete(k);
                    }
                    2 => {
                        session.get(k);
                    }
                    _ => session.range(k, k + 16, &mut scan_buf),
                }
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }

    let stats = tree.collector().stats();
    let registry = stats.registry_pins - baseline.registry_pins;
    assert_eq!(
        registry, THREADS,
        "expected exactly one registry interaction per worker (the handle \
         acquisition), got {registry} for {THREADS} threads x {OPS} ops"
    );
    // Every operation pinned, and every one of those pins was a cheap local
    // re-pin through the session's own registration.
    assert!(
        stats.local_pins >= THREADS * OPS,
        "local re-pins ({}) must cover all {} operations",
        stats.local_pins,
        THREADS * OPS
    );
}

/// Two independent handles on one thread observe each other's writes and
/// can be dropped in either order.
#[test]
fn two_handles_on_one_thread() {
    let tree: OccABTree = OccABTree::new();
    let mut a = tree.handle();
    let mut b = tree.handle();
    assert_eq!(a.insert(1, 10), None);
    assert_eq!(b.insert(2, 20), None);
    assert_eq!(a.get(2), Some(20));
    assert_eq!(b.get(1), Some(10));
    drop(a);
    // The surviving handle keeps working after its sibling is gone.
    assert_eq!(b.delete(1), Some(10));
    assert_eq!(b.scan_len(0, 100), 1);
    drop(b);
    assert_eq!(tree.key_sum(), 2);
}

/// Dropping the EBR registration while one of its guards is still alive
/// must keep the registration (and the pinned epoch) alive until the guard
/// goes away; nothing is freed under the guard and nothing leaks after it.
#[test]
fn drop_handle_while_pinned_guard_outlives_it() {
    let collector = abebr::Collector::new();
    let handle = collector.register();
    let guard = handle.pin();
    drop(handle); // handle gone, guard still pinning the thread
    assert!(collector.debug_any_thread_pinned());
    let p = Box::into_raw(Box::new(0xAB_u64));
    unsafe { guard.defer_drop(p) };
    drop(guard);
    assert!(!collector.debug_any_thread_pinned());
    for _ in 0..8 {
        collector.flush();
    }
    assert_eq!(collector.stats().freed, 1, "retired object reclaimed");
}

/// A handle opened before a benchmark-style run remains fully usable after
/// the run's worker threads (and their handles) are gone, and agrees with
/// the quiescent key-sum.
#[test]
fn handle_outlives_a_completed_run() {
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let mut survivor = tree.handle();
    survivor.insert(1_000_000, 1);

    let mut net: i128 = 1_000_000;
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..3u64 {
            let tree = Arc::clone(&tree);
            workers.push(scope.spawn(move || {
                let mut session = tree.handle();
                let mut rng = StdRng::seed_from_u64(0xD0 + t);
                let mut local: i128 = 0;
                for _ in 0..5_000 {
                    let k = rng.gen_range(0..256u64);
                    if rng.gen_bool(0.5) {
                        if session.insert(k, k).is_none() {
                            local += k as i128;
                        }
                    } else if session.delete(k).is_some() {
                        local -= k as i128;
                    }
                }
                local
            }));
        }
        for w in workers {
            net += w.join().unwrap();
        }
    });

    // The pre-run handle still operates and sees the run's results.
    assert_eq!(survivor.get(1_000_000), Some(1));
    assert_eq!(survivor.delete(1_000_000), Some(1));
    net -= 1_000_000;
    assert_eq!(tree.key_sum() as i128, net, "paper §6 key-sum validation");
    survivor.check_invariants().unwrap();
}

/// N threads x 1 handle each, hammering a small key range, validated
/// against the `KeySum` checksum (needs real parallelism to stress the
/// pin/unpin protocol, so it is gated like the other contention tests).
#[test]
fn n_threads_one_handle_each_stress_keysum() {
    if abtree::par::test_parallelism() < 2 {
        eprintln!("skipping n_threads_one_handle_each_stress_keysum: needs >1 hardware thread (or AB_FORCE_PARALLEL=1)");
        return;
    }
    const THREADS: u64 = 8;
    const OPS: u64 = 30_000;
    let tree: Arc<ElimABTree> = Arc::new(ElimABTree::new());
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let tree = Arc::clone(&tree);
        workers.push(std::thread::spawn(move || {
            let mut session = tree.handle();
            let mut rng = StdRng::seed_from_u64(0x57E55 + t);
            let mut net: i128 = 0;
            for _ in 0..OPS {
                let k = rng.gen_range(0..128u64);
                if rng.gen_bool(0.5) {
                    if session.insert(k, k).is_none() {
                        net += k as i128;
                    }
                } else if session.delete(k).is_some() {
                    net -= k as i128;
                }
            }
            net
        }));
    }
    let mut net = 0i128;
    for w in workers {
        net += w.join().unwrap();
    }
    tree.check_invariants().unwrap();
    assert_eq!(KeySum::key_sum(&*tree) as i128, net);
}

/// The object-safe factory path (`Box<dyn ConcurrentMap>`) produces working
/// sessions too — the registry/harness shape.
#[test]
fn dyn_factory_sessions() {
    let boxed: Box<dyn ConcurrentMap> = Box::new(OccABTree::<absync::McsLock>::new());
    std::thread::scope(|scope| {
        for t in 0..2u64 {
            let map: &dyn ConcurrentMap = &*boxed;
            scope.spawn(move || {
                let mut session = map.handle();
                for k in 0..500u64 {
                    session.insert(t * 1_000 + k, k);
                }
                assert_eq!(session.scan_len(t * 1_000, 500), 500);
            });
        }
    });
}
