//! Crash-state construction helpers (testing only, hidden from docs).
//!
//! The durable trees' recovery procedure (paper §5) must cope with states in
//! which a crash interrupted an update after some of its stores reached
//! persistent memory but before the operation finished.  Real crashes cannot
//! be produced inside a unit test, so these helpers *construct* the exact
//! memory states the paper reasons about, by applying the persisted half of
//! an update and skipping the volatile half:
//!
//! * [`AbTree::force_partial_insert`] — a simple insert whose key and value were
//!   flushed, but which crashed before the second version increment and the
//!   `size` update.  Strict linearizability requires this insert to be
//!   linearized *at the crash*, i.e. recovery must surface the key.
//! * [`AbTree::force_partial_delete`] — a successful delete whose emptied key slot
//!   was flushed but which crashed before completing.  Recovery must *not*
//!   resurrect the key.
//! * [`AbTree::force_dirty_root_link`] — a structural update that crashed after
//!   writing (and flushing) a new child pointer but before clearing its
//!   link-and-persist dirty mark.  Recovery must clear the mark.
//!
//! These functions require exclusive (single-threaded) access to the tree.

use std::sync::atomic::Ordering;

use absync::RawNodeLock;

use crate::node::{tag_dirty, untag};
use crate::persist::Persist;
use crate::tree::AbTree;
use crate::{EMPTY_KEY, MAX_KEYS};

impl<const ELIM: bool, L: RawNodeLock, P: Persist> AbTree<ELIM, L, P> {
    /// Simulates a crash in the middle of `insert(key, value)`, after the key
    /// and value stores were persisted but before the leaf's version was
    /// incremented back to even and before `size` was updated.
    ///
    /// Returns `false` (leaving the tree untouched) if the key is already
    /// present or the target leaf has no free slot.
    pub fn force_partial_insert(&self, key: u64, value: u64) -> bool {
        // Single-threaded maintenance: a throwaway registration is fine here
        // and keeps the per-operation paths free of registry pins.
        let local = self.collector.register();
        let guard = local.pin();
        let path = self.search(key, std::ptr::null_mut(), &guard);
        // SAFETY: single-threaded access per the module contract.
        let leaf = unsafe { self.deref(path.n, &guard) };
        if leaf.locked_find(key).is_some() {
            return false;
        }
        let Some(slot) = leaf.locked_empty_slot() else {
            return false;
        };
        // First half of the update: odd version, value then key stores (the
        // part that would have been flushed).
        leaf.begin_write();
        leaf.vals[slot].store(value, Ordering::Relaxed);
        leaf.keys[slot].store(key, Ordering::Relaxed);
        // Crash: no size update, no end_write().
        true
    }

    /// Simulates a crash in the middle of a successful `delete(key)`, after
    /// the emptied key slot was persisted but before the version returned to
    /// even and before `size` was updated.
    ///
    /// Returns `false` (leaving the tree untouched) if the key is absent.
    pub fn force_partial_delete(&self, key: u64) -> bool {
        let local = self.collector.register();
        let guard = local.pin();
        let path = self.search(key, std::ptr::null_mut(), &guard);
        // SAFETY: single-threaded access per the module contract.
        let leaf = unsafe { self.deref(path.n, &guard) };
        let Some((slot, _)) = leaf.locked_find(key) else {
            return false;
        };
        leaf.begin_write();
        leaf.keys[slot].store(EMPTY_KEY, Ordering::Relaxed);
        // Crash: no size update, no end_write().
        true
    }

    /// Simulates a crash after a structural update wrote (and flushed) the
    /// entry's root pointer but before clearing its link-and-persist dirty
    /// mark.
    pub fn force_dirty_root_link(&self) {
        let root = self.entry.child(0);
        self.entry.ptrs[0].store(tag_dirty(root), Ordering::Release);
    }

    /// Returns `true` if any reachable child pointer still carries a dirty
    /// mark (used to verify that recovery cleared them all).
    pub fn has_dirty_links(&self) -> bool {
        let mut stack = vec![self.entry_ptr()];
        while let Some(ptr) = stack.pop() {
            if ptr.is_null() {
                continue;
            }
            // SAFETY: single-threaded access per the module contract.
            let node = unsafe { &*ptr };
            if node.is_leaf() {
                continue;
            }
            for i in 0..MAX_KEYS {
                let raw = node.child_raw(i);
                if crate::node::is_dirty(raw) {
                    return true;
                }
                let clean = untag(raw);
                if clean.is_null() {
                    break;
                }
                stack.push(clean);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::OccABTree;

    #[test]
    fn partial_insert_then_recover_surfaces_the_key() {
        let t: OccABTree = OccABTree::new();
        let mut t = t.handle();
        for k in 0..100u64 {
            t.insert(k, k);
        }
        assert!(t.force_partial_insert(1_000, 77));
        // Before recovery the structure is mid-update (version odd, size
        // stale); recovery must repair it and keep the persisted key.
        t.recover();
        t.check_invariants().unwrap();
        assert_eq!(t.get(1_000), Some(77));
        assert_eq!(t.len(), 101);
    }

    #[test]
    fn partial_delete_then_recover_drops_the_key() {
        let t: OccABTree = OccABTree::new();
        let mut t = t.handle();
        for k in 0..100u64 {
            t.insert(k, k);
        }
        assert!(t.force_partial_delete(50));
        t.recover();
        t.check_invariants().unwrap();
        assert_eq!(t.get(50), None);
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn dirty_link_is_cleared_by_recovery() {
        let t: OccABTree = OccABTree::new();
        let mut t = t.handle();
        for k in 0..2_000u64 {
            t.insert(k, k);
        }
        t.force_dirty_root_link();
        assert!(t.has_dirty_links());
        t.recover();
        assert!(!t.has_dirty_links());
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 2_000);
    }

    #[test]
    fn force_helpers_reject_invalid_targets() {
        let t: OccABTree = OccABTree::new();
        let mut t = t.handle();
        t.insert(5, 5);
        assert!(!t.force_partial_insert(5, 99), "key already present");
        assert!(!t.force_partial_delete(6), "key absent");
        t.recover();
        t.check_invariants().unwrap();
    }
}
