//! OCC-ABtree and Elim-ABtree: concurrent relaxed (a,b)-trees with optional
//! publishing elimination.
//!
//! This crate implements the two volatile data structures contributed by
//! *"Elimination (a,b)-trees with fast, durable updates"* (Srivastava &
//! Brown, PPoPP 2022):
//!
//! * [`OccABTree`] — an optimistic-concurrency-control relaxed (a,b)-tree
//!   (paper §3).  Leaves keep their keys **unsorted** with empty slots, so
//!   simple inserts and deletes never shift other keys; every node carries an
//!   MCS lock; leaves additionally carry an even/odd version counter so that
//!   searches can read them without locking (the `searchLeaf` double-collect
//!   of Fig. 2).  Structural changes (splits, merges, redistributions, tag
//!   removal) follow Larsen & Fagerberg's relaxed (a,b)-tree sub-operations,
//!   each of which atomically replaces a single child pointer.
//!
//! * [`ElimABTree`] — the same tree with **publishing elimination** (paper
//!   §4): each leaf stores a record (`key`, `value`, `version`) of the last
//!   simple insert or successful delete that modified it.  A concurrent
//!   insert or delete of the *same* key that observes contention can use the
//!   record to linearize itself immediately before/after that operation and
//!   return without writing to the tree at all, which is what makes the tree
//!   fast under highly skewed (Zipfian) update-heavy workloads.
//!
//! Both trees are generic over the per-node lock (any
//! [`absync::RawNodeLock`]); the paper's configuration uses MCS locks, which
//! is the default.  The lock-type ablation benchmark instantiates the TATAS
//! variant.
//!
//! # Keys and values
//!
//! Like the paper's evaluation, the engine stores 8-byte keys and 8-byte
//! values (`u64`); the value [`EMPTY_KEY`] (`u64::MAX`) is reserved as the
//! "no key" sentinel used for empty leaf slots.  The [`typed`] module
//! provides an order-preserving typed wrapper for other fixed-size key and
//! value types.
//!
//! # Example
//!
//! ```
//! use abtree::{ElimABTree, ConcurrentMap};
//!
//! let tree: ElimABTree = ElimABTree::new();
//! assert_eq!(tree.insert(10, 100), None);
//! assert_eq!(tree.insert(10, 200), Some(100)); // already present
//! assert_eq!(tree.get(10), Some(100));
//! assert_eq!(tree.delete(10), Some(100));
//! assert_eq!(tree.get(10), None);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

#[doc(hidden)]
pub mod crashsim;
pub(crate) mod node;
pub mod persist;
pub mod rebalance;
pub mod scan;
pub mod tree;
pub mod typed;
pub mod update;
pub mod validate;

use absync::McsLock;

/// Maximum number of keys in a leaf / children in an internal node (the
/// paper's `MAX_SIZE` = `b` = 11).
pub const MAX_KEYS: usize = 11;

/// Minimum number of keys in a non-root leaf / children in a non-root
/// internal node (the paper's `MIN_SIZE` = `a` = 2).
pub const MIN_KEYS: usize = 2;

/// Reserved sentinel meaning "empty slot"; user keys must be smaller.
pub const EMPTY_KEY: u64 = u64::MAX;

// (a,b)-trees require 2 <= a <= b/2 so that splits/merges stay in bounds;
// enforced at compile time.
const _: () = assert!(MIN_KEYS >= 2 && MIN_KEYS <= MAX_KEYS / 2);

pub use persist::{Persist, VolatilePersist};
pub use tree::AbTree;
pub use typed::{KeyCodec, TypedTree, ValueCodec};
pub use validate::TreeStats;

/// The OCC-ABtree of paper §3 (no elimination), with MCS node locks.
pub type OccABTree<L = McsLock> = AbTree<false, L, VolatilePersist>;

/// The Elim-ABtree of paper §4 (publishing elimination), with MCS node locks.
pub type ElimABTree<L = McsLock> = AbTree<true, L, VolatilePersist>;

/// A concurrent ordered dictionary over 8-byte keys and values.
///
/// This is the common interface the benchmark harness drives; every data
/// structure in this repository (the paper's trees, the persistent trees and
/// all baselines) implements it.  Semantics follow the paper's §3:
///
/// * **`insert(k, v)` rejects rather than replaces**: it returns the
///   *existing* value if `k` was already present — in which case the map is
///   left completely unchanged (first-writer-wins, the paper's
///   `insertIfAbsent`) — and `None` if the pair was inserted.  The
///   elimination records of §4 linearize same-key operations against each
///   other under exactly these semantics, so every structure driven by the
///   harness must implement them;
/// * `delete(k)` returns the removed value, or `None` if `k` was absent;
/// * `get(k)` returns the current value associated with `k`, if any.
pub trait ConcurrentMap: Send + Sync {
    /// Inserts `key -> value` if `key` is absent; returns the existing value
    /// (leaving it **unchanged** — insert never overwrites) otherwise.
    fn insert(&self, key: u64, value: u64) -> Option<u64>;

    /// Removes `key`, returning its value if it was present.
    fn delete(&self, key: u64) -> Option<u64>;

    /// Returns the value associated with `key`, if any.
    fn get(&self, key: u64) -> Option<u64>;

    /// Returns `true` if `key` is present.
    fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Collects every `(key, value)` pair with `lo <= key <= hi` into `out`,
    /// sorted by key (`out` is cleared first).  `lo > hi` yields an empty
    /// result.
    ///
    /// The default implementation probes every key in the window with
    /// [`get`](Self::get), so it costs `O(hi - lo)` point lookups and each
    /// element is only individually (not jointly) linearizable.  Structures
    /// with native scans override this with an ordered traversal; the
    /// (a,b)-trees additionally validate node versions so the whole result is
    /// a linearizable snapshot.  Callers should keep windows modest when the
    /// fallback may be in use (the YCSB-E scan lengths are <= a few hundred).
    fn range(&self, lo: u64, hi: u64, out: &mut Vec<(u64, u64)>) {
        out.clear();
        if lo > hi {
            return;
        }
        // EMPTY_KEY is reserved in every structure driven by the harness.
        let hi = hi.min(EMPTY_KEY - 1);
        for key in lo..=hi {
            if let Some(value) = self.get(key) {
                out.push((key, value));
            }
        }
    }

    /// Convenience wrapper over [`range`](Self::range): the number of keys
    /// stored in the window `[lo, lo + len)`, the shape of a YCSB-E scan
    /// request.
    fn scan_len(&self, lo: u64, len: u64) -> usize {
        if len == 0 {
            return 0;
        }
        let mut out = Vec::new();
        self.range(lo, lo.saturating_add(len - 1), &mut out);
        out.len()
    }

    /// Short name used in benchmark output (e.g. `"elim-abtree"`).
    fn name(&self) -> &'static str;
}

/// A map that can report the sum of its keys, the accessor behind the
/// harness's checksum validation (paper §6 "Validation": the keys each
/// thread successfully inserted minus those it deleted must equal the keys
/// left in the structure).
///
/// Implementing this trait (plus [`ConcurrentMap`]) is all a structure needs
/// to be benchmarkable: the `setbench` registry provides a blanket
/// `Benchable` implementation for every `ConcurrentMap + KeySum` type.
pub trait KeySum {
    /// Sum of all keys currently stored.  Quiescent only: callers must
    /// ensure no concurrent operations are in flight.
    fn key_sum(&self) -> u128;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_aliases_compile_and_work() {
        let occ: OccABTree = OccABTree::new();
        let elim: ElimABTree = ElimABTree::new();
        assert_eq!(occ.insert(1, 2), None);
        assert_eq!(elim.insert(1, 2), None);
        assert_eq!(occ.get(1), Some(2));
        assert_eq!(elim.get(1), Some(2));
    }
}
